"""Async scheduler service: coalesced admission, round loop, notifications.

Architecture
------------

Everything runs on one asyncio event loop except the solver:

* **Client handlers** parse JSON-lines requests.  They never mutate the
  cluster state directly -- a submission is validated, acked, and appended
  to the service *inbox* (a plain deque of admission records).  This is
  what makes concurrent clients safe without locks: the handlers and the
  round loop interleave only at await points, and the state is touched by
  exactly one of them (the round loop, between solver runs).
* **The round loop** drains the inbox at the top of each round, turning
  every queued record into ordinary :class:`ClusterState` mutations
  (``submit_job``, ``add_machine``, ``fail_machine``, ``complete_task``).
  The state's :class:`~repro.cluster.state.DirtyTracker` picks the
  mutations up exactly as it does under the simulator, so the scheduler's
  incremental path keeps its O(|changes|) admission cost.  The solver then
  runs in a worker thread (``run_in_executor``) so the loop stays
  responsive; because all mutation goes through the inbox, nothing touches
  the state while the solver reads it.
* **Notifications** fan out through per-client bounded queues drained by a
  writer task that honours TCP backpressure (``await writer.drain()``).  A
  client that stops reading eventually fills its queue and is evicted --
  one slow consumer cannot stall the round loop or other clients.

Conservation law
----------------

Every task a client submits is *accepted* (acked and queued) or refused at
the front door.  From then on the service guarantees, at every stats
snapshot and at final drain::

    accepted == placed + pending + rejected

where *placed* counts tasks that received their first placement, *pending*
counts accepted tasks still waiting (queued in the inbox or unplaced in
the state), and *rejected* counts accepted tasks voided by a drain before
admission.  ``stats`` recomputes the right-hand side from the actual
cluster state and reports ``conserved`` so clients (and the SLO benchmark)
can verify the law end to end, mirroring the simulator's
``verify_placement_conservation``.

Durability (optional)
---------------------

With a :class:`~repro.service.durability.DurabilityLayer` attached, the
conservation law survives ``kill -9``: every inbox drain appends one
fsync'd ``admit`` record *before* the batch mutates the state, every
applied round appends one ``round`` record *before* its placements are
acknowledged to clients, and snapshots rotate the log.  Submissions carry
optional client-supplied idempotency ``key``s; a duplicate key gets the
original ack back (``duplicate: true``) instead of a second job, which is
what lets clients blindly resubmit across a crash.  The write path is
synchronous inside the round loop on purpose -- a record is durable
before any await point lets its effects escape to a client.

Protocol (JSON lines, UTF-8, one object per line)
-------------------------------------------------

Requests::

    {"op": "submit", "tasks": N, "duration": 5.0, "job_type": "batch",
     "cpu": 1.0, "ram": 1.0, "id": <echoed>}
    {"op": "add_machine", "count": 1}
    {"op": "remove_machine", "machine_id": M}
    {"op": "stats"}
    {"op": "shutdown"}

Responses/events::

    {"event": "ack", "id": ..., "job_id": J, "accepted": N, "task_ids": [...]}
    {"event": "placement", "task_id": T, "job_id": J, "machine_id": M,
     "latency": seconds}
    {"event": "preemption", "task_id": T, "job_id": J}
    {"event": "completion", "task_id": T, "job_id": J}
    {"event": "rejected", "task_ids": [...], "reason": "drain"}
    {"event": "stats", ...counters...}
    {"event": "error", "id": ..., "error": "..."}
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import Job, JobType, Task
from repro.service.durability import (
    DurabilityLayer,
    RecoveredState,
    admit_payload,
    new_ledger,
    round_payload,
    snapshot_cluster_state,
)

__all__ = ["SchedulerService", "ServiceConfig", "ServiceStats"]


@dataclass
class ServiceConfig:
    """Tunables for :class:`SchedulerService`.

    Attributes:
        host: Bind address.
        port: Bind port; 0 asks the kernel for an ephemeral port (read the
            actual one from :attr:`SchedulerService.port` after start).
        round_interval: Minimum seconds between scheduling rounds.  Work
            arriving mid-round is coalesced and admitted at the next round
            boundary; an idle service sleeps until work arrives.
        client_queue_limit: Notification events buffered per client before
            the client is declared too slow and evicted (backpressure
            boundary between the round loop and a stalled TCP peer).
        time_scale: Wall-clock seconds per submitted duration second.
            Task durations are multiplied by this before the completion
            timer is armed; tests and benchmarks use small values so
            finite tasks free their slots quickly.
        drain_timeout: Seconds :meth:`SchedulerService.stop` waits for the
            in-flight round and the notification queues to flush.
        max_request_bytes: Upper bound on one JSON-lines request.  A
            client sending a longer line (or undecodable bytes) gets an
            ``error`` reply and is disconnected -- the reader never
            buffers unboundedly on behalf of a hostile or broken peer.
    """

    host: str = "127.0.0.1"
    port: int = 0
    round_interval: float = 0.05
    client_queue_limit: int = 1024
    time_scale: float = 1.0
    drain_timeout: float = 10.0
    max_request_bytes: int = 1 << 20


@dataclass
class ServiceStats:
    """Conservation counters plus round observability."""

    accepted: int = 0
    placed: int = 0
    rejected: int = 0
    rounds: int = 0
    degraded_rounds: int = 0
    preemptions: int = 0
    completions: int = 0
    evicted_clients: int = 0

    def pending(self) -> int:
        """Accepted tasks not yet placed nor voided (the derived leg)."""
        return self.accepted - self.placed - self.rejected

    def snapshot(self, pending_actual: int) -> Dict[str, Any]:
        """Stats payload with the conservation law checked against reality.

        Args:
            pending_actual: Pending count recomputed from the inbox and the
                cluster state, independently of the incremental counters.
        """
        return {
            "accepted": self.accepted,
            "placed": self.placed,
            "pending": pending_actual,
            "rejected": self.rejected,
            "conserved": self.accepted
            == self.placed + pending_actual + self.rejected,
            "rounds": self.rounds,
            "degraded_rounds": self.degraded_rounds,
            "preemptions": self.preemptions,
            "completions": self.completions,
            "evicted_clients": self.evicted_clients,
        }


@dataclass
class _Client:
    """Connection-scoped notification plumbing."""

    client_id: int
    writer: asyncio.StreamWriter
    queue: asyncio.Queue = field(default_factory=asyncio.Queue)
    writer_task: Optional[asyncio.Task] = None
    evicted: bool = False


#: Inbox record kinds, applied in arrival order at the round boundary.
_SUBMIT, _ADD_MACHINE, _REMOVE_MACHINE, _COMPLETE = (
    "submit", "add_machine", "remove_machine", "complete",
)


class SchedulerService:
    """Serve a flow-based scheduler to concurrent TCP clients.

    Args:
        state: The cluster state to schedule (the service owns it; nothing
            else may mutate it while the service runs).
        scheduler: Any object with the round contract
            ``schedule(state, now) -> SchedulingDecision`` and
            ``apply(state, decision, now)`` (:class:`FirmamentScheduler`,
            :class:`ShardedScheduler`, or the baseline wrappers).
        config: Service tunables.
        durability: Optional write-ahead log + snapshot layer; ``None``
            (the default) keeps the PR 9 in-memory-only behaviour.
        recovered: Output of :func:`repro.service.durability.recover` to
            resume from.  ``state`` must be ``recovered.state``; the
            ledger reseeds the conservation counters, the idempotency
            map, and the service clock, so ``accepted == placed +
            pending + rejected`` holds across the crash boundary.
    """

    def __init__(
        self,
        state: ClusterState,
        scheduler,
        config: Optional[ServiceConfig] = None,
        durability: Optional[DurabilityLayer] = None,
        recovered: Optional[RecoveredState] = None,
    ) -> None:
        self.state = state
        self.scheduler = scheduler
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self._durability = durability
        self._recovered = recovered
        self._server: Optional[asyncio.AbstractServer] = None
        self._round_task: Optional[asyncio.Task] = None
        self._wake = asyncio.Event()
        self._inbox: Deque[Tuple[str, Any]] = deque()
        self._clients: Dict[int, _Client] = {}
        self._handler_tasks: Set[asyncio.Task] = set()
        self._next_client_id = 1
        self._next_job_id = 1 + max(state.jobs, default=0)
        self._next_task_id = 1 + max(state.tasks, default=-1)
        self._next_machine_id = 1 + max(state.topology.machines, default=-1)
        self._machines_per_rack = self._infer_machines_per_rack()
        #: task_id -> owning client_id, for notification routing.  Entries
        #: survive client eviction removal so counters stay exact.
        self._task_owner: Dict[int, int] = {}
        #: Tasks that have received their first placement (so re-placements
        #: after preemption are not double counted).
        self._placed_ids: Set[int] = set()
        #: Idempotency key -> (job_id, task_ids) for every accepted
        #: submission that carried a key; consulted at the front door so a
        #: resubmission (same client retrying, or a reconnect after a
        #: crash) gets the original ack instead of a second job.
        self._idempotency: Dict[str, Tuple[int, List[int]]] = {}
        self._duplicates = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._t0 = time.monotonic()
        if recovered is not None:
            ledger = recovered.ledger
            self.stats.accepted = ledger["accepted"]
            self.stats.placed = ledger["placed"]
            self.stats.rejected = ledger["rejected"]
            self.stats.rounds = ledger["rounds"]
            self.stats.degraded_rounds = ledger["degraded_rounds"]
            self.stats.preemptions = ledger["preemptions"]
            self.stats.completions = ledger["completions"]
            self._duplicates = ledger["duplicates"]
            self._placed_ids = set(ledger["placed_ids"])
            for key, job_id in ledger["idempotency"].items():
                job = state.jobs.get(job_id)
                if job is not None:
                    self._idempotency[key] = (
                        job_id, [task.task_id for task in job.tasks]
                    )
            # Resume the service clock where the log ended, so recorded
            # times stay monotonic across the restart.
            self._t0 = time.monotonic() - recovered.clock
            if durability is not None:
                durability.resume_from(recovered)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    def now(self) -> float:
        """Service time: seconds since start (the round clock)."""
        return time.monotonic() - self._t0

    async def start(self) -> None:
        """Bind the listener and start the round loop.

        With durability attached, a snapshot is written up front: a fresh
        start gets epoch 1 (so recovery always finds a snapshot), and a
        recovered start folds the replayed log tail into a new snapshot
        immediately instead of re-replaying it on the next crash.
        """
        if self._durability is not None:
            self._write_snapshot()
        if self._recovered is not None:
            # Completion timers died with the old process; re-arm them for
            # every recovered running task.  The full duration is used --
            # progress before the crash is not tracked, so a recovered
            # task runs its duration again from the restart (documented
            # conservative choice: slots stay conserved, finish is late).
            loop = asyncio.get_running_loop()
            for task in self.state.running_tasks():
                if task.duration is not None:
                    loop.call_later(
                        max(task.duration * self.config.time_scale, 0.0),
                        self._enqueue_completion,
                        task.task_id,
                        task.start_time,
                    )
        self._server = await asyncio.start_server(
            self._handle_client,
            self.config.host,
            self.config.port,
            limit=self.config.max_request_bytes,
        )
        self._round_task = asyncio.create_task(self._round_loop())

    async def stop(self) -> Dict[str, Any]:
        """Drain gracefully and return the final stats snapshot.

        New submissions are refused from the moment drain starts; queued
        submissions that were accepted but not yet admitted are voided as
        *rejected* (with a notification to their still-connected owners),
        so the conservation law holds exactly at shutdown.
        """
        self._draining = True
        self._wake.set()
        if self._round_task is not None:
            try:
                await asyncio.wait_for(
                    self._round_task, timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                self._round_task.cancel()
        # Flush what the notification queues still hold.
        for client in list(self._clients.values()):
            try:
                await asyncio.wait_for(
                    client.queue.join(), timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                pass
        snapshot = self.stats.snapshot(self._pending_actual())
        for client in list(self._clients.values()):
            self._close_client(client)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Reap the per-connection reader tasks so no cancelled coroutine
        # outlives the service into the event loop's teardown.
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            await asyncio.gather(*self._handler_tasks, return_exceptions=True)
        self._stopped.set()
        if self._durability is not None:
            # A graceful stop leaves a snapshot at the very tip of the
            # log, so the next start replays nothing.
            self._write_snapshot()
            self._durability.close()
        close = getattr(self.scheduler, "close", None)
        if callable(close):
            close()
        return snapshot

    def _infer_machines_per_rack(self) -> int:
        racks = self.state.topology.racks
        if not racks:
            return 40
        return max(len(rack.machine_ids) for rack in racks.values())

    # ------------------------------------------------------------------ #
    # Client handling
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client = _Client(self._next_client_id, writer)
        self._next_client_id += 1
        self._clients[client.client_id] = client
        self._handler_tasks.add(asyncio.current_task())
        client.writer_task = asyncio.create_task(self._client_writer(client))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # The stream limit tripped: the peer sent a line
                    # longer than max_request_bytes.  Reply and hang up --
                    # resynchronising inside an oversized line is
                    # guesswork, and buffering it is the attack.
                    self._hangup(client, "request line too long")
                    break
                if not line:
                    break
                try:
                    text = line.decode("utf-8")
                except UnicodeDecodeError:
                    self._hangup(client, "request is not valid UTF-8")
                    break
                try:
                    request = json.loads(text)
                except json.JSONDecodeError as error:
                    # Malformed (or truncated) JSON on an intact line:
                    # recoverable, the next line may be fine.
                    self._notify(client.client_id, {
                        "event": "error", "error": f"bad json: {error}",
                    })
                    continue
                if not isinstance(request, dict):
                    self._notify(client.client_id, {
                        "event": "error",
                        "error": "request must be a JSON object",
                    })
                    continue
                try:
                    self._dispatch(client, request)
                except Exception as error:
                    # A handler bug must not silently kill the reader
                    # task: the client keeps its connection and learns why
                    # the request failed.
                    self._notify(client.client_id, {
                        "event": "error", "id": request.get("id"),
                        "error": f"internal error: {error}",
                    })
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Service teardown cancels reader tasks mid-readline.  Absorb
            # the cancellation so the streams protocol's done-callback
            # (which calls task.exception()) does not re-raise it into the
            # event loop's exception handler.
            pass
        finally:
            # The client hung up: stop writing to it, but keep its
            # submitted tasks -- jobs outlive their submitter's connection.
            self._handler_tasks.discard(asyncio.current_task())
            if not client.evicted:
                self._close_client(client)

    def _dispatch(self, client: _Client, request: Dict[str, Any]) -> None:
        op = request.get("op")
        req_id = request.get("id")
        if op == "submit":
            self._handle_submit(client, request, req_id)
        elif op == "add_machine":
            self._handle_add_machine(client, request, req_id)
        elif op == "remove_machine":
            self._handle_remove_machine(client, request, req_id)
        elif op == "stats":
            payload = self.stats.snapshot(self._pending_actual())
            payload["event"] = "stats"
            payload["id"] = req_id
            self._notify(client.client_id, payload)
        elif op == "ledger":
            # Per-idempotency-key placement ledger, for the recovery
            # harness to compare a recovered service against its oracle.
            keys = {
                key: {
                    "job_id": job_id,
                    "task_ids": task_ids,
                    "placed": [t for t in task_ids if t in self._placed_ids],
                }
                for key, (job_id, task_ids) in self._idempotency.items()
            }
            self._notify(client.client_id, {
                "event": "ledger", "id": req_id, "keys": keys,
                "duplicates": self._duplicates,
            })
        elif op == "shutdown":
            payload = self.stats.snapshot(self._pending_actual())
            payload["event"] = "ack"
            payload["id"] = req_id
            self._notify(client.client_id, payload)
            self._draining = True
            self._wake.set()
        else:
            self._notify(client.client_id, {
                "event": "error", "id": req_id, "error": f"unknown op: {op!r}",
            })

    def _handle_submit(
        self, client: _Client, request: Dict[str, Any], req_id: Any
    ) -> None:
        num_tasks = request.get("tasks", 1)
        if not isinstance(num_tasks, int) or num_tasks <= 0:
            self._notify(client.client_id, {
                "event": "error", "id": req_id,
                "error": "tasks must be a positive integer",
            })
            return
        key = request.get("key")
        if key is not None and not isinstance(key, str):
            self._notify(client.client_id, {
                "event": "error", "id": req_id,
                "error": "key must be a string",
            })
            return
        if key is not None and key in self._idempotency:
            # Duplicate submission (a retry, or a resubmit across a
            # crash): return the *original* ack so the client can resume
            # waiting on the surviving tasks; nothing is accepted twice.
            job_id, task_ids = self._idempotency[key]
            self._duplicates += 1
            for task_id in task_ids:
                # Notifications for the job now route to the resubmitting
                # connection (the original owner is usually gone).
                self._task_owner[task_id] = client.client_id
            self._notify(client.client_id, {
                "event": "ack", "id": req_id, "job_id": job_id,
                "accepted": 0, "duplicate": True, "task_ids": task_ids,
                "placed_task_ids": [
                    t for t in task_ids if t in self._placed_ids
                ],
            })
            return
        if self._draining:
            self._notify(client.client_id, {
                "event": "ack", "id": req_id, "accepted": 0,
                "error": "draining",
            })
            return
        job_type = (
            JobType.SERVICE
            if request.get("job_type") == "service"
            else JobType.BATCH
        )
        duration = request.get("duration")
        if duration is not None:
            duration = float(duration)
        submit_time = self.now()
        job = Job(
            job_id=self._next_job_id,
            job_type=job_type,
            submit_time=submit_time,
            priority=int(request.get("priority", 0)),
        )
        self._next_job_id += 1
        task_ids: List[int] = []
        for _ in range(num_tasks):
            task = Task(
                task_id=self._next_task_id,
                job_id=job.job_id,
                duration=duration,
                submit_time=submit_time,
                cpu_request=float(request.get("cpu", 1.0)),
                ram_request_gb=float(request.get("ram", 1.0)),
            )
            self._next_task_id += 1
            job.add_task(task)
            task_ids.append(task.task_id)
            self._task_owner[task.task_id] = client.client_id
        self.stats.accepted += num_tasks
        if key is not None:
            self._idempotency[key] = (job.job_id, list(task_ids))
        self._inbox.append((_SUBMIT, (key, job)))
        self._wake.set()
        self._notify(client.client_id, {
            "event": "ack", "id": req_id, "job_id": job.job_id,
            "accepted": num_tasks, "task_ids": task_ids,
        })

    def _handle_add_machine(
        self, client: _Client, request: Dict[str, Any], req_id: Any
    ) -> None:
        count = request.get("count", 1)
        if not isinstance(count, int) or count <= 0:
            self._notify(client.client_id, {
                "event": "error", "id": req_id,
                "error": "count must be a positive integer",
            })
            return
        template = next(iter(self.state.topology.machines.values()), None)
        machine_ids: List[int] = []
        for _ in range(count):
            machine_id = self._next_machine_id
            self._next_machine_id += 1
            machine = Machine(
                machine_id=machine_id,
                rack_id=machine_id // self._machines_per_rack,
                num_slots=template.num_slots if template else 4,
                cpu_cores=template.cpu_cores if template else 12,
                ram_gb=template.ram_gb if template else 64,
                network_bandwidth_mbps=(
                    template.network_bandwidth_mbps if template else 10_000
                ),
            )
            self._inbox.append((_ADD_MACHINE, machine))
            machine_ids.append(machine_id)
        self._wake.set()
        self._notify(client.client_id, {
            "event": "ack", "id": req_id, "machine_ids": machine_ids,
        })

    def _handle_remove_machine(
        self, client: _Client, request: Dict[str, Any], req_id: Any
    ) -> None:
        machine_id = request.get("machine_id")
        if machine_id not in self.state.topology.machines:
            self._notify(client.client_id, {
                "event": "error", "id": req_id,
                "error": f"unknown machine: {machine_id!r}",
            })
            return
        self._inbox.append((_REMOVE_MACHINE, machine_id))
        self._wake.set()
        self._notify(client.client_id, {
            "event": "ack", "id": req_id, "machine_id": machine_id,
        })

    # ------------------------------------------------------------------ #
    # Notification fan-out
    # ------------------------------------------------------------------ #
    def _notify(self, client_id: int, payload: Dict[str, Any]) -> None:
        """Queue an event for one client; evict the client if it is full.

        Dropping the whole client (instead of silently dropping events) is
        deliberate: a notification stream with holes is worse than a
        closed connection, because the client cannot tell a lost placement
        from a pending one.
        """
        client = self._clients.get(client_id)
        if client is None or client.evicted:
            return
        if client.queue.qsize() >= self.config.client_queue_limit:
            self.stats.evicted_clients += 1
            self._close_client(client)
            return
        client.queue.put_nowait(payload)

    async def _client_writer(self, client: _Client) -> None:
        """Drain one client's queue into its socket with backpressure."""
        try:
            while True:
                payload = await client.queue.get()
                try:
                    client.writer.write(
                        json.dumps(payload).encode("utf-8") + b"\n"
                    )
                    await client.writer.drain()
                finally:
                    client.queue.task_done()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass

    def _hangup(self, client: _Client, reason: str) -> None:
        """Best-effort error reply written directly before disconnecting.

        Used when the *stream* is no longer trustworthy (oversized line,
        undecodable bytes) -- the notification queue may never flush once
        the reader breaks out, so the reply bypasses it.
        """
        try:
            client.writer.write(
                json.dumps({"event": "error", "error": reason}).encode("utf-8")
                + b"\n"
            )
        except Exception:
            pass

    def _close_client(self, client: _Client) -> None:
        client.evicted = True
        self._clients.pop(client.client_id, None)
        if client.writer_task is not None:
            client.writer_task.cancel()
        try:
            client.writer.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Round loop
    # ------------------------------------------------------------------ #
    async def _round_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._draining:
            if not self._inbox and not self.state.num_pending_tasks:
                # Idle: sleep until a handler enqueues work (or drain).
                await self._wake.wait()
                self._wake.clear()
                continue
            # No await between the drain check above and this drain, so a
            # concurrently starting drain cannot race submissions past the
            # front door: they are either admitted here or voided below.
            round_started = self.now()
            self._drain_inbox(round_started)
            if self.state.num_pending_tasks:
                now = self.now()
                try:
                    decision = await loop.run_in_executor(
                        None, self.scheduler.schedule, self.state, now
                    )
                except Exception as error:  # solver died: degrade, carry on
                    self.stats.rounds += 1
                    self.stats.degraded_rounds += 1
                    self._broadcast({
                        "event": "error",
                        "error": f"scheduling round failed: {error}",
                    })
                else:
                    self._apply_round(decision, now)
            if self._durability is not None and self._durability.should_snapshot():
                self._write_snapshot()
            # Pace rounds: the interval is a hard minimum so submissions
            # arriving in the gap coalesce into the next admission batch.
            # Only a drain request cuts the gap short.
            deadline = round_started + self.config.round_interval
            while not self._draining:
                delay = deadline - self.now()
                if delay <= 0:
                    break
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    break
                self._wake.clear()
            self._wake.clear()
        # Drain: accepted-but-unadmitted submissions are voided as
        # rejected; remaining machine/completion events still apply so the
        # final state is honest.  No further scheduling rounds run -- what
        # could not be placed before the drain stays pending, and the
        # conservation law accounts for it exactly.
        self._void_queued_submissions()
        self._drain_inbox(self.now())

    def _drain_inbox(self, now: float) -> None:
        """Apply every queued admission record as state mutations.

        With durability attached, the whole batch is written to the
        write-ahead log as one ``admit`` record *before* any of it mutates
        the state: a crash mid-drain replays the full batch from the log,
        a crash mid-append tears the record (detected by checksum and
        dropped) and the batch never happened -- either way no
        half-applied admission survives.
        """
        if not self._inbox:
            return
        batch = list(self._inbox)
        self._inbox.clear()
        if self._durability is not None and self._durability.active:
            self._durability.log_admission(admit_payload(
                submissions=[p for k, p in batch if k == _SUBMIT],
                machines_added=[p for k, p in batch if k == _ADD_MACHINE],
                machines_removed=[p for k, p in batch if k == _REMOVE_MACHINE],
                completions=[p for k, p in batch if k == _COMPLETE],
                now=now,
            ))
        for kind, payload in batch:
            if self._durability is not None:
                self._durability.crash_point("mid_drain")
            if kind == _SUBMIT:
                _key, job = payload
                self.state.submit_job(job)
            elif kind == _ADD_MACHINE:
                self.state.add_machine(payload)
            elif kind == _REMOVE_MACHINE:
                evicted = self.state.fail_machine(payload, now)
                for task_id in evicted:
                    self.stats.preemptions += 1
                    task = self.state.tasks[task_id]
                    self._notify(self._task_owner.get(task_id, -1), {
                        "event": "preemption", "task_id": task_id,
                        "job_id": task.job_id,
                    })
            elif kind == _COMPLETE:
                task_id, start_time = payload
                task = self.state.tasks.get(task_id)
                # Stale-completion guard: the timer that fired belongs to
                # this execution only if the task still runs from the same
                # start.  Preempted/migrated tasks re-arm on re-placement.
                if (
                    task is not None
                    and task.is_running
                    and task.start_time == start_time
                ):
                    self.state.complete_task(task_id, now)
                    self.stats.completions += 1
                    self._notify(self._task_owner.get(task_id, -1), {
                        "event": "completion", "task_id": task_id,
                        "job_id": task.job_id,
                    })

    def _void_queued_submissions(self) -> None:
        """Reject accepted-but-unadmitted submissions during drain."""
        kept: Deque[Tuple[str, Any]] = deque()
        while self._inbox:
            kind, payload = self._inbox.popleft()
            if kind != _SUBMIT:
                kept.append((kind, payload))
                continue
            key, job = payload
            if key is not None:
                # The job never became durable: forget its key so a
                # resubmission after restart is accepted, not deduped
                # into a job that does not exist.
                self._idempotency.pop(key, None)
            task_ids = [task.task_id for task in job.tasks]
            self.stats.rejected += len(task_ids)
            owner = self._task_owner.get(task_ids[0], -1) if task_ids else -1
            for task_id in task_ids:
                self._task_owner.pop(task_id, None)
            self._notify(owner, {
                "event": "rejected", "task_ids": task_ids, "reason": "drain",
            })
        self._inbox = kept

    def _apply_round(self, decision, now: float) -> None:
        """Apply a decision, arm completion timers, publish notifications.

        The round's WAL record lands *after* the in-memory apply but
        *before* any notification is queued: a crash in between loses the
        round entirely (clients were never told), never acknowledges an
        effect that did not become durable.
        """
        loop = asyncio.get_running_loop()
        self.scheduler.apply(self.state, decision, now)
        if self._durability is not None and self._durability.active:
            self._durability.log_round(round_payload(decision, now))
        self.stats.rounds += 1
        if decision.degraded:
            self.stats.degraded_rounds += 1
        for task_id in decision.preemptions:
            self.stats.preemptions += 1
            task = self.state.tasks[task_id]
            self._notify(self._task_owner.get(task_id, -1), {
                "event": "preemption", "task_id": task_id,
                "job_id": task.job_id,
            })
        started = list(decision.placements.items()) + list(
            decision.migrations.items()
        )
        for task_id, machine_id in started:
            task = self.state.tasks[task_id]
            if task_id not in self._placed_ids:
                self._placed_ids.add(task_id)
                self.stats.placed += 1
                self._notify(self._task_owner.get(task_id, -1), {
                    "event": "placement", "task_id": task_id,
                    "job_id": task.job_id, "machine_id": machine_id,
                    "latency": round(now - task.submit_time, 6),
                })
            if task.duration is not None:
                # Completion timer for this execution; a stale timer from a
                # previous execution is neutralised by the start_time guard.
                loop.call_later(
                    max(task.duration * self.config.time_scale, 0.0),
                    self._enqueue_completion,
                    task_id,
                    task.start_time,
                )

    def _enqueue_completion(self, task_id: int, start_time: float) -> None:
        if self._stopped.is_set():
            return
        self._inbox.append((_COMPLETE, (task_id, start_time)))
        self._wake.set()

    def _broadcast(self, payload: Dict[str, Any]) -> None:
        for client_id in list(self._clients):
            self._notify(client_id, payload)

    # ------------------------------------------------------------------ #
    # Conservation
    # ------------------------------------------------------------------ #
    def _pending_actual(self) -> int:
        """Recompute pending from reality (inbox + unplaced state tasks).

        Derived from the cluster state rather than the per-connection
        owner map: owners do not survive a crash, but every accepted task
        that reached the state and never got its first placement is by
        definition still pending, before and after recovery alike.
        """
        queued = sum(
            len(payload[1].tasks)
            for kind, payload in self._inbox
            if kind == _SUBMIT
        )
        unplaced = sum(
            1
            for task_id in self.state.tasks
            if task_id not in self._placed_ids
        )
        return queued + unplaced

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def _build_ledger(self) -> Dict[str, Any]:
        """The durable half of the counters, as of the last WAL record.

        Submissions still queued in the inbox were acked but not yet
        logged, so they are excluded from the durable ``accepted`` leg
        (and their idempotency keys from the durable map): after a crash
        they are exactly the work clients must resubmit.
        """
        queued = sum(
            len(payload[1].tasks)
            for kind, payload in self._inbox
            if kind == _SUBMIT
        )
        ledger = new_ledger()
        ledger["accepted"] = self.stats.accepted - queued
        ledger["placed"] = self.stats.placed
        ledger["rejected"] = self.stats.rejected
        ledger["preemptions"] = self.stats.preemptions
        ledger["completions"] = self.stats.completions
        ledger["rounds"] = self.stats.rounds
        ledger["degraded_rounds"] = self.stats.degraded_rounds
        ledger["duplicates"] = self._duplicates
        ledger["placed_ids"] = set(self._placed_ids)
        ledger["idempotency"] = {
            key: job_id
            for key, (job_id, _task_ids) in self._idempotency.items()
            if job_id in self.state.jobs
        }
        return ledger

    def _write_snapshot(self) -> None:
        self._durability.write_snapshot(
            snapshot_cluster_state(self.state),
            self._build_ledger(),
            clock=self.now(),
        )
