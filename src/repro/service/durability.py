"""Crash-safe scheduler state: write-ahead admission log + snapshot/restore.

The scheduler service (:mod:`repro.service.server`) keeps its entire
cluster state, pending queue, and accepted-work ledger in memory; without
this module a crash voids the ``accepted == placed + pending + rejected``
conservation law the moment the process dies.  The durability discipline
here is the classic one -- periodic snapshot plus replayable event log --
with recovery *verified* against a fault-free oracle by the
recovery-equivalence harness (``tests/service/test_recovery.py``):

* **Write-ahead admission log.**  Every inbox drain appends one fsync'd
  ``admit`` record (submissions with their client-supplied idempotency
  keys, machine add/remove events, completion timer firings) *before* the
  batch mutates :class:`~repro.cluster.state.ClusterState`; every applied
  round appends one ``round`` record (placements, migrations,
  preemptions) *before* the round's effects are acknowledged to clients.
  Records are length-prefixed and CRC32-checksummed, so a crash mid-append
  leaves a *torn* tail that replay detects and drops -- a record is either
  fully applied or void, never half-applied.
* **Snapshots.**  Periodically (round-count- and log-size-triggered) the
  full :class:`ClusterState` plus the service ledger is serialized to a
  temp file, fsync'd, and atomically renamed; the log rotates to a fresh
  segment and segments wholly behind the retained snapshots are deleted.
  A crash mid-snapshot leaves only an ignored ``.tmp`` file.
* **Recovery.**  :func:`recover` loads the newest *valid* snapshot
  (falling back past corrupt ones), replays the log tail through the same
  ``ClusterState`` mutations the live admission path uses, deduplicates
  submissions by idempotency key, and returns a state that resumes
  serving with conservation intact.

Record framing (one record)::

    <u32 payload length> <u32 CRC32(payload)> <payload: compact JSON>

File layout inside the state directory::

    snapshot-00000001.json     CRC-guarded snapshot, epoch 1
    wal-00000001.log           records appended after snapshot 1
    snapshot-00000002.json     ...
    wal-00000002.log           the active segment

The monitor's load statistics are deliberately *not* durable: monitoring
data is ephemeral observability that repopulates from live observations,
and no service-path mutation feeds it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos import CrashInjector
from repro.cluster.machine import Machine, MachineState, Rack
from repro.cluster.state import ClusterState
from repro.cluster.task import Job, JobType, Task, TaskState
from repro.cluster.topology import ClusterTopology

__all__ = [
    "DurabilityLayer",
    "RecoveredState",
    "RecoveryError",
    "new_ledger",
    "read_segment",
    "recover",
    "restore_cluster_state",
    "snapshot_cluster_state",
]

_HEADER = struct.Struct("<II")

_SNAPSHOT_PREFIX = "snapshot-"
_SEGMENT_PREFIX = "wal-"


class RecoveryError(Exception):
    """The on-disk state is inconsistent beyond what recovery tolerates."""


# --------------------------------------------------------------------- #
# ClusterState serialization
# --------------------------------------------------------------------- #
def _task_to_payload(task: Task) -> Dict[str, Any]:
    return {
        "task_id": task.task_id,
        "job_id": task.job_id,
        "duration": task.duration,
        "submit_time": task.submit_time,
        "cpu_request": task.cpu_request,
        "ram_request_gb": task.ram_request_gb,
        "network_request_mbps": task.network_request_mbps,
        "input_size_gb": task.input_size_gb,
        "input_locality": {str(k): v for k, v in task.input_locality.items()},
        "priority": task.priority,
        "state": task.state.value,
        "placement_time": task.placement_time,
        "start_time": task.start_time,
        "finish_time": task.finish_time,
        "machine_id": task.machine_id,
        "last_machine_id": task.last_machine_id,
    }


def _task_from_payload(payload: Dict[str, Any]) -> Task:
    return Task(
        task_id=payload["task_id"],
        job_id=payload["job_id"],
        duration=payload["duration"],
        submit_time=payload["submit_time"],
        cpu_request=payload["cpu_request"],
        ram_request_gb=payload["ram_request_gb"],
        network_request_mbps=payload["network_request_mbps"],
        input_size_gb=payload["input_size_gb"],
        input_locality={int(k): v for k, v in payload["input_locality"].items()},
        priority=payload["priority"],
        state=TaskState(payload["state"]),
        placement_time=payload["placement_time"],
        start_time=payload["start_time"],
        finish_time=payload["finish_time"],
        machine_id=payload["machine_id"],
        last_machine_id=payload["last_machine_id"],
    )


def _job_to_payload(job: Job) -> Dict[str, Any]:
    return {
        "job_id": job.job_id,
        "job_type": job.job_type.value,
        "submit_time": job.submit_time,
        "priority": job.priority,
        "name": job.name,
        "tasks": [_task_to_payload(task) for task in job.tasks],
    }


def _job_from_payload(payload: Dict[str, Any]) -> Job:
    job = Job(
        job_id=payload["job_id"],
        job_type=JobType(payload["job_type"]),
        submit_time=payload["submit_time"],
        priority=payload["priority"],
        name=payload["name"],
    )
    # Bypass Job.add_task: it rewrites job_id/priority on the task, and a
    # restore must reproduce the serialized fields bit for bit.
    job.tasks = [_task_from_payload(task) for task in payload["tasks"]]
    return job


def _machine_to_payload(machine: Machine) -> Dict[str, Any]:
    return {
        "machine_id": machine.machine_id,
        "rack_id": machine.rack_id,
        "num_slots": machine.num_slots,
        "cpu_cores": machine.cpu_cores,
        "ram_gb": machine.ram_gb,
        "network_bandwidth_mbps": machine.network_bandwidth_mbps,
        "state": machine.state.value,
        "name": machine.name,
    }


def _machine_from_payload(payload: Dict[str, Any]) -> Machine:
    return Machine(
        machine_id=payload["machine_id"],
        rack_id=payload["rack_id"],
        num_slots=payload["num_slots"],
        cpu_cores=payload["cpu_cores"],
        ram_gb=payload["ram_gb"],
        network_bandwidth_mbps=payload["network_bandwidth_mbps"],
        state=MachineState(payload["state"]),
        name=payload["name"],
    )


def snapshot_cluster_state(state: ClusterState) -> Dict[str, Any]:
    """Serialize a :class:`ClusterState` to a JSON-safe payload.

    Covers every index :func:`restore_cluster_state` must reproduce: the
    topology (machines with their health state, racks with their member
    order, the membership version), the full job/task ledger including
    terminated history, and the dirty tracker's epoch plus pending sets.
    The derived indexes (live/terminated split, pending index, free-slot
    index, per-machine task sets) are *not* serialized -- they are
    recomputed from task states on restore, which is what the round-trip
    test pins as ``==``-equivalent.
    """
    dirty = state.dirty._pending
    return {
        "topology": {
            "version": state.topology.version,
            "machines": [
                _machine_to_payload(machine)
                for machine in state.topology.machines.values()
            ],
            "racks": [
                {
                    "rack_id": rack.rack_id,
                    "machine_ids": list(rack.machine_ids),
                    "name": rack.name,
                }
                for rack in state.topology.racks.values()
            ],
        },
        "jobs": [_job_to_payload(job) for job in state.jobs.values()],
        "dirty": {
            "epoch": state.dirty.epoch,
            "full": dirty.full,
            "tasks": sorted(dirty.tasks),
            "jobs": sorted(dirty.jobs),
            "machines_availability": sorted(dirty.machines_availability),
            "machines_load": sorted(dirty.machines_load),
        },
    }


def restore_cluster_state(payload: Dict[str, Any]) -> ClusterState:
    """Rebuild a :class:`ClusterState` from :func:`snapshot_cluster_state`."""
    topology = ClusterTopology()
    for machine_payload in payload["topology"]["machines"]:
        machine = _machine_from_payload(machine_payload)
        topology.machines[machine.machine_id] = machine
    for rack_payload in payload["topology"]["racks"]:
        topology.racks[rack_payload["rack_id"]] = Rack(
            rack_id=rack_payload["rack_id"],
            machine_ids=list(rack_payload["machine_ids"]),
            name=rack_payload["name"],
        )
    topology.version = payload["topology"]["version"]

    state = ClusterState(topology)
    for job_payload in payload["jobs"]:
        job = _job_from_payload(job_payload)
        state.jobs[job.job_id] = job
        for task in job.tasks:
            state.tasks[task.task_id] = task
            if not task.is_finished:
                state._live_tasks[task.task_id] = task
            if task.is_pending:
                state._pending_tasks[task.task_id] = task
            if task.is_running:
                state._machine_tasks[task.machine_id].add(task.task_id)
    for machine_id in topology.machines:
        state._refresh_free_slot_entry(machine_id)

    # The constructor marked nothing dirty; reinstate the serialized
    # tracker state exactly (pending sets and epoch), so a restored state
    # drives the incremental graph path identically to the original.
    dirty_payload = payload["dirty"]
    state.dirty.epoch = dirty_payload["epoch"]
    pending = state.dirty._pending
    pending.full = dirty_payload["full"]
    pending.tasks = set(dirty_payload["tasks"])
    pending.jobs = set(dirty_payload["jobs"])
    pending.machines_availability = set(dirty_payload["machines_availability"])
    pending.machines_load = set(dirty_payload["machines_load"])
    return state


# --------------------------------------------------------------------- #
# WAL record payload builders (writer side lives in the server)
# --------------------------------------------------------------------- #
def admit_payload(
    submissions: List[Tuple[Optional[str], Job]],
    machines_added: List[Machine],
    machines_removed: List[int],
    completions: List[Tuple[int, float]],
    now: float,
) -> Dict[str, Any]:
    """Build the ``admit`` record payload for one inbox drain."""
    return {
        "now": now,
        "submissions": [
            {"key": key, "job": _job_to_payload(job)} for key, job in submissions
        ],
        "machines_added": [_machine_to_payload(m) for m in machines_added],
        "machines_removed": list(machines_removed),
        "completions": [[task_id, start] for task_id, start in completions],
    }


def round_payload(decision, now: float) -> Dict[str, Any]:
    """Build the ``round`` record payload for one applied decision."""
    return {
        "now": now,
        "placements": {str(t): m for t, m in decision.placements.items()},
        "migrations": {str(t): m for t, m in decision.migrations.items()},
        "preemptions": list(decision.preemptions),
        "degraded": bool(decision.degraded),
    }


# --------------------------------------------------------------------- #
# The service ledger (durable half of ServiceStats)
# --------------------------------------------------------------------- #
def new_ledger() -> Dict[str, Any]:
    """Conservation counters plus the idempotency and first-placement maps."""
    return {
        "accepted": 0,
        "placed": 0,
        "rejected": 0,
        "preemptions": 0,
        "completions": 0,
        "rounds": 0,
        "degraded_rounds": 0,
        "duplicates": 0,
        "placed_ids": set(),
        "idempotency": {},
    }


def _ledger_to_payload(ledger: Dict[str, Any]) -> Dict[str, Any]:
    payload = dict(ledger)
    payload["placed_ids"] = sorted(ledger["placed_ids"])
    payload["idempotency"] = dict(ledger["idempotency"])
    return payload


def _ledger_from_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    ledger = new_ledger()
    ledger.update(payload)
    ledger["placed_ids"] = set(payload.get("placed_ids", ()))
    ledger["idempotency"] = dict(payload.get("idempotency", {}))
    return ledger


# --------------------------------------------------------------------- #
# Log framing
# --------------------------------------------------------------------- #
def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_segment(path: Path) -> Tuple[List[Dict[str, Any]], bool]:
    """Read every intact record of one segment.

    Returns ``(records, torn)``: ``torn`` is True when trailing bytes did
    not form a complete checksummed record (short header, short payload,
    CRC mismatch, or undecodable JSON) -- those bytes are dropped, never
    half-applied.
    """
    data = Path(path).read_bytes()
    records: List[Dict[str, Any]] = []
    offset = 0
    while True:
        if offset == len(data):
            return records, False
        if len(data) - offset < _HEADER.size:
            return records, True
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            return records, True
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, True
        try:
            record = json.loads(payload)
        except ValueError:
            return records, True
        records.append(record)
        offset = end


def _snapshot_path(directory: Path, epoch: int) -> Path:
    return directory / f"{_SNAPSHOT_PREFIX}{epoch:08d}.json"


def _segment_path(directory: Path, epoch: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{epoch:08d}.log"


def _indexed_files(directory: Path, prefix: str, suffix: str) -> List[Tuple[int, Path]]:
    found = []
    for path in directory.iterdir():
        name = path.name
        if name.startswith(prefix) and name.endswith(suffix):
            try:
                found.append((int(name[len(prefix): -len(suffix)]), path))
            except ValueError:
                continue
    return sorted(found)


def _load_snapshot(path: Path) -> Optional[Dict[str, Any]]:
    """Load a CRC-guarded snapshot; ``None`` on any corruption."""
    try:
        raw = path.read_bytes()
        header, _, body = raw.partition(b"\n")
        if not body or int(header, 16) != zlib.crc32(body):
            return None
        return json.loads(body)
    except (OSError, ValueError):
        return None


# --------------------------------------------------------------------- #
# The durability layer (writer side)
# --------------------------------------------------------------------- #
class DurabilityLayer:
    """Owns a state directory: the active WAL segment and snapshot rotation.

    Args:
        state_dir: Directory for snapshots and log segments (created if
            missing).
        fsync: fsync every appended record and snapshot (turn off only in
            benchmarks isolating serialization cost from disk latency).
        snapshot_interval_rounds: Snapshot after this many logged rounds.
        snapshot_max_log_bytes: ... or when the active segment exceeds
            this size, whichever comes first.
        keep_snapshots: Retained snapshot generations.  Two by default, so
            a crash that corrupts the newest snapshot (or tears it
            mid-write) still recovers from the previous one plus its log.
        crash: Optional :class:`~repro.chaos.CrashInjector` for the
            kill -9 harness; ``None`` costs nothing.
    """

    def __init__(
        self,
        state_dir,
        fsync: bool = True,
        snapshot_interval_rounds: int = 64,
        snapshot_max_log_bytes: int = 4 * 1024 * 1024,
        keep_snapshots: int = 2,
        crash: Optional[CrashInjector] = None,
    ) -> None:
        if snapshot_interval_rounds < 1:
            raise ValueError("snapshot_interval_rounds must be >= 1")
        if keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")
        self.directory = Path(state_dir)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.snapshot_interval_rounds = snapshot_interval_rounds
        self.snapshot_max_log_bytes = snapshot_max_log_bytes
        self.keep_snapshots = keep_snapshots
        self.crash = crash
        #: Last assigned record sequence number (monotonic across segments).
        self.seq = 0
        #: Snapshot/segment epoch; 0 until the first snapshot is written.
        self.epoch = 0
        self.records_appended = 0
        self.bytes_appended = 0
        self.snapshots_written = 0
        self._rounds_since_snapshot = 0
        self._file = None
        self._segment_bytes = 0

    @property
    def active(self) -> bool:
        """Whether a segment is open for appends (a snapshot exists)."""
        return self._file is not None

    def has_prior_state(self) -> bool:
        """Whether the directory already holds snapshots or segments."""
        return bool(
            _indexed_files(self.directory, _SNAPSHOT_PREFIX, ".json")
            or _indexed_files(self.directory, _SEGMENT_PREFIX, ".log")
        )

    def resume_from(self, recovered: "RecoveredState") -> None:
        """Continue sequence/epoch numbering after :func:`recover`."""
        self.seq = recovered.seq
        self.epoch = recovered.epoch

    # ------------------------------------------------------------------ #
    # Appends
    # ------------------------------------------------------------------ #
    def _append(self, kind: str, payload: Dict[str, Any], crash_point: str) -> None:
        if self._file is None:
            raise RecoveryError("no active segment: write a snapshot first")
        self.seq += 1
        record = dict(payload)
        record["kind"] = kind
        record["seq"] = self.seq
        framed = _frame(json.dumps(record, separators=(",", ":")).encode("utf-8"))
        if self.crash is not None:
            self.crash.hit(crash_point, fileobj=self._file, pending_bytes=framed)
        self._file.write(framed)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self._segment_bytes += len(framed)
        self.bytes_appended += len(framed)
        self.records_appended += 1

    def log_admission(self, payload: Dict[str, Any]) -> None:
        """Append one fsync'd ``admit`` record (before the batch applies)."""
        self._append("admit", payload, "admit_append")

    def log_round(self, payload: Dict[str, Any]) -> None:
        """Append one fsync'd ``round`` record (before clients are told)."""
        self._append("round", payload, "round_append")
        self._rounds_since_snapshot += 1

    def crash_point(self, point: str) -> None:
        """Pass a non-append crash point (``mid_drain``) to the injector."""
        if self.crash is not None:
            self.crash.hit(point)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def should_snapshot(self) -> bool:
        """Whether either snapshot trigger (rounds, log size) has tripped."""
        return (
            self._rounds_since_snapshot >= self.snapshot_interval_rounds
            or self._segment_bytes >= self.snapshot_max_log_bytes
        )

    def write_snapshot(
        self,
        state_payload: Dict[str, Any],
        ledger: Dict[str, Any],
        clock: float,
    ) -> Path:
        """Write a snapshot atomically and rotate to a fresh segment.

        The snapshot's barrier is the current log sequence number: records
        up to and including it are superseded by the snapshot, and
        segments wholly behind the retained snapshots are deleted.
        """
        self.epoch += 1
        body = json.dumps(
            {
                "epoch": self.epoch,
                "barrier_seq": self.seq,
                "clock": clock,
                "state": state_payload,
                "ledger": _ledger_to_payload(ledger),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        content = f"{zlib.crc32(body):08x}".encode("ascii") + b"\n" + body
        final = _snapshot_path(self.directory, self.epoch)
        tmp = final.with_suffix(".json.tmp")
        with open(tmp, "wb") as handle:
            if self.crash is not None:
                # Crash mid-write: leave a torn temp file on disk so the
                # harness proves recovery never trusts an unrenamed temp.
                self.crash.hit(
                    "mid_snapshot",
                    fileobj=handle,
                    pending_bytes=content[: max(1, len(content) // 2)],
                )
            handle.write(content)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._fsync_directory()

        # Rotate: further records land in the new epoch's segment.
        if self._file is not None:
            self._file.close()
        self._file = open(_segment_path(self.directory, self.epoch), "ab")
        self._segment_bytes = 0
        self._rounds_since_snapshot = 0
        self.snapshots_written += 1
        self._prune()
        return final

    def _fsync_directory(self) -> None:
        if not self.fsync:
            return
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _prune(self) -> None:
        """Drop snapshots beyond the retention count and superseded segments."""
        snapshots = _indexed_files(self.directory, _SNAPSHOT_PREFIX, ".json")
        keep = snapshots[-self.keep_snapshots:]
        oldest_kept = keep[0][0] if keep else self.epoch
        for epoch, path in snapshots[: -self.keep_snapshots]:
            path.unlink(missing_ok=True)
        for epoch, path in _indexed_files(self.directory, _SEGMENT_PREFIX, ".log"):
            # Segment N holds records appended *after* snapshot N; it is
            # needed by any retained snapshot <= N, so only segments
            # strictly behind the oldest retained snapshot can go.
            if epoch < oldest_kept:
                path.unlink(missing_ok=True)
        for path in self.directory.glob("*.tmp"):
            path.unlink(missing_ok=True)

    def close(self) -> None:
        """Close the active segment (recovery reads files, not handles)."""
        if self._file is not None:
            self._file.close()
            self._file = None


# --------------------------------------------------------------------- #
# Recovery (reader side)
# --------------------------------------------------------------------- #
@dataclass
class RecoveredState:
    """Everything :func:`recover` reconstructs from the state directory."""

    state: ClusterState
    ledger: Dict[str, Any]
    #: Service clock at the last durable record, so a restarted service
    #: resumes its monotonic time instead of rewinding to zero.
    clock: float = 0.0
    seq: int = 0
    epoch: int = 0
    snapshot_epoch: int = 0
    replayed_records: int = 0
    duplicates_dropped: int = 0
    torn_tail_dropped: bool = False
    snapshots_skipped: int = 0


def _replay_admit(state: ClusterState, ledger: Dict[str, Any], record: Dict[str, Any]) -> int:
    """Re-apply one admission batch; returns duplicates dropped."""
    now = record["now"]
    duplicates = 0
    for submission in record["submissions"]:
        key = submission.get("key")
        if key is not None and key in ledger["idempotency"]:
            duplicates += 1
            ledger["duplicates"] += 1
            continue
        job = _job_from_payload(submission["job"])
        state.submit_job(job)
        ledger["accepted"] += len(job.tasks)
        if key is not None:
            ledger["idempotency"][key] = job.job_id
    for machine_payload in record["machines_added"]:
        state.add_machine(_machine_from_payload(machine_payload))
    for machine_id in record["machines_removed"]:
        evicted = state.fail_machine(machine_id, now)
        ledger["preemptions"] += len(evicted)
    for task_id, start in record["completions"]:
        task = state.tasks.get(task_id)
        # Same stale-completion guard as the live path: the timer firing
        # belongs to this execution only if the task still runs from the
        # recorded start.
        if task is not None and task.is_running and task.start_time == start:
            state.complete_task(task_id, now)
            ledger["completions"] += 1
    return duplicates


def _replay_round(state: ClusterState, ledger: Dict[str, Any], record: Dict[str, Any]) -> None:
    """Re-apply one round's logged effects (preempt, migrate, place)."""
    now = record["now"]
    for task_id in record["preemptions"]:
        state.preempt_task(task_id, now)
        ledger["preemptions"] += 1
    started: List[int] = []
    for task_id, machine_id in record["migrations"].items():
        state.migrate_task(int(task_id), machine_id, now)
        started.append(int(task_id))
    for task_id, machine_id in record["placements"].items():
        state.place_task(int(task_id), machine_id, now)
        started.append(int(task_id))
    for task_id in started:
        if task_id not in ledger["placed_ids"]:
            ledger["placed_ids"].add(task_id)
            ledger["placed"] += 1
    ledger["rounds"] += 1
    if record["degraded"]:
        ledger["degraded_rounds"] += 1


def recover(state_dir) -> RecoveredState:
    """Rebuild the service state from the newest valid snapshot + log tail.

    Corrupt or torn snapshots are skipped (retention keeps the previous
    generation and its segments); a torn final log record is dropped.
    Raises :class:`RecoveryError` when no valid snapshot exists or a log
    record contradicts the state it replays onto.
    """
    directory = Path(state_dir)
    snapshots = _indexed_files(directory, _SNAPSHOT_PREFIX, ".json")
    if not snapshots:
        raise RecoveryError(f"no snapshot found in {directory}")

    chosen: Optional[Dict[str, Any]] = None
    skipped = 0
    for epoch, path in reversed(snapshots):
        chosen = _load_snapshot(path)
        if chosen is not None:
            break
        skipped += 1
    if chosen is None:
        raise RecoveryError(f"every snapshot in {directory} is corrupt")

    state = restore_cluster_state(chosen["state"])
    ledger = _ledger_from_payload(chosen["ledger"])
    recovered = RecoveredState(
        state=state,
        ledger=ledger,
        clock=chosen["clock"],
        seq=chosen["barrier_seq"],
        epoch=chosen["epoch"],
        snapshot_epoch=chosen["epoch"],
        snapshots_skipped=skipped,
    )

    barrier = chosen["barrier_seq"]
    for epoch, path in _indexed_files(directory, _SEGMENT_PREFIX, ".log"):
        if epoch < chosen["epoch"]:
            continue
        records, torn = read_segment(path)
        recovered.torn_tail_dropped = recovered.torn_tail_dropped or torn
        for record in records:
            if record["seq"] <= barrier:
                continue
            try:
                if record["kind"] == "admit":
                    recovered.duplicates_dropped += _replay_admit(
                        state, ledger, record
                    )
                elif record["kind"] == "round":
                    _replay_round(state, ledger, record)
                else:
                    raise RecoveryError(f"unknown record kind {record['kind']!r}")
            except (KeyError, ValueError) as error:
                raise RecoveryError(
                    f"replaying record seq={record.get('seq')} of {path.name} "
                    f"failed: {error}"
                ) from error
            recovered.seq = record["seq"]
            recovered.clock = max(recovered.clock, record.get("now", 0.0))
            recovered.replayed_records += 1
        recovered.epoch = max(recovered.epoch, epoch)

    # Whatever graph state a scheduler had is gone with the old process;
    # force the first post-recovery round to rebuild from scratch instead
    # of trusting a stale-looking epoch chain.
    state.dirty.mark_all()
    return recovered
