"""Closed-loop load generator for :class:`repro.service.server.SchedulerService`.

Each generator client runs a closed loop: submit one job, wait until every
task of that job is placed (reading the service's placement stream), then
immediately submit the next.  Offered load is therefore controlled by the
number of concurrent clients -- the canonical closed-loop model, where a
slow scheduler throttles its own offered load instead of building an
unbounded backlog.

The per-task submission-to-placement latency is taken from the service's
own ``placement`` events (service time, measured at the round boundary),
so the SLO numbers exclude client-side network jitter.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["LoadgenResult", "run_loadgen", "run_loadgen_sync"]


@dataclass
class LoadgenResult:
    """Aggregated outcome of one load-generation run."""

    clients: int = 0
    jobs_submitted: int = 0
    tasks_accepted: int = 0
    tasks_placed: int = 0
    #: Service-side submission-to-placement latency per placed task (s).
    latencies: List[float] = field(default_factory=list)
    errors: int = 0
    #: Final service stats snapshot (the conservation counters), if polled.
    service_stats: Optional[Dict[str, Any]] = None

    def latency_percentile(self, pct: float) -> float:
        """Return a latency percentile (nearest-rank); 0.0 when empty."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1, int(round(
            pct / 100.0 * (len(ordered) - 1)
        ))))
        return ordered[rank]

    def merge(self, other: "LoadgenResult") -> None:
        self.jobs_submitted += other.jobs_submitted
        self.tasks_accepted += other.tasks_accepted
        self.tasks_placed += other.tasks_placed
        self.latencies.extend(other.latencies)
        self.errors += other.errors


async def _read_event(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    line = await reader.readline()
    if not line:
        return None
    return json.loads(line)


async def _client_loop(
    host: str,
    port: int,
    jobs: int,
    tasks_per_job: int,
    duration: Optional[float],
    job_type: str,
) -> LoadgenResult:
    """One closed-loop client: submit, await all placements, repeat."""
    result = LoadgenResult()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for sequence in range(jobs):
            request = {
                "op": "submit", "tasks": tasks_per_job, "id": sequence,
                "job_type": job_type,
            }
            if duration is not None:
                request["duration"] = duration
            writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await writer.drain()
            result.jobs_submitted += 1

            outstanding: set = set()
            acked = False
            while not acked or outstanding:
                event = await _read_event(reader)
                if event is None:
                    result.errors += 1
                    return result
                kind = event.get("event")
                if kind == "ack" and event.get("id") == sequence:
                    acked = True
                    if event.get("error"):
                        result.errors += 1
                        break
                    result.tasks_accepted += event.get("accepted", 0)
                    outstanding.update(event.get("task_ids", []))
                elif kind == "placement":
                    task_id = event.get("task_id")
                    if task_id in outstanding:
                        outstanding.discard(task_id)
                        result.tasks_placed += 1
                        result.latencies.append(float(event["latency"]))
                elif kind == "rejected":
                    for task_id in event.get("task_ids", []):
                        outstanding.discard(task_id)
                elif kind == "error":
                    result.errors += 1
                # completions/preemptions of earlier jobs are ignored:
                # the closed loop only gates on the current job's placement.
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return result


async def _poll_stats(host: str, port: int) -> Optional[Dict[str, Any]]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps({"op": "stats"}).encode("utf-8") + b"\n")
        await writer.drain()
        while True:
            event = await _read_event(reader)
            if event is None:
                return None
            if event.get("event") == "stats":
                return event
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_loadgen(
    host: str,
    port: int,
    clients: int = 4,
    jobs_per_client: int = 4,
    tasks_per_job: int = 8,
    duration: Optional[float] = 1.0,
    job_type: str = "batch",
    poll_stats: bool = True,
) -> LoadgenResult:
    """Run ``clients`` concurrent closed-loop clients and aggregate.

    Args:
        host: Service host.
        port: Service port.
        clients: Concurrent closed-loop clients (the offered-load knob).
        jobs_per_client: Jobs each client submits (sequentially).
        tasks_per_job: Tasks per submitted job.
        duration: Task duration in service seconds (None = service tasks
            that never complete -- they hold their slots).
        job_type: ``"batch"`` or ``"service"``.
        poll_stats: Fetch the service's conservation counters afterwards.
    """
    outcomes = await asyncio.gather(*[
        _client_loop(host, port, jobs_per_client, tasks_per_job, duration,
                     job_type)
        for _ in range(clients)
    ])
    total = LoadgenResult(clients=clients)
    for outcome in outcomes:
        total.merge(outcome)
    if poll_stats:
        total.service_stats = await _poll_stats(host, port)
    return total


def run_loadgen_sync(*args, **kwargs) -> LoadgenResult:
    """Synchronous wrapper around :func:`run_loadgen` (tests, benchmarks)."""
    return asyncio.run(run_loadgen(*args, **kwargs))
