"""Closed-loop load generator for :class:`repro.service.server.SchedulerService`.

Each generator client runs a closed loop: submit one job, wait until every
task of that job is placed (reading the service's placement stream), then
immediately submit the next.  Offered load is therefore controlled by the
number of concurrent clients -- the canonical closed-loop model, where a
slow scheduler throttles its own offered load instead of building an
unbounded backlog.

The per-task submission-to-placement latency is taken from the service's
own ``placement`` events (service time, measured at the round boundary),
so the SLO numbers exclude client-side network jitter.

Crash-driving mode (ISSUE 10): with ``idempotency_keys=True`` every
submission carries a deterministic per-(client, job) key, and with
``reconnect=True`` a dropped connection -- the server was SIGKILLed by the
recovery harness -- is retried against ``endpoint()`` (which the harness
points at the restarted server's new port) and the in-flight job is
*resubmitted under the same key*.  The service deduplicates: a job that
survived the crash comes back as a ``duplicate: true`` ack listing the
placements that already happened, so a resubmitted job is never placed
twice -- which the per-task accounting here asserts.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["LoadgenResult", "run_loadgen", "run_loadgen_sync"]


@dataclass
class LoadgenResult:
    """Aggregated outcome of one load-generation run."""

    clients: int = 0
    jobs_submitted: int = 0
    tasks_accepted: int = 0
    tasks_placed: int = 0
    #: Service-side submission-to-placement latency per placed task (s).
    latencies: List[float] = field(default_factory=list)
    errors: int = 0
    #: Connections re-established after the server dropped us (crash runs).
    reconnects: int = 0
    #: Jobs resubmitted under their original idempotency key.
    resubmissions: int = 0
    #: Resubmissions the service answered with ``duplicate: true``.
    duplicate_acks: int = 0
    #: Final service stats snapshot (the conservation counters), if polled.
    service_stats: Optional[Dict[str, Any]] = None

    def latency_percentile(self, pct: float) -> float:
        """Return a latency percentile (nearest-rank); 0.0 when empty."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1, int(round(
            pct / 100.0 * (len(ordered) - 1)
        ))))
        return ordered[rank]

    def merge(self, other: "LoadgenResult") -> None:
        self.jobs_submitted += other.jobs_submitted
        self.tasks_accepted += other.tasks_accepted
        self.tasks_placed += other.tasks_placed
        self.latencies.extend(other.latencies)
        self.errors += other.errors
        self.reconnects += other.reconnects
        self.resubmissions += other.resubmissions
        self.duplicate_acks += other.duplicate_acks


class _ConnectionLost(Exception):
    """The server went away mid-exchange (EOF, reset, refused)."""


async def _read_event(reader: asyncio.StreamReader) -> Dict[str, Any]:
    try:
        line = await reader.readline()
    except (ConnectionResetError, BrokenPipeError, OSError) as error:
        raise _ConnectionLost(str(error)) from error
    if not line:
        raise _ConnectionLost("EOF")
    return json.loads(line)


async def _client_loop(
    endpoint: Callable[[], Tuple[str, int]],
    jobs: int,
    tasks_per_job: int,
    duration: Optional[float],
    job_type: str,
    client_index: int,
    key_prefix: Optional[str],
    reconnect: bool,
    reconnect_attempts: int,
    reconnect_delay: float,
) -> LoadgenResult:
    """One closed-loop client: submit, await all placements, repeat."""
    result = LoadgenResult()
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None

    async def close() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        reader = writer = None

    async def connect() -> bool:
        nonlocal reader, writer
        await close()
        for attempt in range(max(1, reconnect_attempts)):
            if attempt:
                await asyncio.sleep(reconnect_delay)
            host, port = endpoint()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                return True
            except OSError:
                continue
        return False

    async def run_job(sequence: int, key: Optional[str],
                      counted_placed: set, state: dict) -> None:
        """One submit + wait-for-placements exchange on the live connection.

        Raises :class:`_ConnectionLost` if the server dies mid-exchange;
        the caller reconnects and calls again with the same ``key`` and
        the same ``counted_placed``/``state`` so nothing is double
        counted across attempts.
        """
        request: Dict[str, Any] = {
            "op": "submit", "tasks": tasks_per_job, "id": sequence,
            "job_type": job_type,
        }
        if key is not None:
            request["key"] = key
        if duration is not None:
            request["duration"] = duration
        try:
            writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as error:
            raise _ConnectionLost(str(error)) from error

        outstanding: set = set()
        acked = False
        while not acked or outstanding:
            event = await _read_event(reader)
            kind = event.get("event")
            if kind == "ack" and event.get("id") == sequence:
                acked = True
                if event.get("error"):
                    result.errors += 1
                    return
                task_ids = event.get("task_ids", [])
                if event.get("duplicate"):
                    # The job survived a crash: the recovered service
                    # already holds it.  Placements delivered before the
                    # crash are listed; only the remainder is outstanding.
                    result.duplicate_acks += 1
                    if not state["accepted_counted"]:
                        result.tasks_accepted += len(task_ids)
                        state["accepted_counted"] = True
                    already = set(event.get("placed_task_ids", []))
                    for task_id in sorted(already - counted_placed):
                        # Placed exactly once (before the crash); the
                        # latency observation was lost with the old
                        # connection, so only the count is recovered.
                        counted_placed.add(task_id)
                        result.tasks_placed += 1
                    outstanding.update(set(task_ids) - already)
                else:
                    if not state["accepted_counted"]:
                        result.tasks_accepted += event.get("accepted", 0)
                        state["accepted_counted"] = True
                    outstanding.update(task_ids)
            elif kind == "placement":
                task_id = event.get("task_id")
                if task_id in outstanding:
                    outstanding.discard(task_id)
                    assert task_id not in counted_placed, (
                        f"task {task_id} placed twice across resubmission"
                    )
                    counted_placed.add(task_id)
                    result.tasks_placed += 1
                    result.latencies.append(float(event["latency"]))
            elif kind == "rejected":
                for task_id in event.get("task_ids", []):
                    outstanding.discard(task_id)
            elif kind == "error":
                result.errors += 1
            # completions/preemptions of earlier jobs are ignored:
            # the closed loop only gates on the current job's placement.

    if not await connect():
        result.errors += 1
        return result
    try:
        for sequence in range(jobs):
            key = (
                f"{key_prefix}-c{client_index}-j{sequence}"
                if key_prefix is not None
                else None
            )
            counted_placed: set = set()
            state = {"accepted_counted": False}
            submitted = False
            while True:
                try:
                    await run_job(sequence, key, counted_placed, state)
                    if not submitted:
                        result.jobs_submitted += 1
                    break
                except _ConnectionLost:
                    if not submitted:
                        result.jobs_submitted += 1
                    submitted = True
                    # Resubmitting without a key would double-accept the
                    # job on a server that survived; only keyed loads may
                    # retry across a connection loss.
                    if not reconnect or key is None:
                        result.errors += 1
                        return result
                    if not await connect():
                        result.errors += 1
                        return result
                    result.reconnects += 1
                    result.resubmissions += 1
    finally:
        await close()
    return result


async def _poll_stats(host: str, port: int) -> Optional[Dict[str, Any]]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps({"op": "stats"}).encode("utf-8") + b"\n")
        await writer.drain()
        while True:
            try:
                event = await _read_event(reader)
            except _ConnectionLost:
                return None
            if event.get("event") == "stats":
                return event
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run_loadgen(
    host: str,
    port: int,
    clients: int = 4,
    jobs_per_client: int = 4,
    tasks_per_job: int = 8,
    duration: Optional[float] = 1.0,
    job_type: str = "batch",
    poll_stats: bool = True,
    idempotency_keys: bool = False,
    key_prefix: str = "lg",
    reconnect: bool = False,
    reconnect_attempts: int = 40,
    reconnect_delay: float = 0.25,
    endpoint: Optional[Callable[[], Tuple[str, int]]] = None,
) -> LoadgenResult:
    """Run ``clients`` concurrent closed-loop clients and aggregate.

    Args:
        host: Service host.
        port: Service port.
        clients: Concurrent closed-loop clients (the offered-load knob).
        jobs_per_client: Jobs each client submits (sequentially).
        tasks_per_job: Tasks per submitted job.
        duration: Task duration in service seconds (None = service tasks
            that never complete -- they hold their slots).
        job_type: ``"batch"`` or ``"service"``.
        poll_stats: Fetch the service's conservation counters afterwards.
        idempotency_keys: Attach a deterministic per-(client, job) key to
            every submission.
        key_prefix: Key namespace, so two loadgen runs against one
            service do not collide.
        reconnect: Survive a dropped connection by reconnecting and
            resubmitting the in-flight job under its key (requires
            ``idempotency_keys``).
        reconnect_attempts: Connection attempts per (re)connect before
            giving up on the client.
        reconnect_delay: Seconds between connection attempts (covers the
            restart window of a crashed server).
        endpoint: Callable returning the current ``(host, port)``; the
            recovery harness swaps in the restarted server's ephemeral
            port.  Defaults to the static ``host``/``port``.
    """
    if reconnect and not idempotency_keys:
        raise ValueError("reconnect=True requires idempotency_keys=True")
    resolve = endpoint or (lambda: (host, port))
    outcomes = await asyncio.gather(*[
        _client_loop(
            resolve, jobs_per_client, tasks_per_job, duration, job_type,
            client_index=index,
            key_prefix=key_prefix if idempotency_keys else None,
            reconnect=reconnect,
            reconnect_attempts=reconnect_attempts,
            reconnect_delay=reconnect_delay,
        )
        for index in range(clients)
    ])
    total = LoadgenResult(clients=clients)
    for outcome in outcomes:
        total.merge(outcome)
    if poll_stats:
        stats_host, stats_port = resolve()
        try:
            total.service_stats = await _poll_stats(stats_host, stats_port)
        except OSError:
            total.service_stats = None
    return total


def run_loadgen_sync(*args, **kwargs) -> LoadgenResult:
    """Synchronous wrapper around :func:`run_loadgen` (tests, benchmarks)."""
    return asyncio.run(run_loadgen(*args, **kwargs))
