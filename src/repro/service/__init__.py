"""Scheduler-as-a-service front end (ISSUE 9 / ROADMAP item 3).

The simulator drives the scheduler from a synthetic event queue; this
package drives it from *live clients*.  :class:`SchedulerService` exposes
the flow-based schedulers over a JSON-lines TCP protocol: concurrent
clients submit jobs and machine events, the service coalesces everything
that arrived since the previous round into ordinary
:class:`~repro.cluster.state.ClusterState` mutations (admission cost stays
O(|changes|) through the existing dirty-tracking path), runs a budgeted
scheduling round, and streams per-client placement / preemption
notifications back with backpressure.

Since ISSUE 10 the service is optionally *crash-safe*: a
:class:`DurabilityLayer` write-ahead-logs every admission batch and
applied round, snapshots the full cluster state periodically, and
:func:`recover` rebuilds an equivalent service after ``kill -9`` -- with
duplicate resubmissions deduplicated by client-supplied idempotency keys
and ``accepted == placed + pending + rejected`` preserved across the
crash boundary.

The package is pure stdlib (``asyncio`` + ``json`` + ``struct``); no new
dependencies.

Modules:

* :mod:`repro.service.server` -- the service itself.
* :mod:`repro.service.durability` -- write-ahead log, snapshots, recovery.
* :mod:`repro.service.loadgen` -- closed-loop load generator used by the
  service tests and ``benchmarks/bench_service_slo.py``.
"""

from repro.service.durability import (
    DurabilityLayer,
    RecoveredState,
    RecoveryError,
    recover,
    restore_cluster_state,
    snapshot_cluster_state,
)
from repro.service.server import SchedulerService, ServiceConfig, ServiceStats

__all__ = [
    "DurabilityLayer",
    "RecoveredState",
    "RecoveryError",
    "SchedulerService",
    "ServiceConfig",
    "ServiceStats",
    "recover",
    "restore_cluster_state",
    "snapshot_cluster_state",
]
