"""Scheduler-as-a-service front end (ISSUE 9 / ROADMAP item 3).

The simulator drives the scheduler from a synthetic event queue; this
package drives it from *live clients*.  :class:`SchedulerService` exposes
the flow-based schedulers over a JSON-lines TCP protocol: concurrent
clients submit jobs and machine events, the service coalesces everything
that arrived since the previous round into ordinary
:class:`~repro.cluster.state.ClusterState` mutations (admission cost stays
O(|changes|) through the existing dirty-tracking path), runs a budgeted
scheduling round, and streams per-client placement / preemption
notifications back with backpressure.

The package is pure stdlib (``asyncio`` + ``json``); no new dependencies.

Modules:

* :mod:`repro.service.server` -- the service itself.
* :mod:`repro.service.loadgen` -- closed-loop load generator used by the
  service tests and ``benchmarks/bench_service_slo.py``.
"""

from repro.service.server import SchedulerService, ServiceConfig, ServiceStats

__all__ = ["SchedulerService", "ServiceConfig", "ServiceStats"]
