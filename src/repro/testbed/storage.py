"""HDFS-like block storage model.

Batch analytics tasks on the paper's testbed read 4-8 GB inputs from a
cluster-wide HDFS installation.  The storage model places fixed-size blocks
with three-way replication across machines and answers the question the
scheduler and the network model need: what fraction of a given task's input
is local to a given machine?
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StoredInput:
    """The block placement of one task's input dataset."""

    input_id: int
    size_gb: float
    block_size_gb: float
    block_replicas: List[List[int]] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the dataset."""
        return len(self.block_replicas)

    def locality_fractions(self) -> Dict[int, float]:
        """Return, per machine, the fraction of this input stored locally."""
        if not self.block_replicas:
            return {}
        per_block = 1.0 / len(self.block_replicas)
        fractions: Dict[int, float] = {}
        for replicas in self.block_replicas:
            for machine_id in replicas:
                fractions[machine_id] = fractions.get(machine_id, 0.0) + per_block
        return {m: min(1.0, f) for m, f in fractions.items()}

    def local_fraction(self, machine_id: int) -> float:
        """Return the fraction of the input local to one machine."""
        return self.locality_fractions().get(machine_id, 0.0)


class HdfsStorage:
    """Places task inputs as replicated blocks across the cluster."""

    def __init__(
        self,
        machine_ids: List[int],
        block_size_gb: float = 0.5,
        replication: int = 3,
        seed: int = 7,
    ) -> None:
        """Create the storage layer.

        Args:
            machine_ids: Machines holding HDFS data nodes.
            block_size_gb: Block size (HDFS defaults to 128-512 MB; a larger
                value keeps block counts manageable for 4-8 GB inputs).
            replication: Replicas per block.
            seed: RNG seed for block placement.
        """
        if not machine_ids:
            raise ValueError("storage needs at least one machine")
        self.machine_ids = list(machine_ids)
        self.block_size_gb = block_size_gb
        self.replication = min(replication, len(machine_ids))
        self._rng = random.Random(seed)
        self._inputs: Dict[int, StoredInput] = {}
        self._next_input_id = 0

    def store_input(self, size_gb: float, input_id: Optional[int] = None) -> StoredInput:
        """Place a new input dataset of the given size and return it."""
        if size_gb <= 0:
            raise ValueError("input size must be positive")
        if input_id is None:
            input_id = self._next_input_id
            self._next_input_id += 1
        num_blocks = max(1, int(round(size_gb / self.block_size_gb)))
        block_replicas = [
            self._rng.sample(self.machine_ids, self.replication)
            for _ in range(num_blocks)
        ]
        stored = StoredInput(
            input_id=input_id,
            size_gb=size_gb,
            block_size_gb=self.block_size_gb,
            block_replicas=block_replicas,
        )
        self._inputs[input_id] = stored
        return stored

    def input(self, input_id: int) -> StoredInput:
        """Return a previously stored input."""
        return self._inputs[input_id]

    def remote_gb(self, input_id: int, machine_id: int) -> float:
        """Return how many GB of an input must be fetched remotely by a machine."""
        stored = self._inputs[input_id]
        return stored.size_gb * (1.0 - stored.local_fraction(machine_id))
