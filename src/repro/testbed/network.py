"""Flow-level network model with max-min fair bandwidth sharing.

The testbed experiments need one thing from the network: given which task
reads how much remote data into which machine, and which background flows
occupy which links, how long does each task's input transfer take?  The
model answers that with flow-level simulation:

* every machine has a full-duplex NIC (separate ingress and egress capacity);
* *background flows* (iperf batch traffic, nginx service traffic) belong to
  a higher-priority network service class (as in the paper's setup, which
  uses QJUMP-style priority levels) and receive their demanded rate first,
  capped by fair sharing among themselves;
* task input transfers share the remaining capacity max-min fairly, each
  constrained at the destination machine's ingress (HDFS reads fan in from
  several replica holders, so the destination NIC is the bottleneck);
* whenever a transfer starts or finishes, all rates are recomputed.

The result, per transfer, is its completion time -- from which the testbed
experiment derives task response times.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(eq=False)
class BackgroundFlow:
    """A long-lived, higher-priority flow between two machines.

    Instances are compared by identity (``eq=False``) so they can key the
    rate-allocation dictionaries even when two flows share all attributes.

    Attributes:
        src: Source machine id (``None`` models traffic entering the cluster).
        dst: Destination machine id (``None`` models traffic leaving it).
        demand_mbps: Rate the flow tries to sustain.
        name: Label used in reports.
    """

    src: Optional[int]
    dst: Optional[int]
    demand_mbps: float
    name: str = ""


@dataclass
class TransferRequest:
    """A task's remote input transfer.

    Attributes:
        transfer_id: Unique identifier (usually the task id).
        dst: Machine the data is read into.
        size_gb: Remote bytes to transfer, in GB.
        start_time: Time the transfer becomes active.
    """

    transfer_id: int
    dst: int
    size_gb: float
    start_time: float


@dataclass
class _ActiveTransfer:
    transfer_id: int
    dst: int
    remaining_mb: float
    rate_mbps: float = 0.0


class FlowLevelNetwork:
    """Computes transfer completion times under max-min fair sharing."""

    #: Megabits per gigabyte (1 GB = 8 * 1024 Mb).
    MBITS_PER_GB = 8.0 * 1024.0

    def __init__(
        self,
        machine_ids: List[int],
        nic_capacity_mbps: float = 10_000.0,
    ) -> None:
        """Create the network model.

        Args:
            machine_ids: Machines attached to the network.
            nic_capacity_mbps: Full-duplex NIC capacity per machine (10 Gbps
                on the paper's testbed).
        """
        self.machine_ids = list(machine_ids)
        self.nic_capacity_mbps = nic_capacity_mbps
        self.background_flows: List[BackgroundFlow] = []

    # ------------------------------------------------------------------ #
    # Background traffic
    # ------------------------------------------------------------------ #
    def add_background_flow(self, flow: BackgroundFlow) -> None:
        """Register a long-lived higher-priority flow."""
        self.background_flows.append(flow)

    def background_ingress_mbps(self, machine_id: int) -> float:
        """Return the higher-priority ingress load on a machine's NIC."""
        rates = self._background_rates()
        return sum(
            rate for flow, rate in rates.items() if flow.dst == machine_id
        )

    def background_egress_mbps(self, machine_id: int) -> float:
        """Return the higher-priority egress load on a machine's NIC."""
        rates = self._background_rates()
        return sum(
            rate for flow, rate in rates.items() if flow.src == machine_id
        )

    def _background_rates(self) -> Dict[BackgroundFlow, float]:
        """Allocate rates to background flows (max-min among themselves)."""
        return self._max_min_share(
            flows=[(f, f.src, f.dst, f.demand_mbps) for f in self.background_flows],
            ingress_capacity={m: self.nic_capacity_mbps for m in self.machine_ids},
            egress_capacity={m: self.nic_capacity_mbps for m in self.machine_ids},
        )

    # ------------------------------------------------------------------ #
    # Task transfers
    # ------------------------------------------------------------------ #
    def simulate_transfers(
        self, transfers: List[TransferRequest]
    ) -> Dict[int, float]:
        """Simulate the given transfers and return their completion times.

        Transfers become active at their start time, share leftover ingress
        capacity max-min fairly, and their rates are recomputed whenever any
        transfer starts or finishes.

        Returns:
            Mapping from transfer id to completion time (same clock as the
            requests' start times).  Zero-size transfers complete instantly.
        """
        completion: Dict[int, float] = {}
        pending = sorted(transfers, key=lambda t: t.start_time)
        for request in pending:
            if request.size_gb <= 0:
                completion[request.transfer_id] = request.start_time
        pending = [t for t in pending if t.size_gb > 0]
        if not pending:
            return completion

        # Leftover ingress capacity per machine after priority traffic.  A
        # small floor keeps transfers draining even on a NIC whose priority
        # traffic nominally saturates it (in practice the higher service
        # class never starves lower classes completely), and guarantees the
        # simulation terminates.
        floor = self.nic_capacity_mbps * 0.02
        leftover_ingress = {
            m: max(
                floor,
                self.nic_capacity_mbps - self.background_ingress_mbps(m),
            )
            for m in self.machine_ids
        }

        active: Dict[int, _ActiveTransfer] = {}
        now = pending[0].start_time
        next_index = 0

        while active or next_index < len(pending):
            # Activate transfers that have started by now.
            while next_index < len(pending) and pending[next_index].start_time <= now:
                request = pending[next_index]
                active[request.transfer_id] = _ActiveTransfer(
                    transfer_id=request.transfer_id,
                    dst=request.dst,
                    remaining_mb=request.size_gb * self.MBITS_PER_GB,
                )
                next_index += 1

            if not active:
                now = pending[next_index].start_time
                continue

            self._assign_rates(active, leftover_ingress)

            # Time until the next transfer finishes or the next one starts.
            time_to_finish = min(
                (t.remaining_mb / t.rate_mbps if t.rate_mbps > 0 else float("inf"))
                for t in active.values()
            )
            time_to_next_start = (
                pending[next_index].start_time - now
                if next_index < len(pending)
                else float("inf")
            )
            step = min(time_to_finish, time_to_next_start)
            if step == float("inf"):
                # No transfer can make progress (machine fully saturated by
                # priority traffic): creep forward by re-checking after the
                # next arrival; if none, drain at a trickle rate to terminate.
                step = 1.0

            for transfer in active.values():
                transfer.remaining_mb -= transfer.rate_mbps * step
            now += step

            finished = [
                t.transfer_id
                for t in active.values()
                if t.remaining_mb <= 1e-6
            ]
            for transfer_id in finished:
                completion[transfer_id] = now
                del active[transfer_id]
        return completion

    # ------------------------------------------------------------------ #
    # Rate allocation
    # ------------------------------------------------------------------ #
    def _assign_rates(
        self,
        active: Dict[int, _ActiveTransfer],
        leftover_ingress: Dict[int, float],
    ) -> None:
        """Split each machine's leftover ingress equally among its transfers."""
        by_machine: Dict[int, List[_ActiveTransfer]] = {}
        for transfer in active.values():
            by_machine.setdefault(transfer.dst, []).append(transfer)
        for machine_id, transfers in by_machine.items():
            capacity = leftover_ingress.get(machine_id, self.nic_capacity_mbps)
            share = capacity / len(transfers) if transfers else 0.0
            for transfer in transfers:
                transfer.rate_mbps = share

    def _max_min_share(
        self,
        flows: List[Tuple[object, Optional[int], Optional[int], float]],
        ingress_capacity: Dict[int, float],
        egress_capacity: Dict[int, float],
    ) -> Dict[object, float]:
        """Progressive-filling max-min fair allocation for point-to-point flows."""
        remaining_ingress = dict(ingress_capacity)
        remaining_egress = dict(egress_capacity)
        unsatisfied = {key: demand for key, _, _, demand in flows}
        endpoints = {key: (src, dst) for key, src, dst, _ in flows}
        rates = {key: 0.0 for key, _, _, _ in flows}

        for _ in range(len(flows) + 1):
            if not unsatisfied:
                break
            # Fair share each unsatisfied flow could still get on its links.
            increments = {}
            for key, demand_left in unsatisfied.items():
                src, dst = endpoints[key]
                limits = [demand_left]
                if src is not None:
                    users = sum(1 for k in unsatisfied if endpoints[k][0] == src)
                    limits.append(remaining_egress.get(src, 0.0) / max(1, users))
                if dst is not None:
                    users = sum(1 for k in unsatisfied if endpoints[k][1] == dst)
                    limits.append(remaining_ingress.get(dst, 0.0) / max(1, users))
                increments[key] = max(0.0, min(limits))
            progressed = False
            for key, increment in increments.items():
                if increment <= 0:
                    unsatisfied.pop(key, None)
                    continue
                src, dst = endpoints[key]
                rates[key] += increment
                if src is not None:
                    remaining_egress[src] = max(0.0, remaining_egress[src] - increment)
                if dst is not None:
                    remaining_ingress[dst] = max(0.0, remaining_ingress[dst] - increment)
                unsatisfied[key] -= increment
                if unsatisfied[key] <= 1e-9:
                    unsatisfied.pop(key, None)
                progressed = True
            if not progressed:
                break
        return rates
