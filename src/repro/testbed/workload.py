"""Testbed workloads: batch analytics tasks, iperf and nginx background load.

Three workload components reproduce the Section 7.5 setup:

* **short batch analytics tasks** that take 3.5-5 s on an idle cluster and
  read 4-8 GB inputs from HDFS -- the tasks whose response-time CDF the
  experiment reports;
* **iperf-style batch background jobs**: fourteen clients sending sustained
  4 Gb/s UDP streams to seven servers, in a higher-priority network service
  class; and
* **nginx-style service jobs**: three web servers and seven HTTP clients
  creating moderate, long-lived background traffic.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.cluster.task import Job, JobType, Task
from repro.testbed.network import BackgroundFlow
from repro.testbed.storage import HdfsStorage


def make_batch_analytics_jobs(
    storage: HdfsStorage,
    num_jobs: int,
    tasks_per_job: int = 10,
    input_size_range_gb: Tuple[float, float] = (4.0, 8.0),
    compute_time_range_s: Tuple[float, float] = (0.4, 1.0),
    interarrival_s: float = 2.0,
    network_request_mbps: int = 5_000,
    seed: int = 11,
    job_id_offset: int = 0,
    task_id_offset: int = 0,
) -> Tuple[List[Job], Dict[int, float]]:
    """Build the short batch analytics jobs of the testbed experiment.

    Each task's input is stored in HDFS (which determines its locality
    fractions), its ``duration`` is the compute portion of its runtime, and
    the transfer portion is simulated by the network model at experiment
    time.

    Returns:
        The jobs (with submit times spaced by ``interarrival_s``) and a
        mapping from task id to the compute seconds of that task.
    """
    rng = random.Random(seed)
    jobs: List[Job] = []
    compute_times: Dict[int, float] = {}
    task_id = task_id_offset
    for index in range(num_jobs):
        submit_time = index * interarrival_s
        job = Job(
            job_id=job_id_offset + index,
            job_type=JobType.BATCH,
            submit_time=submit_time,
        )
        for _ in range(tasks_per_job):
            input_size = rng.uniform(*input_size_range_gb)
            stored = storage.store_input(input_size, input_id=task_id)
            compute = rng.uniform(*compute_time_range_s)
            job.add_task(
                Task(
                    task_id=task_id,
                    job_id=job.job_id,
                    duration=compute,
                    submit_time=submit_time,
                    input_size_gb=input_size,
                    input_locality=stored.locality_fractions(),
                    network_request_mbps=network_request_mbps,
                )
            )
            compute_times[task_id] = compute
            task_id += 1
        jobs.append(job)
    return jobs, compute_times


def make_iperf_background(
    machine_ids: List[int],
    num_clients: int = 14,
    num_servers: int = 7,
    rate_mbps: float = 4_000.0,
    seed: int = 13,
) -> List[BackgroundFlow]:
    """Build the iperf-style high-priority background flows.

    Clients and servers are placed on distinct machines (as the paper's
    deployment does); each client sends a sustained stream to one server.
    """
    rng = random.Random(seed)
    if num_clients + num_servers > len(machine_ids):
        raise ValueError("not enough machines for the requested iperf deployment")
    chosen = rng.sample(machine_ids, num_clients + num_servers)
    clients = chosen[:num_clients]
    servers = chosen[num_clients:]
    flows = []
    for index, client in enumerate(clients):
        server = servers[index % len(servers)]
        flows.append(
            BackgroundFlow(
                src=client,
                dst=server,
                demand_mbps=rate_mbps,
                name=f"iperf-{index}",
            )
        )
    return flows


def make_nginx_background(
    machine_ids: List[int],
    num_servers: int = 3,
    num_clients: int = 7,
    rate_mbps: float = 800.0,
    seed: int = 17,
) -> List[BackgroundFlow]:
    """Build the nginx-style service background flows (servers to clients)."""
    rng = random.Random(seed)
    if num_servers + num_clients > len(machine_ids):
        raise ValueError("not enough machines for the requested nginx deployment")
    chosen = rng.sample(machine_ids, num_servers + num_clients)
    servers = chosen[:num_servers]
    clients = chosen[num_servers:]
    flows = []
    for index, client in enumerate(clients):
        server = servers[index % len(servers)]
        flows.append(
            BackgroundFlow(
                src=server,
                dst=client,
                demand_mbps=rate_mbps,
                name=f"nginx-{index}",
            )
        )
    return flows
