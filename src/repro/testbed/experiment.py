"""The Section 7.5 testbed experiment: placement quality on a local cluster.

The experiment measures the response time of short batch analytics tasks
under different schedulers, (a) on an otherwise idle network and (b) with
high-priority background traffic from iperf-style batch jobs and nginx-style
services (Figure 19a/b in the paper).  Schedulers that account for network
load (Firmament's network-aware policy) avoid placing tasks onto machines
whose NICs are already busy, which shows up as a much shorter response-time
tail.

A run proceeds in two phases:

1. a scheduling phase, where jobs are submitted in arrival order and the
   scheduler under test places their tasks (slot occupancy is tracked with a
   rough per-task completion estimate so the cluster does not overfill); and
2. a network phase, where every placed task's remote input transfer is
   simulated by the flow-level network model with max-min sharing, yielding
   the task's transfer time and hence its response time.

Task response time = scheduling wait + input transfer time (remote part over
the network, local part from disk, overlapped) + compute time.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.state import ClusterState
from repro.cluster.topology import build_topology
from repro.testbed.network import BackgroundFlow, FlowLevelNetwork, TransferRequest
from repro.testbed.storage import HdfsStorage
from repro.testbed.workload import (
    make_batch_analytics_jobs,
    make_iperf_background,
    make_nginx_background,
)


@dataclass
class TestbedConfig:
    """Parameters of the testbed experiment.

    Attributes:
        num_machines: Cluster size (the paper's testbed has 40 machines).
        slots_per_machine: Task slots per machine.
        nic_capacity_mbps: NIC capacity (10 Gbps on the testbed).
        num_jobs: Number of short batch analytics jobs submitted.
        tasks_per_job: Tasks per job.
        job_interarrival_s: Spacing between job submissions.
        with_background: Add the iperf and nginx background traffic
            (Figure 19b); without it the network is otherwise idle (19a).
        local_read_mbps: Rate at which the local part of an input is read.
        seed: Seed shared by storage placement and workload generation so
            every scheduler sees the identical workload.
    """

    # Not a pytest test class despite the "Test" prefix.
    __test__ = False

    num_machines: int = 40
    slots_per_machine: int = 4
    nic_capacity_mbps: float = 10_000.0
    num_jobs: int = 20
    tasks_per_job: int = 10
    job_interarrival_s: float = 2.0
    with_background: bool = False
    local_read_mbps: float = 6_000.0
    seed: int = 29


@dataclass
class TestbedRunResult:
    """Outcome of running one scheduler through the testbed experiment."""

    # Not a pytest test class despite the "Test" prefix.
    __test__ = False

    scheduler_name: str
    response_times: List[float] = field(default_factory=list)
    transfer_times: Dict[int, float] = field(default_factory=dict)
    placements: Dict[int, int] = field(default_factory=dict)
    unplaced_tasks: int = 0

    def percentile(self, q: float) -> float:
        """Return the q-th percentile of task response time."""
        from repro.analysis.stats import percentile

        return percentile(self.response_times, q)


class TestbedExperiment:
    """Drives schedulers through the Section 7.5 testbed scenario."""

    # Not a pytest test class despite the "Test" prefix.
    __test__ = False

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config or TestbedConfig()

    # ------------------------------------------------------------------ #
    # Experiment pieces (rebuilt per run so every scheduler sees the same
    # deterministic workload on fresh state)
    # ------------------------------------------------------------------ #
    def _build_environment(self):
        config = self.config
        topology = build_topology(
            num_machines=config.num_machines,
            machines_per_rack=max(1, config.num_machines // 4),
            slots_per_machine=config.slots_per_machine,
            network_bandwidth_mbps=int(config.nic_capacity_mbps),
        )
        state = ClusterState(topology)
        machine_ids = sorted(topology.machines)
        storage = HdfsStorage(machine_ids, seed=config.seed)
        jobs, compute_times = make_batch_analytics_jobs(
            storage,
            num_jobs=config.num_jobs,
            tasks_per_job=config.tasks_per_job,
            interarrival_s=config.job_interarrival_s,
            seed=config.seed,
        )
        network = FlowLevelNetwork(machine_ids, config.nic_capacity_mbps)
        if config.with_background:
            for flow in make_iperf_background(machine_ids, seed=config.seed + 1):
                network.add_background_flow(flow)
            for flow in make_nginx_background(machine_ids, seed=config.seed + 2):
                network.add_background_flow(flow)
        # Publish the observed background bandwidth to the monitor so the
        # network-aware policy (and any bandwidth feasibility checks) see it.
        for machine_id in machine_ids:
            used = network.background_ingress_mbps(machine_id) + network.background_egress_mbps(
                machine_id
            )
            state.monitor.record_network_use(machine_id, int(used))
        return state, storage, jobs, compute_times, network

    # ------------------------------------------------------------------ #
    # Runs
    # ------------------------------------------------------------------ #
    def run_idle_baseline(self) -> TestbedRunResult:
        """Response times with each task run in isolation on an idle network."""
        config = self.config
        _, storage, jobs, compute_times, _ = self._build_environment()
        result = TestbedRunResult(scheduler_name="idle")
        for job in jobs:
            for task in job.tasks:
                transfer = task.input_size_gb * FlowLevelNetwork.MBITS_PER_GB / config.nic_capacity_mbps
                result.response_times.append(transfer + compute_times[task.task_id])
        return result

    def run_with_scheduler(self, scheduler, name: str) -> TestbedRunResult:
        """Run the experiment with the given scheduler.

        The scheduler must expose ``schedule(state, now)`` returning a
        :class:`~repro.core.scheduler.SchedulingDecision`; both Firmament and
        the queue-based baselines qualify.  Flow-based schedulers should be
        created with ``allow_migrations=False`` so running transfers are not
        disturbed mid-flight.
        """
        config = self.config
        state, storage, jobs, compute_times, network = self._build_environment()
        result = TestbedRunResult(scheduler_name=name)

        # Rough per-task completion estimates used only to free slots while
        # scheduling; precise transfer times come from the network phase.
        completion_heap: List[Tuple[float, int]] = []
        transfers: List[TransferRequest] = []
        start_times: Dict[int, float] = {}
        remote_sizes: Dict[int, float] = {}
        submit_times: Dict[int, float] = {}
        active_per_machine: Dict[int, int] = {}

        def advance_to(now: float) -> None:
            while completion_heap and completion_heap[0][0] <= now:
                _, finished_task = heapq.heappop(completion_heap)
                task = state.tasks.get(finished_task)
                if task is not None and task.is_running:
                    active_per_machine[task.machine_id] = max(
                        0, active_per_machine.get(task.machine_id, 1) - 1
                    )
                    state.complete_task(finished_task, now)

        def place_decision(decision, now: float) -> None:
            for task_id, machine_id in decision.placements.items():
                if state.free_slots(machine_id) <= 0:
                    continue
                state.place_task(task_id, machine_id, now)
                task = state.tasks[task_id]
                remote_gb = task.input_size_gb * (1.0 - task.locality_fraction(machine_id))
                remote_sizes[task_id] = remote_gb
                start_times[task_id] = now
                result.placements[task_id] = machine_id
                transfers.append(
                    TransferRequest(
                        transfer_id=task_id,
                        dst=machine_id,
                        size_gb=remote_gb,
                        start_time=now,
                    )
                )
                # Rough completion estimate for slot management.
                concurrent = active_per_machine.get(machine_id, 0) + 1
                active_per_machine[machine_id] = concurrent
                leftover = max(
                    100.0,
                    config.nic_capacity_mbps
                    - network.background_ingress_mbps(machine_id),
                )
                est_transfer = remote_gb * FlowLevelNetwork.MBITS_PER_GB / (leftover / concurrent)
                heapq.heappush(
                    completion_heap,
                    (now + est_transfer + compute_times[task_id], task_id),
                )

        for job in sorted(jobs, key=lambda j: j.submit_time):
            now = job.submit_time
            advance_to(now)
            state.submit_job(job)
            for task in job.tasks:
                submit_times[task.task_id] = job.submit_time
            decision = scheduler.schedule(state, now)
            place_decision(decision, now)

        # Drain phase: tasks that could not be placed while the cluster (or
        # its network) was too busy are retried as capacity frees up.
        drain_rounds = 0
        now = max((j.submit_time for j in jobs), default=0.0)
        while state.pending_tasks() and drain_rounds < 10 * len(jobs) + 10:
            drain_rounds += 1
            if completion_heap:
                now = max(now, completion_heap[0][0])
                advance_to(now)
            else:
                now += config.job_interarrival_s
            decision = scheduler.schedule(state, now)
            place_decision(decision, now)
            if not decision.placements and not completion_heap:
                break

        # Network phase: precise transfer times under max-min sharing.
        completions = network.simulate_transfers(transfers)
        for task_id, machine_id in result.placements.items():
            start = start_times[task_id]
            transfer_time = max(0.0, completions.get(task_id, start) - start)
            task = state.tasks[task_id]
            local_gb = task.input_size_gb - remote_sizes[task_id]
            local_read = local_gb * FlowLevelNetwork.MBITS_PER_GB / config.local_read_mbps
            io_time = max(transfer_time, local_read)
            result.transfer_times[task_id] = io_time
            response = (start - submit_times[task_id]) + io_time + compute_times[task_id]
            result.response_times.append(response)

        result.unplaced_tasks = sum(
            1 for job in jobs for task in job.tasks if task.task_id not in result.placements
        )
        return result
