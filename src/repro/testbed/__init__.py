"""Local-testbed model for the placement-quality experiments (Section 7.5).

The paper's testbed is a 40-machine cluster with 10 Gbps full-bisection
Ethernet, an HDFS installation, short batch analytics tasks reading 4-8 GB
inputs, and background traffic from iperf-style batch jobs and nginx-style
services.  The experiments measure how task response time degrades when the
scheduler overcommits machines' network links.

This package substitutes the physical cluster with a flow-level network
model: task input transfers and background traffic are flows whose rates are
computed by max-min fair sharing of NIC capacities (with a priority class
for the background batch traffic, as in the paper's setup), and task
response time is derived from the achieved transfer rate plus compute time.
The substitution preserves the quantity the experiment actually measures --
the consequence of placing tasks onto network-loaded machines.
"""

from repro.testbed.network import BackgroundFlow, FlowLevelNetwork, TransferRequest
from repro.testbed.storage import HdfsStorage
from repro.testbed.workload import (
    make_batch_analytics_jobs,
    make_iperf_background,
    make_nginx_background,
)
from repro.testbed.experiment import TestbedConfig, TestbedExperiment, TestbedRunResult

__all__ = [
    "BackgroundFlow",
    "FlowLevelNetwork",
    "TransferRequest",
    "HdfsStorage",
    "make_batch_analytics_jobs",
    "make_iperf_background",
    "make_nginx_background",
    "TestbedConfig",
    "TestbedExperiment",
    "TestbedRunResult",
]
