"""Seeded, deterministic fault injection for the scheduling round pipeline.

The paper's production claim (Section 5.2, fig10) is that Firmament keeps
sub-second placement latency *even when the environment misbehaves*.  The
recovery machinery that backs that claim here — worker respawn with a
circuit breaker, sequential fallback, rebuild-on-broken-revision-chain,
residual revalidation — is only trustworthy if faults are injected
deliberately and the degraded output is validated against invariants.

:class:`ChaosPolicy` is that injector.  Consumers (the parallel executor,
its relaxation worker, and :class:`~repro.core.graph_manager.GraphManager`)
hold a ``chaos`` attribute that defaults to ``None``; every hook site is a
single ``if chaos is not None`` guard, so the production path pays nothing.
A policy decides per ``(fault, round_index)`` whether the fault fires,
either from an explicit per-round schedule (exact, for counter-matching
assertions) or from a seeded Bernoulli draw keyed on
``(seed, fault, round_index)`` — the draw is independent of call order, so
two runs with the same seed inject the identical fault sequence.

Fault classes (``FAULT_KINDS``):

``worker_kill``
    SIGTERM the relaxation worker subprocess right after the round's
    payload ships — the race sees pipe EOF mid-round and the parent-side
    cost scaling serves the round unopposed.
``pipe_break``
    Close the parent's end of the worker pipe before the send, so the
    ship raises ``OSError`` exactly like a broken pipe during a delta
    ship.
``corrupt_message``
    Append garbage to the serialized DIMACS/delta payload; the worker's
    parser raises, the worker replies with an error, and the parent
    ships a full snapshot next round.
``worker_delay``
    Prepend a ``("chaos_delay", seconds)`` message the worker sleeps on
    before serving the round — a slow-worker stand-in for deadline and
    photo-finish paths.
``chain_break``
    Drop the round's emitted :class:`ChangeBatch` in the graph manager,
    forcing the downstream revision-chain guards (warm rebuild, worker
    resync/full ship) to recover.
``residual_corruption``
    Perturb one potential in the incremental solver's persistent
    residual so a residual arc violates 0-optimality; the solver's
    ``validate_residual`` pre-delta check must catch it and rebuild.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = ["FAULT_KINDS", "ChaosPolicy", "corrupt_residual_potentials"]

#: Every fault class the policy knows how to fire, in pipeline order.
FAULT_KINDS = (
    "worker_kill",
    "pipe_break",
    "corrupt_message",
    "worker_delay",
    "chain_break",
    "residual_corruption",
)


class ChaosPolicy:
    """Deterministic per-round fault firing decisions plus injection counters.

    Args:
        seed: Seed for the per-``(fault, round)`` Bernoulli draws.
        rates: Optional ``{fault: probability}`` of firing per round.
        schedule: Optional ``{fault: iterable of round indexes}`` that fire
            exactly at those rounds (on top of any rate for the fault).
        delay_seconds: Sleep injected by ``worker_delay`` faults.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[str, float]] = None,
        schedule: Optional[Mapping[str, Iterable[int]]] = None,
        delay_seconds: float = 0.05,
    ) -> None:
        self.seed = seed
        self.rates: Dict[str, float] = dict(rates or {})
        self.schedule: Dict[str, frozenset] = {
            fault: frozenset(rounds) for fault, rounds in (schedule or {}).items()
        }
        for fault in list(self.rates) + list(self.schedule):
            if fault not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind: {fault!r}")
        for fault, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {fault!r} must be in [0, 1], got {rate}")
        if delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        self.delay_seconds = float(delay_seconds)
        #: Count of injections actually performed, per fault kind.
        self.injected: Dict[str, int] = {}
        #: Round indexes at which each fault fired, in firing order.
        self.injected_rounds: Dict[str, List[int]] = {}

    def arms(self, fault: str) -> bool:
        """Return True when the policy can ever fire ``fault``."""
        return fault in self.schedule or self.rates.get(fault, 0.0) > 0.0

    def fires(self, fault: str, round_index: int) -> bool:
        """Decide (and record) whether ``fault`` fires at ``round_index``.

        Call exactly once per (fault, round) at the injection site: a
        ``True`` return is counted in :attr:`injected`, so the counters
        reflect faults actually delivered, not merely drawn.
        """
        if fault not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {fault!r}")
        hit = round_index in self.schedule.get(fault, ())
        if not hit:
            rate = self.rates.get(fault, 0.0)
            if rate > 0.0:
                draw = random.Random(f"{self.seed}:{fault}:{round_index}").random()
                hit = draw < rate
        if hit:
            self.injected[fault] = self.injected.get(fault, 0) + 1
            self.injected_rounds.setdefault(fault, []).append(round_index)
        return hit

    @property
    def total_injected(self) -> int:
        """Total number of faults delivered so far."""
        return sum(self.injected.values())

    def reset_counters(self) -> None:
        """Clear the injection log (e.g. between simulation runs)."""
        self.injected = {}
        self.injected_rounds = {}


def corrupt_residual_potentials(residual, seed: int = 0) -> bool:
    """Make one residual arc violate 0-optimality by bumping a potential.

    Picks a seeded arc with remaining residual capacity and raises its
    tail's potential just past the arc's reduced cost, guaranteeing the
    arc's reduced cost goes negative — exactly the corruption
    ``check_residual_epsilon_optimality(residual, 0)`` exists to catch.
    Returns False when the residual has no arc with capacity left (nothing
    to violate, so the corruption would be unobservable and is skipped).
    """
    candidates = [
        index for index in range(len(residual.arc_residual)) if residual.arc_residual[index] > 0
    ]
    if not candidates:
        return False
    arc = random.Random(f"{seed}:residual_corruption").choice(candidates)
    u = residual.arc_from[arc]
    v = residual.arc_to[arc]
    rc = residual.arc_cost[arc] - residual.potential[u] + residual.potential[v]
    residual.potential[u] += rc + 1 + 7
    return True
