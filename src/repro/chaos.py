"""Seeded, deterministic fault injection for the scheduling round pipeline.

The paper's production claim (Section 5.2, fig10) is that Firmament keeps
sub-second placement latency *even when the environment misbehaves*.  The
recovery machinery that backs that claim here — worker respawn with a
circuit breaker, sequential fallback, rebuild-on-broken-revision-chain,
residual revalidation — is only trustworthy if faults are injected
deliberately and the degraded output is validated against invariants.

:class:`ChaosPolicy` is that injector.  Consumers (the parallel executor,
its relaxation worker, and :class:`~repro.core.graph_manager.GraphManager`)
hold a ``chaos`` attribute that defaults to ``None``; every hook site is a
single ``if chaos is not None`` guard, so the production path pays nothing.
A policy decides per ``(fault, round_index)`` whether the fault fires,
either from an explicit per-round schedule (exact, for counter-matching
assertions) or from a seeded Bernoulli draw keyed on
``(seed, fault, round_index)`` — the draw is independent of call order, so
two runs with the same seed inject the identical fault sequence.

Fault classes (``FAULT_KINDS``):

``worker_kill``
    SIGTERM the relaxation worker subprocess right after the round's
    payload ships — the race sees pipe EOF mid-round and the parent-side
    cost scaling serves the round unopposed.
``pipe_break``
    Close the parent's end of the worker pipe before the send, so the
    ship raises ``OSError`` exactly like a broken pipe during a delta
    ship.
``corrupt_message``
    Append garbage to the serialized DIMACS/delta payload; the worker's
    parser raises, the worker replies with an error, and the parent
    ships a full snapshot next round.
``worker_delay``
    Prepend a ``("chaos_delay", seconds)`` message the worker sleeps on
    before serving the round — a slow-worker stand-in for deadline and
    photo-finish paths.
``chain_break``
    Drop the round's emitted :class:`ChangeBatch` in the graph manager,
    forcing the downstream revision-chain guards (warm rebuild, worker
    resync/full ship) to recover.
``residual_corruption``
    Perturb one potential in the incremental solver's persistent
    residual so a residual arc violates 0-optimality; the solver's
    ``validate_residual`` pre-delta check must catch it and rebuild.

Process-level faults (ISSUE 10)
-------------------------------

The faults above all stay *inside* a surviving scheduler process.  The
durability layer (:mod:`repro.service.durability`) needs the opposite: the
whole service process dying without warning -- ``kill -9`` -- at the worst
possible instants of the write-ahead-log protocol.  :class:`CrashInjector`
delivers exactly that: it counts hits of named crash points
(:data:`CRASH_POINTS`) threaded through the durability layer and, on the
configured hit, SIGKILLs its own process (optionally after writing only a
prefix of the in-flight record, producing a *torn* log tail the recovery
path must detect by checksum and drop, never half-apply).
"""

from __future__ import annotations

import os
import random
import signal
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = [
    "FAULT_KINDS",
    "CRASH_POINTS",
    "ChaosPolicy",
    "CrashInjector",
    "corrupt_residual_potentials",
]

#: Every fault class the policy knows how to fire, in pipeline order.
FAULT_KINDS = (
    "worker_kill",
    "pipe_break",
    "corrupt_message",
    "worker_delay",
    "chain_break",
    "residual_corruption",
)


class ChaosPolicy:
    """Deterministic per-round fault firing decisions plus injection counters.

    Args:
        seed: Seed for the per-``(fault, round)`` Bernoulli draws.
        rates: Optional ``{fault: probability}`` of firing per round.
        schedule: Optional ``{fault: iterable of round indexes}`` that fire
            exactly at those rounds (on top of any rate for the fault).
        delay_seconds: Sleep injected by ``worker_delay`` faults.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[str, float]] = None,
        schedule: Optional[Mapping[str, Iterable[int]]] = None,
        delay_seconds: float = 0.05,
    ) -> None:
        self.seed = seed
        self.rates: Dict[str, float] = dict(rates or {})
        self.schedule: Dict[str, frozenset] = {
            fault: frozenset(rounds) for fault, rounds in (schedule or {}).items()
        }
        for fault in list(self.rates) + list(self.schedule):
            if fault not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind: {fault!r}")
        for fault, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {fault!r} must be in [0, 1], got {rate}")
        if delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        self.delay_seconds = float(delay_seconds)
        #: Count of injections actually performed, per fault kind.
        self.injected: Dict[str, int] = {}
        #: Round indexes at which each fault fired, in firing order.
        self.injected_rounds: Dict[str, List[int]] = {}

    def arms(self, fault: str) -> bool:
        """Return True when the policy can ever fire ``fault``."""
        return fault in self.schedule or self.rates.get(fault, 0.0) > 0.0

    def fires(self, fault: str, round_index: int) -> bool:
        """Decide (and record) whether ``fault`` fires at ``round_index``.

        Call exactly once per (fault, round) at the injection site: a
        ``True`` return is counted in :attr:`injected`, so the counters
        reflect faults actually delivered, not merely drawn.
        """
        if fault not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {fault!r}")
        hit = round_index in self.schedule.get(fault, ())
        if not hit:
            rate = self.rates.get(fault, 0.0)
            if rate > 0.0:
                draw = random.Random(f"{self.seed}:{fault}:{round_index}").random()
                hit = draw < rate
        if hit:
            self.injected[fault] = self.injected.get(fault, 0) + 1
            self.injected_rounds.setdefault(fault, []).append(round_index)
        return hit

    @property
    def total_injected(self) -> int:
        """Total number of faults delivered so far."""
        return sum(self.injected.values())

    def reset_counters(self) -> None:
        """Clear the injection log (e.g. between simulation runs)."""
        self.injected = {}
        self.injected_rounds = {}


#: Named instants of the durability protocol at which a process crash is
#: interesting, in the order the round pipeline reaches them:
#:
#: ``admit_append``
#:     While appending the round's admission record to the write-ahead log
#:     (supports tearing: only a prefix of the record reaches the disk).
#: ``mid_drain``
#:     Before applying each admitted inbox record to ``ClusterState`` --
#:     the batch's admission record is durable but its effects are at most
#:     partially in memory, so recovery must re-apply the whole batch.
#: ``round_append``
#:     While appending the round's applied placements/preemptions record
#:     (tearing supported); the round's effects were applied in memory but
#:     never became durable nor were acknowledged to clients.
#: ``mid_snapshot``
#:     Midway through writing the snapshot temp file, before the atomic
#:     rename -- recovery must ignore the partial temp file and fall back
#:     to the previous snapshot plus a longer log replay.
CRASH_POINTS = ("admit_append", "mid_drain", "round_append", "mid_snapshot")


class CrashInjector:
    """SIGKILL the current process at the Nth hit of a named crash point.

    The injector is armed for exactly one ``point`` (a member of
    :data:`CRASH_POINTS`); every call to :meth:`hit` with that name
    increments a counter, and on the configured occurrence the process
    kills itself with ``SIGKILL`` -- no handlers, no atexit, no flushing:
    the same abrupt death ``kill -9`` from outside produces.

    For the two log-append points the caller passes the framed record
    bytes and the open file; when ``tear_bytes`` is configured the
    injector first writes (and fsyncs) only that prefix, manufacturing a
    torn final record for the recovery path to detect and drop.

    Args:
        point: The armed crash point (one of :data:`CRASH_POINTS`).
        hit: Crash on this occurrence of the point (1-based).
        tear_bytes: For append points, write this many bytes of the framed
            record before dying (``None`` = crash before writing anything).
    """

    def __init__(self, point: str, hit: int = 1, tear_bytes: Optional[int] = None) -> None:
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point: {point!r}")
        if hit < 1:
            raise ValueError("hit must be >= 1")
        if tear_bytes is not None and tear_bytes < 1:
            raise ValueError("tear_bytes must be >= 1")
        self.point = point
        self.hit_at = hit
        self.tear_bytes = tear_bytes
        self.hits = 0

    @classmethod
    def parse(cls, spec: str) -> "CrashInjector":
        """Parse a ``point:hit[:tear_bytes]`` CLI spec (e.g. ``admit_append:2:12``)."""
        parts = spec.split(":")
        if not 1 <= len(parts) <= 3:
            raise ValueError(f"bad crash spec: {spec!r} (want point:hit[:tear_bytes])")
        point = parts[0]
        hit = int(parts[1]) if len(parts) > 1 else 1
        tear = int(parts[2]) if len(parts) > 2 else None
        return cls(point, hit=hit, tear_bytes=tear)

    def _die(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    def hit(self, point: str, fileobj=None, pending_bytes: Optional[bytes] = None) -> None:
        """Record one pass through ``point``; crash if this is the armed hit.

        Args:
            point: The crash point being passed.
            fileobj: Open binary file the caller was about to write to
                (append points and the snapshot temp file).
            pending_bytes: The bytes the caller was about to write; with
                ``tear_bytes`` configured, a prefix is written and fsynced
                before the process dies so the tear is really on disk.
        """
        if point != self.point:
            return
        self.hits += 1
        if self.hits != self.hit_at:
            return
        if (
            self.tear_bytes is not None
            and fileobj is not None
            and pending_bytes is not None
        ):
            fileobj.write(pending_bytes[: self.tear_bytes])
            fileobj.flush()
            os.fsync(fileobj.fileno())
        self._die()


def corrupt_residual_potentials(residual, seed: int = 0) -> bool:
    """Make one residual arc violate 0-optimality by bumping a potential.

    Picks a seeded arc with remaining residual capacity and raises its
    tail's potential just past the arc's reduced cost, guaranteeing the
    arc's reduced cost goes negative — exactly the corruption
    ``check_residual_epsilon_optimality(residual, 0)`` exists to catch.
    Returns False when the residual has no arc with capacity left (nothing
    to violate, so the corruption would be unobservable and is skipped).
    """
    candidates = [
        index for index in range(len(residual.arc_residual)) if residual.arc_residual[index] > 0
    ]
    if not candidates:
        return False
    arc = random.Random(f"{seed}:residual_corruption").choice(candidates)
    u = residual.arc_from[arc]
    v = residual.arc_to[arc]
    rc = residual.arc_cost[arc] - residual.potential[u] + residual.potential[v]
    residual.potential[u] += rc + 1 + 7
    return True
