"""Min-cost max-flow solvers used by the Firmament scheduler.

The package provides four from-scratch MCMF algorithms (Section 4 of the
paper), an incremental variant of cost scaling (Section 5.2), the
problem-specific heuristics of Section 5.3, and the speculative
dual-algorithm executor of Section 6.1:

* :class:`~repro.solvers.cycle_canceling.CycleCancelingSolver`
* :class:`~repro.solvers.successive_shortest_path.SuccessiveShortestPathSolver`
* :class:`~repro.solvers.cost_scaling.CostScalingSolver` (with the alpha
  scaling factor and the price-refine heuristic)
* :class:`~repro.solvers.relaxation.RelaxationSolver` (with the
  arc-prioritization heuristic)
* :class:`~repro.solvers.incremental.IncrementalCostScalingSolver`
* :class:`~repro.solvers.incremental_relaxation.IncrementalRelaxationSolver`
  (the warm-start variant Section 5.2 argues against; kept for the ablation)
* :class:`~repro.solvers.dual_executor.DualAlgorithmExecutor` (sequential,
  models the race) and
  :class:`~repro.solvers.parallel_executor.ParallelDualExecutor` (races a
  relaxation worker subprocess against parent-side incremental cost
  scaling for real)

All solvers share the :class:`~repro.solvers.base.Solver` interface: they
take a :class:`~repro.flow.graph.FlowNetwork`, assign an optimal flow to its
arcs, and return a :class:`~repro.solvers.base.SolverResult` with statistics.
"""

from repro.solvers.base import (
    COMPLEXITY_TABLE,
    PRECONDITION_TABLE,
    RoundDeadline,
    RoundDeadlineExceeded,
    SolveAborted,
    Solver,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.cycle_canceling import CycleCancelingSolver
from repro.solvers.successive_shortest_path import SuccessiveShortestPathSolver
from repro.solvers.cost_scaling import (
    PRICE_REFINE_MODES,
    CostScalingSolver,
    price_refine_dijkstra,
    price_refine_spfa,
)
from repro.solvers.relaxation import RelaxationSolver
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.incremental_relaxation import IncrementalRelaxationSolver
from repro.solvers.dual_executor import (
    EXECUTOR_POLICIES,
    DualAlgorithmExecutor,
    DualExecutionResult,
    RaceCostModel,
    SpeculativeDualExecutor,
)
from repro.solvers.parallel_executor import ParallelDualExecutor, RevisionChainCache
from repro.solvers.worker_health import WorkerCircuitBreaker

__all__ = [
    "COMPLEXITY_TABLE",
    "EXECUTOR_POLICIES",
    "PRECONDITION_TABLE",
    "PRICE_REFINE_MODES",
    "RaceCostModel",
    "RevisionChainCache",
    "price_refine_dijkstra",
    "price_refine_spfa",
    "RoundDeadline",
    "RoundDeadlineExceeded",
    "SolveAborted",
    "WorkerCircuitBreaker",
    "Solver",
    "SolverResult",
    "SolverStatistics",
    "CycleCancelingSolver",
    "SuccessiveShortestPathSolver",
    "CostScalingSolver",
    "RelaxationSolver",
    "IncrementalCostScalingSolver",
    "IncrementalRelaxationSolver",
    "DualAlgorithmExecutor",
    "DualExecutionResult",
    "SpeculativeDualExecutor",
    "ParallelDualExecutor",
    "make_executor",
]

#: Executor names accepted by :func:`make_executor` (and the CLI/scheduler
#: ``--executor`` option).
EXECUTORS = ("sequential", "parallel")


def make_solver(name: str, **kwargs) -> Solver:
    """Construct a solver by name.

    Recognized names: ``cycle_canceling``, ``successive_shortest_path``,
    ``cost_scaling``, ``relaxation``, ``incremental_cost_scaling``,
    ``incremental_relaxation``, ``firmament_dual`` (sequential dual
    executor), ``firmament_dual_parallel`` (subprocess-racing executor).
    """
    registry = {
        "cycle_canceling": CycleCancelingSolver,
        "successive_shortest_path": SuccessiveShortestPathSolver,
        "cost_scaling": CostScalingSolver,
        "relaxation": RelaxationSolver,
        "incremental_cost_scaling": IncrementalCostScalingSolver,
        "incremental_relaxation": IncrementalRelaxationSolver,
        "firmament_dual": DualAlgorithmExecutor,
        "firmament_dual_parallel": ParallelDualExecutor,
    }
    if name not in registry:
        raise ValueError(f"unknown solver {name!r}; choose from {sorted(registry)}")
    return registry[name](**kwargs)


def make_executor(name: str = "sequential", **kwargs) -> SpeculativeDualExecutor:
    """Construct a speculative dual-algorithm executor by strategy name.

    ``"sequential"`` runs both algorithms back to back and models the race
    (:class:`DualAlgorithmExecutor`); ``"parallel"`` races them for real
    across processes (:class:`ParallelDualExecutor`).
    """
    if name == "sequential":
        return DualAlgorithmExecutor(**kwargs)
    if name == "parallel":
        return ParallelDualExecutor(**kwargs)
    raise ValueError(f"unknown executor {name!r}; choose from {EXECUTORS}")
