"""Incremental relaxation: warm-starting the relaxation algorithm.

Section 5.2 of the paper observes that relaxation *ought* to be a better
candidate for incremental operation than cost scaling -- it only needs
reduced-cost optimality to hold, which graph changes rarely destroy -- but
that in practice it often is not: the warm solution already contains large
zero-reduced-cost trees, and every new source must re-traverse them, so
incremental relaxation "can also be slower incrementally than when running
from scratch".  Firmament therefore pairs relaxation (from scratch) with
*incremental cost scaling*, not incremental relaxation, in its speculative
dual executor.

:class:`IncrementalRelaxationSolver` exists to make that design decision
reproducible: it is the stateful warm-starting wrapper around
:class:`~repro.solvers.relaxation.RelaxationSolver` that Firmament chose not
to use, and ``benchmarks/bench_ablation_incremental_relaxation.py`` measures
it against the from-scratch solver on both uncontested and contended graphs.

The wrapper's warm state has exactly one source of truth: the
``(flows, potentials)`` pair installed through :meth:`_install_state`, the
single code path behind :meth:`seed`, :meth:`reset`, and the post-solve
update.  The underlying solver's persistent residual carries flow and
potential state of its own, so every state installation also drops it --
two independently mutated copies of the same solution is how warm-start
bugs are born.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.flow.graph import FlowNetwork
from repro.solvers.base import Solver, SolverResult
from repro.solvers.relaxation import RelaxationSolver


class IncrementalRelaxationSolver(Solver):
    """Stateful relaxation solver that warm-starts from its previous run."""

    name = "incremental_relaxation"

    def __init__(self, arc_prioritization: bool = True) -> None:
        """Create the solver.

        Args:
            arc_prioritization: Enable the Section 5.3.1 tree-growth heuristic
                in the underlying relaxation algorithm.
        """
        self._relaxation = RelaxationSolver(arc_prioritization=arc_prioritization)
        #: The remembered solution, or ``None`` for a cold start.  Only
        #: ever written by :meth:`_install_state`.
        self._warm_state: Optional[
            Tuple[Dict[Tuple[int, int], int], Dict[int, int]]
        ] = None

    def _install_state(
        self,
        flows: Optional[Dict[Tuple[int, int], int]],
        potentials: Optional[Dict[int, int]],
    ) -> None:
        """Install (or clear, with ``flows=None``) the warm-start state.

        The one code path through which seeding, resetting, and the
        post-solve update all go; it also invalidates the underlying
        solver's persistent residual so the wrapper's dicts remain the
        single authoritative copy of the solution.
        """
        if flows is None:
            self._warm_state = None
        else:
            self._warm_state = (dict(flows), dict(potentials or {}))
        self._relaxation.invalidate_residual()

    def reset(self) -> None:
        """Discard the remembered solution; the next solve runs from scratch."""
        self._install_state(None, None)

    def seed(self, flows: Dict[Tuple[int, int], int], potentials: Dict[int, int]) -> None:
        """Install an externally produced solution as the warm-start state."""
        self._install_state(flows, potentials)

    @property
    def has_state(self) -> bool:
        """Return whether a previous solution is available for warm starting."""
        return self._warm_state is not None

    def solve(self, network: FlowNetwork) -> SolverResult:
        """Solve the network, reusing the previous solution when available."""
        if not self.has_state:
            result = self._relaxation.solve(network)
            result = SolverResult(
                algorithm=self.name,
                total_cost=result.total_cost,
                flows=result.flows,
                potentials=result.potentials,
                runtime_seconds=result.runtime_seconds,
                statistics=result.statistics,
                optimal=result.optimal,
            )
        else:
            warm_flows, warm_potentials = self._warm_state
            result = self._relaxation.solve_warm(network, warm_flows, warm_potentials)
            result.algorithm = self.name
        self._install_state(result.flows, result.potentials)
        return result
