"""Incremental relaxation: warm-starting the relaxation algorithm.

Section 5.2 of the paper observes that relaxation *ought* to be a better
candidate for incremental operation than cost scaling -- it only needs
reduced-cost optimality to hold, which graph changes rarely destroy -- but
that in practice it often is not: the warm solution already contains large
zero-reduced-cost trees, and every new source must re-traverse them, so
incremental relaxation "can also be slower incrementally than when running
from scratch".  Firmament therefore pairs relaxation (from scratch) with
*incremental cost scaling*, not incremental relaxation, in its speculative
dual executor.

:class:`IncrementalRelaxationSolver` exists to make that design decision
reproducible: it is the stateful warm-starting wrapper around
:class:`~repro.solvers.relaxation.RelaxationSolver` that Firmament chose not
to use, and ``benchmarks/bench_ablation_incremental_relaxation.py`` measures
it against the from-scratch solver on both uncontested and contended graphs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.flow.graph import FlowNetwork
from repro.solvers.base import Solver, SolverResult
from repro.solvers.relaxation import RelaxationSolver


class IncrementalRelaxationSolver(Solver):
    """Stateful relaxation solver that warm-starts from its previous run."""

    name = "incremental_relaxation"

    def __init__(self, arc_prioritization: bool = True) -> None:
        """Create the solver.

        Args:
            arc_prioritization: Enable the Section 5.3.1 tree-growth heuristic
                in the underlying relaxation algorithm.
        """
        self._relaxation = RelaxationSolver(arc_prioritization=arc_prioritization)
        self._last_flows: Optional[Dict[Tuple[int, int], int]] = None
        self._last_potentials: Optional[Dict[int, int]] = None

    def reset(self) -> None:
        """Discard the remembered solution; the next solve runs from scratch."""
        self._last_flows = None
        self._last_potentials = None

    def seed(self, flows: Dict[Tuple[int, int], int], potentials: Dict[int, int]) -> None:
        """Install an externally produced solution as the warm-start state."""
        self._last_flows = dict(flows)
        self._last_potentials = dict(potentials)

    @property
    def has_state(self) -> bool:
        """Return whether a previous solution is available for warm starting."""
        return self._last_flows is not None

    def solve(self, network: FlowNetwork) -> SolverResult:
        """Solve the network, reusing the previous solution when available."""
        if not self.has_state:
            result = self._relaxation.solve(network)
            result = SolverResult(
                algorithm=self.name,
                total_cost=result.total_cost,
                flows=result.flows,
                potentials=result.potentials,
                runtime_seconds=result.runtime_seconds,
                statistics=result.statistics,
                optimal=result.optimal,
            )
        else:
            result = self._relaxation.solve_warm(
                network,
                dict(self._last_flows),
                dict(self._last_potentials or {}),
            )
            result.algorithm = self.name
        self._last_flows = dict(result.flows)
        self._last_potentials = dict(result.potentials)
        return result
