"""Relaxation MCMF algorithm (Bertsekas-Tseng), Section 4 of the paper.

The relaxation algorithm maintains reduced-cost optimality at every step and
works towards feasibility, like successive shortest path, but it optimizes
the dual problem directly: for each node with remaining supply it grows a
tree of zero-reduced-cost residual arcs; when the tree reaches a node with
demand, flow is augmented along the tree path, and when the tree cannot grow
any further, a dual-ascent step raises the potentials of the whole tree by
the smallest reduced cost leaving it, which both decreases the dual cost and
creates new zero-reduced-cost arcs to continue with.

The paper's key empirical finding (Figure 7) is that relaxation vastly
outperforms the other algorithms on scheduling graphs in the common case --
when tasks' preferred destinations are uncontested, most supply is routed in
a single pass -- but degrades badly under contention and oversubscription
(Figures 8 and 9): the zero-reduced-cost trees become large and are
re-traversed after every ascent.

This implementation includes the **arc prioritization** heuristic of
Section 5.3.1: when growing the tree, arcs that lead towards nodes with
demand are explored first (depth-first bias), which the paper reports cuts
runtime by ~45 % on contended graphs.

Performance architecture
========================

Relaxation is the leg that wins the dual race in the common case, so the
end-to-end placement latency of most rounds is *its* runtime plus the cost
of handing it the problem.  The solver therefore mirrors the cost-scaling
core's data layout and avoids every avoidable indirection:

* All hot loops run over the shared typed ``array('q')`` residual columns
  (:class:`~repro.solvers.residual.ResidualNetwork`) with **inlined
  reduced-cost arithmetic** from local aliases -- no method call or
  attribute lookup per scanned arc.
* Tree growth scans each tree node's adjacency **exactly once per tree**
  (the current-arc discipline): zero-reduced-cost arcs extend the tree
  immediately, while every other residual arc leaving the tree is filed
  into a **candidate heap** keyed by its reduced cost plus the cumulative
  ascent at insertion time.  Because a dual ascent raises every tree
  potential uniformly, the key stays comparable forever: the arc's live
  reduced cost is ``key - cum``.  A dual-ascent step is then a heap peek
  (the minimum valid key yields the ascent delta) followed by popping
  exactly the arcs whose reduced cost just reached zero -- the re-traversal
  of the whole tree after every ascent, the old implementation's dominant
  cost on contended graphs, is gone entirely.
* Per-tree node marks are **stamp-versioned** (``tree_mark[v] == stamp``),
  so routing a new batch of supply costs no O(n) clearing.
* The solver keeps a **persistent residual network** across solves
  (:attr:`RelaxationSolver.last_residual`): when the caller supplies the
  revision-chained :class:`~repro.flow.changes.ChangeBatch` that transforms
  the previously solved network into the current one (the same contract as
  :class:`~repro.solvers.incremental.IncrementalCostScalingSolver`), the
  residual is patched in place
  (:meth:`~repro.solvers.residual.ResidualNetwork.apply_changes`) and reset
  to the zero-flow start state with pure array arithmetic
  (:meth:`~repro.solvers.residual.ResidualNetwork.reset_to_zero_flow`) --
  no index rebuild and no O(graph) object traversal.  Relaxation still runs
  *from scratch* on the patched residual (Section 5.2: warm-starting
  relaxation does not pay), only the problem hand-off is incremental.

Note on write-back: with a persistent residual, flow write-back and
extraction run through the residual's dirty-flow journal, which is exact
when the solver repeatedly writes to the same target network (the worker's
shadow, a graph manager's persistent network) or when only the returned
``flows`` mapping is consumed (the dual executors).  The result's ``flows``
dict is always the authoritative solution.
"""

from __future__ import annotations

import time
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Dict, Optional, Tuple

from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    InfeasibleProblemError,
    SolveAborted,
    Solver,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.residual import ResidualNetwork


class RelaxationSolver(Solver):
    """Bertsekas-Tseng relaxation (dual ascent with tree augmentation)."""

    name = "relaxation"

    #: The dual executors may pass ``changes=ChangeBatch`` to :meth:`solve`;
    #: a revision-chained batch lets the solver patch its persistent
    #: residual instead of rebuilding it from the flow network.
    accepts_change_batches = True

    def __init__(
        self,
        arc_prioritization: bool = True,
        priority_probe_limit: int = 32,
    ) -> None:
        """Create the solver.

        Args:
            arc_prioritization: Enable the Section 5.3.1 heuristic that
                biases tree growth towards nodes with demand.
            priority_probe_limit: Maximum number of a discovered node's arcs
                probed when deciding whether it leads to a demand node; keeps
                the heuristic's bookkeeping cheap on high-degree aggregators.
        """
        self.arc_prioritization = arc_prioritization
        self.priority_probe_limit = priority_probe_limit
        #: The residual network of the most recent run, retained for the
        #: delta hand-off path (None until the first solve).
        self.last_residual: Optional[ResidualNetwork] = None
        #: Optional instrumentation hook called as ``hook(residual, event)``
        #: after every dual ascent (``"ascent"``) and augmentation
        #: (``"augment"``).  The fuzzed invariant suite installs one to
        #: assert reduced-cost optimality after every step; ``None`` (the
        #: default) costs one predicate check per ascent/augmentation.
        self.invariant_hook = None
        #: Solves served by patching the persistent residual vs rebuilding
        #: it from the flow network (observability).
        self.residual_reuses: int = 0
        self.residual_rebuilds: int = 0
        #: Optional cooperative cancellation hook (same contract as cost
        #: scaling's ``abort_check``): a zero-argument callable polled once
        #: per routed source batch and every 32 dual ascents.  Returning
        #: True raises :class:`~repro.solvers.base.SolveAborted`.  ``None``
        #: (the default) adds no per-operation work.
        self.abort_check = None
        #: Optional cap on dual ascents per run (the deadline-degradation
        #: knob for relaxation, mirroring cost scaling's coarser-epsilon
        #: termination): exceeding the cap raises ``SolveAborted`` so the
        #: round falls back to the other leg.  ``None`` disables the cap.
        self.ascent_cap: Optional[int] = None

    def invalidate_residual(self) -> None:
        """Drop the persistent residual; the next solve rebuilds it."""
        self.last_residual = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> SolverResult:
        """Compute a min-cost max-flow on the network.

        Args:
            network: The flow network to solve.
            changes: Optional revision-chained batch transforming the
                previously solved network into ``network``.  When it chains
                onto the retained residual's revision, the residual is
                patched in place (O(|changes|)) instead of being rebuilt
                (O(graph)); otherwise the batch is ignored.
        """
        start = time.perf_counter()
        stats = SolverStatistics()
        residual = self._reusable_residual(changes)
        if residual is not None:
            self.residual_reuses += 1
            stats.arcs_patched = residual.last_arcs_patched
            stats.nodes_touched = residual.last_nodes_touched
        else:
            residual = ResidualNetwork(network)
            self.residual_rebuilds += 1
        # Both paths leave all-zero potentials: a fresh build starts there,
        # and the reuse path went through reset_to_zero_flow.
        self._run(residual, stats, potentials_are_zero=True)
        residual.write_flow_back(network)
        self.last_residual = residual
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm=self.name,
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=residual.export_potentials(),
            runtime_seconds=runtime,
            statistics=stats,
        )

    def solve_warm(
        self,
        network: FlowNetwork,
        warm_flows: Dict[Tuple[int, int], int],
        warm_potentials: Dict[int, int],
    ) -> SolverResult:
        """Re-optimize starting from a previous solution.

        The paper found incremental relaxation to be of limited value
        (Section 5.2): the warm solution already contains large
        zero-reduced-cost trees that must be re-traversed for every new
        source.  The capability is provided for completeness and for the
        experiments that demonstrate exactly that behaviour.
        """
        start = time.perf_counter()
        for arc in network.arcs():
            arc.flow = min(warm_flows.get(arc.key(), 0), arc.capacity)
        residual = ResidualNetwork(network, use_existing_flow=True)
        residual.load_potentials(warm_potentials)
        stats = SolverStatistics(warm_start=True)
        self._run(residual, stats)
        residual.write_flow_back(network)
        self.last_residual = residual
        self.residual_rebuilds += 1
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm="incremental_relaxation",
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=residual.export_potentials(),
            runtime_seconds=runtime,
            statistics=stats,
        )

    # ------------------------------------------------------------------ #
    # Persistent-residual hand-off
    # ------------------------------------------------------------------ #
    def _reusable_residual(
        self, changes: Optional[ChangeBatch]
    ) -> Optional[ResidualNetwork]:
        """Return the retained residual patched by ``changes``, if legal.

        A patch is only legal when the batch provably transforms the exact
        revision the residual mirrors (the same guard
        :class:`~repro.solvers.incremental.IncrementalCostScalingSolver`
        applies).  The carried solution is reset *before* patching so
        removals and capacity changes never have flow to return; a batch
        that fails to apply leaves the structure unusable and drops it.
        """
        residual = self.last_residual
        if residual is None or changes is None:
            return None
        if changes.base_revision is None or changes.target_revision is None:
            return None
        if residual.revision != changes.base_revision:
            return None
        try:
            residual.reset_to_zero_flow()
            residual.apply_changes(changes)
        except (KeyError, ValueError):
            self.last_residual = None
            return None
        residual.revision = changes.target_revision
        return residual

    # ------------------------------------------------------------------ #
    # Core algorithm
    # ------------------------------------------------------------------ #
    def _run(
        self,
        residual: ResidualNetwork,
        stats: SolverStatistics,
        potentials_are_zero: bool = False,
    ) -> None:
        # With all-zero potentials and no negative arc cost, every reduced
        # cost is already non-negative; skip the O(arcs) restoration scan
        # (the common case for scheduling graphs on both the fresh-build
        # and the reset-and-patch paths).
        if not (potentials_are_zero and not residual.has_negative_costs):
            self._restore_reduced_cost_optimality(residual, stats)
        # The ascent-count guard depends on the largest arc cost; compute it
        # once per run rather than per source.
        max_cost = max(1, residual.max_cost())
        n = residual.num_nodes
        # Stamp-versioned tree membership: routing a new batch of supply
        # bumps the stamp instead of clearing an O(n) boolean array.
        tree_mark = [0] * n
        pred_arc = [0] * n
        excess = residual.excess
        stamp = 0
        check = self.abort_check
        for source in range(n):
            while excess[source] > 0:
                if check is not None and check():
                    raise SolveAborted("relaxation run cancelled by abort check")
                stamp += 1
                self._route_from_source(
                    residual, source, stats, max_cost, tree_mark, pred_arc, stamp
                )

    def _restore_reduced_cost_optimality(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Saturate residual arcs with negative reduced cost.

        With non-negative costs and zero potentials (the from-scratch case)
        this is a no-op; it matters for warm starts and for test graphs with
        negative costs, where reduced-cost optimality must be restored before
        the main loop may run.
        """
        arc_residual = residual.arc_residual
        arc_cost = residual.arc_cost
        arc_from = residual.arc_from
        arc_to = residual.arc_to
        potential = residual.potential
        for arc_index in range(len(arc_residual)):
            r = arc_residual[arc_index]
            if r <= 0:
                continue
            if (
                arc_cost[arc_index]
                - potential[arc_from[arc_index]]
                + potential[arc_to[arc_index]]
                < 0
            ):
                residual.push(arc_index, r)
                stats.pushes += 1

    def _route_from_source(
        self,
        residual: ResidualNetwork,
        source: int,
        stats: SolverStatistics,
        max_cost: int,
        tree_mark: list,
        pred_arc: list,
        stamp: int,
    ) -> None:
        """Route one batch of supply from ``source`` to a demand node.

        Grows the zero-reduced-cost tree, performing dual-ascent steps
        whenever the tree can no longer be extended, until a node with
        negative excess is reached; then augments along the tree path.

        Every tree node's adjacency is scanned exactly once: arcs leaving
        the tree with positive reduced cost enter the candidate heap keyed
        by ``reduced_cost + cum`` (``cum`` = cumulative ascent applied so
        far), so an ascent needs no rescan -- the heap minimum *is* the
        ascent delta, and the entries matching it are exactly the arcs
        whose reduced cost drops to zero.
        """
        adjacency = residual.adjacency
        arc_residual = residual.arc_residual
        arc_cost = residual.arc_cost
        arc_from = residual.arc_from
        arc_to = residual.arc_to
        potential = residual.potential
        excess = residual.excess
        prioritize = self.arc_prioritization
        probe_limit = self.priority_probe_limit
        hook = self.invariant_hook
        check = self.abort_check
        cap = self.ascent_cap

        n = residual.num_nodes
        tree_mark[source] = stamp
        tree_nodes = [source]
        frontier: deque = deque((source,))
        # Candidates: residual arcs leaving the tree, keyed by reduced cost
        # at insertion plus the cumulative ascent at insertion (live
        # reduced cost of an entry = key - cum; uniform ascents keep the
        # ordering valid forever).  Entries whose head has joined the tree
        # since insertion are discarded lazily on pop.  In the common
        # uncontested case a tree reaches a demand node without a single
        # ascent, so the candidates stay a plain append-only list and are
        # heapified only when the first ascent actually needs an ordering.
        heap: list = []
        heap_ordered = False
        cum = 0
        target = -1
        ascents = 0
        max_ascents = 2 * n * max_cost + n + 16
        arcs_scanned = 0

        while target < 0:
            # Grow the tree along zero-reduced-cost residual arcs.
            while frontier:
                u = frontier.popleft()
                pot_u = potential[u]
                for a in adjacency[u]:
                    if arc_residual[a] <= 0:
                        continue
                    v = arc_to[a]
                    if tree_mark[v] == stamp:
                        continue
                    arcs_scanned += 1
                    rc = arc_cost[a] - pot_u + potential[v]
                    if rc != 0:
                        if heap_ordered:
                            heappush(heap, (rc + cum, a))
                        else:
                            heap.append((rc + cum, a))
                        continue
                    tree_mark[v] = stamp
                    pred_arc[v] = a
                    tree_nodes.append(v)
                    if excess[v] < 0:
                        target = v
                        break
                    if prioritize:
                        # Section 5.3.1 probe: explore nodes with a usable
                        # residual arc to a demand node first (depth bias).
                        leads = False
                        probes = probe_limit
                        for b in adjacency[v]:
                            probes -= 1
                            if probes < 0:
                                break
                            if arc_residual[b] > 0 and excess[arc_to[b]] < 0:
                                leads = True
                                break
                        if leads:
                            frontier.appendleft(v)
                        else:
                            frontier.append(v)
                    else:
                        frontier.append(v)
                if target >= 0:
                    break
            if target >= 0:
                break

            # The tree is maximal but contains no demand node: dual ascent.
            if not heap_ordered:
                heapify(heap)
                heap_ordered = True
            while heap and tree_mark[arc_to[heap[0][1]]] == stamp:
                heappop(heap)  # head joined the tree since insertion
            if not heap:
                raise InfeasibleProblemError(
                    "supply cannot reach any demand node; the scheduling graph "
                    "must provide unscheduled aggregator capacity for every task"
                )
            delta = heap[0][0] - cum
            if delta > 0:
                for u in tree_nodes:
                    potential[u] += delta
                cum += delta
            ascents += 1
            stats.potential_updates += 1
            stats.iterations += 1
            if hook is not None:
                hook(residual, "ascent")
            if cap is not None and stats.dual_ascents + ascents > cap:
                raise SolveAborted(
                    f"relaxation ascent cap ({cap}) exceeded; degrading to the "
                    "other leg"
                )
            if check is not None and (ascents & 31) == 0 and check():
                raise SolveAborted("relaxation run cancelled by abort check")
            if ascents > max_ascents:
                raise InfeasibleProblemError(
                    "dual ascent failed to converge; the problem is infeasible "
                    "or costs are not integral"
                )
            # The arcs whose reduced cost just reached zero (key == cum)
            # extend the tree directly; growth then resumes from the new
            # nodes only -- no re-traversal of the existing tree.  (The
            # <= guard also drains any key below cum, so a reduced cost
            # that somehow went negative can never wedge the loop.)
            while heap and heap[0][0] <= cum:
                a = heappop(heap)[1]
                v = arc_to[a]
                if tree_mark[v] == stamp:
                    continue
                tree_mark[v] = stamp
                pred_arc[v] = a
                tree_nodes.append(v)
                if excess[v] < 0:
                    target = v
                    break
                frontier.append(v)

        # Augment along the tree predecessor path.
        amount = excess[source]
        deficit = -excess[target]
        if deficit < amount:
            amount = deficit
        node = target
        while node != source:
            a = pred_arc[node]
            r = arc_residual[a]
            if r < amount:
                amount = r
            node = arc_from[a]
        journal = residual._flow_journal
        node = target
        while node != source:
            a = pred_arc[node]
            arc_residual[a] -= amount
            arc_residual[a ^ 1] += amount
            if journal is not None:
                journal.add(a >> 1)
            node = arc_from[a]
        excess[source] -= amount
        excess[target] += amount
        stats.augmentations += 1
        stats.dual_ascents += ascents
        stats.relaxation_tree_nodes += len(tree_nodes)
        stats.arcs_scanned += arcs_scanned
        if hook is not None:
            hook(residual, "augment")
