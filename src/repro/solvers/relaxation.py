"""Relaxation MCMF algorithm (Bertsekas-Tseng), Section 4 of the paper.

The relaxation algorithm maintains reduced-cost optimality at every step and
works towards feasibility, like successive shortest path, but it optimizes
the dual problem directly: for each node with remaining supply it grows a
tree of zero-reduced-cost residual arcs; when the tree reaches a node with
demand, flow is augmented along the tree path, and when the tree cannot grow
any further, a dual-ascent step raises the potentials of the whole tree by
the smallest reduced cost leaving it, which both decreases the dual cost and
creates new zero-reduced-cost arcs to continue with.

The paper's key empirical finding (Figure 7) is that relaxation vastly
outperforms the other algorithms on scheduling graphs in the common case --
when tasks' preferred destinations are uncontested, most supply is routed in
a single pass -- but degrades badly under contention and oversubscription
(Figures 8 and 9): the zero-reduced-cost trees become large and are
re-traversed after every ascent.

This implementation includes the **arc prioritization** heuristic of
Section 5.3.1: when growing the tree, arcs that lead towards nodes with
demand are explored first (depth-first bias), which the paper reports cuts
runtime by ~45 % on contended graphs.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    InfeasibleProblemError,
    Solver,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.residual import ResidualNetwork

_INF = float("inf")


class RelaxationSolver(Solver):
    """Bertsekas-Tseng relaxation (dual ascent with tree augmentation)."""

    name = "relaxation"

    def __init__(
        self,
        arc_prioritization: bool = True,
        priority_probe_limit: int = 32,
    ) -> None:
        """Create the solver.

        Args:
            arc_prioritization: Enable the Section 5.3.1 heuristic that
                biases tree growth towards nodes with demand.
            priority_probe_limit: Maximum number of a discovered node's arcs
                probed when deciding whether it leads to a demand node; keeps
                the heuristic's bookkeeping cheap on high-degree aggregators.
        """
        self.arc_prioritization = arc_prioritization
        self.priority_probe_limit = priority_probe_limit

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, network: FlowNetwork) -> SolverResult:
        """Compute a min-cost max-flow on the network."""
        start = time.perf_counter()
        residual = ResidualNetwork(network)
        stats = SolverStatistics()
        self._run(residual, stats)
        residual.write_flow_back(network)
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm=self.name,
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=residual.export_potentials(),
            runtime_seconds=runtime,
            statistics=stats,
        )

    def solve_warm(
        self,
        network: FlowNetwork,
        warm_flows: Dict[Tuple[int, int], int],
        warm_potentials: Dict[int, int],
    ) -> SolverResult:
        """Re-optimize starting from a previous solution.

        The paper found incremental relaxation to be of limited value
        (Section 5.2): the warm solution already contains large
        zero-reduced-cost trees that must be re-traversed for every new
        source.  The capability is provided for completeness and for the
        experiments that demonstrate exactly that behaviour.
        """
        start = time.perf_counter()
        for arc in network.arcs():
            arc.flow = min(warm_flows.get(arc.key(), 0), arc.capacity)
        residual = ResidualNetwork(network, use_existing_flow=True)
        residual.load_potentials(warm_potentials)
        stats = SolverStatistics(warm_start=True)
        self._run(residual, stats)
        residual.write_flow_back(network)
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm="incremental_relaxation",
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=residual.export_potentials(),
            runtime_seconds=runtime,
            statistics=stats,
        )

    # ------------------------------------------------------------------ #
    # Core algorithm
    # ------------------------------------------------------------------ #
    def _run(self, residual: ResidualNetwork, stats: SolverStatistics) -> None:
        self._restore_reduced_cost_optimality(residual, stats)
        # The ascent-count guard depends on the largest arc cost; compute it
        # once per run rather than per source.
        max_cost = max(1, residual.max_cost())
        for source in range(residual.num_nodes):
            while residual.excess[source] > 0:
                self._route_from_source(residual, source, stats, max_cost)

    def _restore_reduced_cost_optimality(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Saturate residual arcs with negative reduced cost.

        With non-negative costs and zero potentials (the from-scratch case)
        this is a no-op; it matters for warm starts and for test graphs with
        negative costs, where reduced-cost optimality must be restored before
        the main loop may run.
        """
        for arc_index in range(residual.num_arcs):
            if residual.arc_residual[arc_index] <= 0:
                continue
            if residual.reduced_cost(arc_index) < 0:
                residual.push(arc_index, residual.arc_residual[arc_index])
                stats.pushes += 1

    def _route_from_source(
        self,
        residual: ResidualNetwork,
        source: int,
        stats: SolverStatistics,
        max_cost: int,
    ) -> None:
        """Route one batch of supply from ``source`` to a demand node.

        Grows the zero-reduced-cost tree, performing dual-ascent steps
        whenever the tree can no longer be extended, until a node with
        negative excess is reached; then augments along the tree path.
        """
        n = residual.num_nodes
        in_tree = [False] * n
        pred_arc: List[Optional[int]] = [None] * n
        tree_nodes: List[int] = [source]
        in_tree[source] = True
        frontier: deque = deque([source])
        target = -1
        ascent_guard = 0
        max_ascents = 2 * n * max_cost + n + 16

        while target < 0:
            target = self._grow_tree(
                residual, frontier, in_tree, pred_arc, tree_nodes, stats
            )
            if target >= 0:
                break
            # The tree is maximal but contains no demand node: dual ascent.
            delta = self._ascent_step(residual, tree_nodes, in_tree, stats)
            if delta is None:
                raise InfeasibleProblemError(
                    "supply cannot reach any demand node; the scheduling graph "
                    "must provide unscheduled aggregator capacity for every task"
                )
            ascent_guard += 1
            if ascent_guard > max_ascents:
                raise InfeasibleProblemError(
                    "dual ascent failed to converge; the problem is infeasible "
                    "or costs are not integral"
                )
            # Newly created zero-reduced-cost arcs may leave any tree node, so
            # the whole tree re-enters the frontier.  This re-traversal is the
            # behaviour that makes relaxation slow on large contended trees.
            frontier = deque(tree_nodes)

        self._augment(residual, source, target, pred_arc, stats)

    def _grow_tree(
        self,
        residual: ResidualNetwork,
        frontier: deque,
        in_tree: List[bool],
        pred_arc: List[Optional[int]],
        tree_nodes: List[int],
        stats: SolverStatistics,
    ) -> int:
        """Extend the tree along zero-reduced-cost residual arcs.

        Returns the index of a demand node as soon as one enters the tree, or
        ``-1`` when the frontier is exhausted without finding one.
        """
        while frontier:
            u = frontier.popleft()
            for arc_index in residual.adjacency[u]:
                if residual.arc_residual[arc_index] <= 0:
                    continue
                v = residual.arc_to[arc_index]
                if in_tree[v]:
                    continue
                stats.arcs_scanned += 1
                if residual.reduced_cost(arc_index) != 0:
                    continue
                in_tree[v] = True
                pred_arc[v] = arc_index
                tree_nodes.append(v)
                if residual.excess[v] < 0:
                    return v
                if self.arc_prioritization and self._leads_to_demand(residual, v):
                    frontier.appendleft(v)
                else:
                    frontier.append(v)
        return -1

    def _leads_to_demand(self, residual: ResidualNetwork, node: int) -> bool:
        """Return True when the node has a usable residual arc to a demand node."""
        probes = 0
        for arc_index in residual.adjacency[node]:
            probes += 1
            if probes > self.priority_probe_limit:
                return False
            if residual.arc_residual[arc_index] <= 0:
                continue
            if residual.excess[residual.arc_to[arc_index]] < 0:
                return True
        return False

    def _ascent_step(
        self,
        residual: ResidualNetwork,
        tree_nodes: List[int],
        in_tree: List[bool],
        stats: SolverStatistics,
    ) -> Optional[int]:
        """Raise the potentials of every tree node by the smallest reduced
        cost of a residual arc leaving the tree.

        Returns the applied delta, or ``None`` when no residual arc leaves
        the tree (the problem is infeasible).
        """
        delta: float = _INF
        for u in tree_nodes:
            for arc_index in residual.adjacency[u]:
                if residual.arc_residual[arc_index] <= 0:
                    continue
                v = residual.arc_to[arc_index]
                if in_tree[v]:
                    continue
                stats.arcs_scanned += 1
                rc = residual.reduced_cost(arc_index)
                if rc < delta:
                    delta = rc
        if delta == _INF:
            return None
        delta_int = max(0, int(delta))
        for u in tree_nodes:
            residual.potential[u] += delta_int
        stats.potential_updates += 1
        stats.iterations += 1
        return delta_int

    def _augment(
        self,
        residual: ResidualNetwork,
        source: int,
        target: int,
        pred_arc: List[Optional[int]],
        stats: SolverStatistics,
    ) -> None:
        """Push flow from ``source`` to ``target`` along tree predecessor arcs."""
        amount = min(residual.excess[source], -residual.excess[target])
        node = target
        while node != source:
            arc_index = pred_arc[node]
            amount = min(amount, residual.arc_residual[arc_index])
            node = residual.arc_from[arc_index]
        path: List[int] = []
        node = target
        while node != source:
            arc_index = pred_arc[node]
            path.append(arc_index)
            node = residual.arc_from[arc_index]
        for arc_index in reversed(path):
            residual.push(arc_index, amount)
        stats.augmentations += 1
