"""Worker health state machine for the parallel dual executor.

The original :class:`~repro.solvers.parallel_executor.ParallelDualExecutor`
carried a one-shot ``spawn_retries`` budget: once the relaxation worker had
died that many times the executor fell back to the in-process sequential
race *permanently*, even though worker failures in practice are bursty
(e.g. a fork bomb elsewhere on the host, a transient fd limit) and the
subprocess would spawn fine a minute later.

:class:`WorkerCircuitBreaker` replaces that budget with the classic
three-state breaker, measured in scheduling rounds (the executor's natural
clock — there is no background thread to keep wall-clock timers):

* ``closed`` — the worker is trusted.  Isolated failures respawn with an
  exponential backoff (first failure immediately, then 1, 2, 4, …
  rounds served by the sequential fallback between attempts).
* ``open`` — ``failure_threshold`` *consecutive* process-level failures
  (spawn failure, worker death, broken pipe; worker error *replies* do
  not count — the process is alive) tripped the breaker.  Rounds are
  served by the sequential fallback, except that every
  ``probe_interval_rounds`` one probe round is allowed to try a respawn.
* ``half_open`` — a probe round is in flight.  A round that completes
  with the pipe intact re-closes the breaker and resets the failure
  count; another process failure re-opens it until the next probe.

The breaker is pure bookkeeping: the executor calls :meth:`note_round`
once per round, asks :meth:`allow_attempt` before spawning, and reports
:meth:`record_failure` / :meth:`record_success` as rounds settle.
"""

from __future__ import annotations

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "WorkerCircuitBreaker",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class WorkerCircuitBreaker:
    """Circuit breaker governing relaxation-worker (re)spawn attempts.

    Args:
        failure_threshold: Consecutive process failures that trip the
            breaker open.  ``1`` trips on the first failure.
        backoff_base_rounds: Backoff unit for pre-trip respawns: the k-th
            consecutive failure (k >= 2) waits
            ``min(backoff_max_rounds, backoff_base_rounds * 2**(k-2))``
            rounds before the next attempt; the first failure retries
            immediately.
        backoff_max_rounds: Cap on the exponential backoff.
        probe_interval_rounds: While open, one half-open probe spawn is
            allowed every this many rounds.
    """

    def __init__(
        self,
        failure_threshold: int = 2,
        backoff_base_rounds: int = 1,
        backoff_max_rounds: int = 32,
        probe_interval_rounds: int = 8,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if backoff_base_rounds < 0 or backoff_max_rounds < 0:
            raise ValueError("backoff rounds must be >= 0")
        if probe_interval_rounds < 1:
            raise ValueError("probe_interval_rounds must be >= 1")
        self.failure_threshold = failure_threshold
        self.backoff_base_rounds = backoff_base_rounds
        self.backoff_max_rounds = backoff_max_rounds
        self.probe_interval_rounds = probe_interval_rounds
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        #: Lifetime counters for observability/tests.
        self.trips = 0
        self.probes = 0
        self.reclosures = 0
        self.failures = 0
        self._rounds_seen = 0
        self._next_attempt_round = 0

    @property
    def is_closed(self) -> bool:
        return self.state == BREAKER_CLOSED

    @property
    def rounds_seen(self) -> int:
        return self._rounds_seen

    def note_round(self) -> None:
        """Advance the breaker's round clock; call once per executor round."""
        self._rounds_seen += 1

    def allow_attempt(self) -> bool:
        """Return True when a (re)spawn attempt is permitted this round."""
        if self.state == BREAKER_HALF_OPEN:
            return True
        if self.state == BREAKER_OPEN:
            if self._rounds_seen >= self._next_attempt_round:
                self.state = BREAKER_HALF_OPEN
                self.probes += 1
                return True
            return False
        return self._rounds_seen >= self._next_attempt_round

    def record_failure(self) -> None:
        """Note a process-level failure (spawn error, death, broken pipe)."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            # Probe failed: stay open until the next probe window.
            self.state = BREAKER_OPEN
            self._next_attempt_round = self._rounds_seen + self.probe_interval_rounds
            return
        if self.state == BREAKER_CLOSED:
            if self.consecutive_failures >= self.failure_threshold:
                self.state = BREAKER_OPEN
                self.trips += 1
                self._next_attempt_round = self._rounds_seen + self.probe_interval_rounds
            else:
                self._next_attempt_round = self._rounds_seen + self._backoff_rounds()
            return
        # Failure reported while open without an attempt (defensive): treat
        # it like a failed probe.
        self._next_attempt_round = self._rounds_seen + self.probe_interval_rounds

    def record_success(self) -> None:
        """Note a round the worker served with its pipe intact."""
        if self.state != BREAKER_CLOSED:
            self.reclosures += 1
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._next_attempt_round = self._rounds_seen

    def _backoff_rounds(self) -> int:
        if self.consecutive_failures <= 1:
            return 0
        penalty = self.backoff_base_rounds * (2 ** (self.consecutive_failures - 2))
        return min(self.backoff_max_rounds, penalty)
