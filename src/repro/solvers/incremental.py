"""Incremental cost scaling: delta solving plus the task-removal heuristic.

Section 5.2 of the paper observes that cluster state changes little between
consecutive scheduling runs, so the MCMF solver should reuse its previous
solution.  Cost scaling is the best candidate for incremental operation even
though graph changes break its feasibility/epsilon-optimality preconditions:
it recovers by repairing only what the changes broke, rather than
restarting from the maximum arc cost.

:class:`IncrementalCostScalingSolver` is stateful and supports two levels
of reuse:

* **Delta solving** (the fast path): when the caller supplies the typed
  :class:`~repro.flow.changes.ChangeBatch` that transforms the previously
  solved network into the current one (the graph manager emits one per
  rebuild), the solver patches its *persistent residual network* in place
  and repairs optimality around the patched arcs only
  (:meth:`~repro.solvers.cost_scaling.CostScalingSolver.solve_delta`).  No
  ``ResidualNetwork`` is constructed and no O(graph) object traversal
  happens; per-round work is O(|changes| + repair).  The batch's revision
  identifiers guard the patch: if the residual does not mirror the batch's
  base revision (a round was skipped, or external state was seeded), the
  solver falls back to the rebuild path below.
* **Warm rebuild** (the fallback): the remembered flow and potentials of
  the previous run, keyed by arc endpoints / node ids, are loaded into a
  freshly built residual network
  (:meth:`~repro.solvers.cost_scaling.CostScalingSolver.solve_warm`).  This
  tolerates arbitrary divergence between rounds -- the way Firmament's
  graph manager rebuilds networks from scratch -- at O(nodes + arcs)
  reconstruction cost.

Warm state is invalidated by :meth:`IncrementalCostScalingSolver.reset`;
the persistent residual alone is dropped (falling back to warm rebuild)
whenever :meth:`IncrementalCostScalingSolver.seed` installs an external
solution, a change batch fails to apply, or a delta solve raises
infeasibility mid-repair.

Section 5.3.2 adds the **efficient task removal** heuristic: removing a
running task deletes a source node whose flow is still draped over the graph
downstream, which would create a deficit at the machine node where the task
ran (expensive for cost scaling to fix).  On the warm-rebuild path the
heuristic walks the removed task's flow forward to the sink, draining it so
the only imbalance appears at the sink, co-located with the supply
decrease.  On the delta path the same effect falls out of the residual
patching: removing the task's arcs returns their flow to the adjacent
nodes, and the repair routes the sink's surplus back along the short
reverse-arc path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork, NodeType
from repro.flow.validation import check_residual_epsilon_optimality
from repro.solvers.base import RoundDeadline, SolveAborted, Solver, SolverResult
from repro.solvers.cost_scaling import CostScalingSolver, DEFAULT_ALPHA


def drain_removed_task_flow(network: FlowNetwork, warm_flows: Dict[Tuple[int, int], int]) -> int:
    """Drain stale flow that used to originate at removed task nodes.

    For every node whose warm-start inflow no longer matches its outflow
    because an upstream task node (and its arcs) disappeared, walk the
    surplus outflow forward to the sink and subtract it.  The imbalance then
    cancels against the sink's reduced demand instead of leaving a deficit in
    the middle of the graph.

    Args:
        network: The updated flow network (task nodes already removed).
        warm_flows: Previous solution flow keyed by ``(src, dst)``; entries
            for arcs that no longer exist are ignored.

    Returns:
        The number of flow units drained.
    """
    # Purge flow entries for arcs that no longer exist (their task or machine
    # node was removed); only flow on live arcs can be reused anyway.
    live_keys = {arc.key() for arc in network.arcs()}
    for key in [k for k in warm_flows if k not in live_keys]:
        del warm_flows[key]

    inflow: Dict[int, int] = {}
    outflow: Dict[int, int] = {}
    for arc in network.arcs():
        flow = min(warm_flows.get(arc.key(), 0), arc.capacity)
        if flow:
            outflow[arc.src] = outflow.get(arc.src, 0) + flow
            inflow[arc.dst] = inflow.get(arc.dst, 0) + flow

    drained_total = 0
    for node in network.nodes():
        if node.node_type in (NodeType.TASK, NodeType.SINK):
            continue
        surplus = outflow.get(node.node_id, 0) - inflow.get(node.node_id, 0) - max(node.supply, 0)
        while surplus > 0:
            drained = _drain_one_unit_path(network, warm_flows, node.node_id)
            if drained == 0:
                break
            surplus -= drained
            drained_total += drained
    return drained_total


def _drain_one_unit_path(
    network: FlowNetwork, warm_flows: Dict[Tuple[int, int], int], start: int
) -> int:
    """Remove one unit of warm flow along a path from ``start`` to the sink."""
    path = []
    node_id = start
    guard = network.num_nodes + 1
    while guard > 0:
        guard -= 1
        node = network.node(node_id)
        if node.node_type is NodeType.SINK:
            break
        next_arc = None
        for arc in network.outgoing(node_id):
            if warm_flows.get(arc.key(), 0) > 0:
                next_arc = arc
                break
        if next_arc is None:
            return 0
        path.append(next_arc.key())
        node_id = next_arc.dst
    else:
        return 0
    if not path:
        return 0
    for key in path:
        warm_flows[key] = warm_flows.get(key, 0) - 1
        if warm_flows[key] <= 0:
            warm_flows.pop(key, None)
    return 1


class IncrementalCostScalingSolver(Solver):
    """Stateful cost-scaling solver that warm-starts from its previous run."""

    name = "incremental_cost_scaling"

    #: The scheduler may pass ``changes=ChangeBatch`` to :meth:`solve`.
    accepts_change_batches = True

    def __init__(
        self,
        alpha: int = DEFAULT_ALPHA,
        efficient_task_removal: bool = True,
        apply_price_refine: bool = True,
        price_refine: str = "auto",
        round_deadline_seconds: Optional[float] = None,
    ) -> None:
        """Create the solver.

        Args:
            alpha: Epsilon division factor for the underlying cost scaling.
            efficient_task_removal: Enable the Section 5.3.2 heuristic.
            apply_price_refine: Apply the price-refine heuristic before each
                warm-started run (Section 6.2).
            price_refine: Price-refine variant forwarded to the underlying
                cost scaling (``"spfa"``, ``"dijkstra"``, or ``"auto"``;
                see :data:`repro.solvers.cost_scaling.PRICE_REFINE_MODES`).
                The Dijkstra variant seeds warm rebuilds from the previous
                round's potentials so refine work tracks inter-round drift
                instead of network size.
            round_deadline_seconds: Optional per-solve wall-clock budget.
                Each :meth:`solve` call runs under its own soft
                :class:`~repro.solvers.base.RoundDeadline`: the epsilon
                ladder stops at the current coarser epsilon when the budget
                expires, so the result is still a feasible epsilon-optimal
                flow, marked ``optimal=False`` (fig10-style approximate
                solving).  An externally installed :attr:`deadline_check`
                (e.g. a dual executor's) takes precedence.
        """
        # polish_potentials keeps the retained residual 0-optimal, which is
        # what makes it legal to hand back to solve_delta next round.
        self._cost_scaling = CostScalingSolver(
            alpha=alpha, polish_potentials=True, price_refine=price_refine
        )
        self.efficient_task_removal = efficient_task_removal
        self.apply_price_refine = apply_price_refine
        #: Per-solve soft budget; see ``round_deadline_seconds`` above.
        self.round_deadline_seconds = round_deadline_seconds
        self._last_flows: Optional[Dict[Tuple[int, int], int]] = None
        self._last_potentials: Optional[Dict[int, int]] = None
        self._last_scaled_potentials: Optional[Dict[int, int]] = None
        self._last_scale: Optional[int] = None
        #: Count of solves served by the pure delta path (observability).
        self.delta_solves: int = 0
        #: Count of delta attempts that had to fall back to a rebuild.
        self.delta_fallbacks: int = 0
        #: When True, the retained residual's 0-optimality invariant is
        #: re-checked (``check_residual_epsilon_optimality(residual, 0)``)
        #: before every delta solve; a corrupted residual is dropped and the
        #: round falls back to a warm rebuild instead of repairing on top
        #: of garbage potentials.  Off by default — the check is O(arcs)
        #: per round; the chaos harness (and paranoid deployments) turn it
        #: on.
        self.validate_residual: bool = False
        #: Count of retained residuals the validation check rejected.
        self.residual_validation_failures: int = 0

    def reset(self) -> None:
        """Discard the remembered solution; the next solve runs from scratch."""
        self._last_flows = None
        self._last_potentials = None
        self._last_scaled_potentials = None
        self._last_scale = None
        self._cost_scaling.last_residual = None

    def seed(self, flows: Dict[Tuple[int, int], int], potentials: Dict[int, int]) -> None:
        """Install an externally produced solution as the warm-start state.

        Firmament uses this to hand the winning relaxation solution to the
        incremental cost scaling instance so the next run starts from it.
        Relaxation potentials are exact in unscaled units, so the scaled
        state of any previous cost-scaling run -- including the persistent
        residual -- is discarded and the next solve rebuilds.
        """
        self._last_flows = dict(flows)
        self._last_potentials = dict(potentials)
        self._last_scaled_potentials = None
        self._last_scale = None
        self._cost_scaling.last_residual = None

    @property
    def has_state(self) -> bool:
        """Return whether a previous solution is available for warm starting."""
        return self._last_flows is not None

    @property
    def price_refine(self) -> str:
        """Price-refine variant of the underlying cost scaling solver."""
        return self._cost_scaling.price_refine

    @property
    def abort_check(self):
        """Cooperative cancellation hook, forwarded to the inner solver.

        Set by the speculative parallel executor for the duration of a race
        so the losing cost-scaling run can be cancelled mid-flight; see
        :attr:`repro.solvers.cost_scaling.CostScalingSolver.abort_check`.
        """
        return self._cost_scaling.abort_check

    @abort_check.setter
    def abort_check(self, check) -> None:
        self._cost_scaling.abort_check = check

    @property
    def deadline_check(self):
        """Soft-deadline hook, forwarded to the inner solver.

        Polled at epsilon-phase boundaries; firing stops the scaling
        ladder at the current coarser epsilon (fig10-style approximate
        solving) instead of cancelling the run; see
        :attr:`repro.solvers.cost_scaling.CostScalingSolver.deadline_check`.
        """
        return self._cost_scaling.deadline_check

    @deadline_check.setter
    def deadline_check(self, check) -> None:
        self._cost_scaling.deadline_check = check

    @property
    def persistent_residual(self):
        """The retained residual of the inner solver (None when absent)."""
        return self._cost_scaling.last_residual

    @property
    def last_degradation(self):
        """Deadline-degradation record of the most recent inner run."""
        return self._cost_scaling.last_degradation

    def can_solve_delta(self, changes: Optional[ChangeBatch]) -> bool:
        """Whether the next solve with this batch takes the pure delta path.

        True when a persistent residual exists and the batch's revision
        chain connects to it, so the round's cost is O(|changes| + repair)
        rather than O(graph).  The parallel executor consults this to skip
        pointless speculation: from-scratch relaxation cannot beat a small
        bounded delta repair.
        """
        return self._deltable_residual(changes) is not None

    def _deltable_residual(self, changes: Optional[ChangeBatch]):
        """Return the persistent residual if the change batch applies to it."""
        if changes is None or not self.has_state:
            return None
        residual = self._cost_scaling.last_residual
        if residual is None:
            return None
        # Revision guard: the batch must connect the snapshot the residual
        # mirrors to the network being solved.  (Both None -- hand-built
        # networks -- is accepted; the caller vouches for consistency.)
        if residual.revision != changes.base_revision:
            return None
        return residual

    def solve(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> SolverResult:
        """Solve the network, reusing the previous solution when available.

        Args:
            network: The flow network to solve.
            changes: Optional typed batch transforming the previously solved
                network into ``network`` (as emitted by
                :meth:`repro.core.graph_manager.GraphManager.update`).  When
                supplied and applicable, the solve runs on the persistent
                residual without reconstructing it.
        """
        # Per-solve soft deadline: truncate the epsilon ladder at the
        # budget.  An externally installed check (a dual executor running
        # its own RoundDeadline) is never clobbered.
        installed_deadline = False
        if (
            self.round_deadline_seconds is not None
            and self._cost_scaling.deadline_check is None
        ):
            self._cost_scaling.deadline_check = RoundDeadline(
                self.round_deadline_seconds
            ).expired
            installed_deadline = True
        try:
            return self._solve_inner(network, changes)
        finally:
            if installed_deadline:
                self._cost_scaling.deadline_check = None

    def _solve_inner(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> SolverResult:
        residual = self._deltable_residual(changes)
        if residual is not None and self.validate_residual:
            problems = check_residual_epsilon_optimality(residual, 0)
            if problems:
                # The retained residual no longer proves 0-optimality
                # (state corruption, a bug, a cosmic ray).  Repairing on
                # top of bad potentials would silently produce a wrong
                # flow, so drop the residual and rebuild warm instead.
                self._cost_scaling.last_residual = None
                self.residual_validation_failures += 1
                residual = None
        if residual is not None:
            try:
                result = self._cost_scaling.solve_delta(residual, network, changes)
                self.delta_solves += 1
            except (KeyError, ValueError):
                # The batch does not match the residual's structure; the
                # half-patched residual is unusable, so drop it and rebuild.
                self._cost_scaling.last_residual = None
                self.delta_fallbacks += 1
                result = self._solve_rebuild(network)
            except Exception:
                self._cost_scaling.last_residual = None
                raise
        else:
            try:
                result = self._solve_rebuild(network)
            except SolveAborted:
                # The run was cancelled mid-rebuild; the retained residual
                # (if any) mirrors an older revision and must not be reused.
                self._cost_scaling.last_residual = None
                raise
        self._last_flows = dict(result.flows)
        self._last_potentials = dict(result.potentials)
        self._last_scaled_potentials = dict(self._cost_scaling.last_scaled_potentials or {})
        self._last_scale = self._cost_scaling.last_scale
        return result

    def _solve_rebuild(self, network: FlowNetwork) -> SolverResult:
        """Solve by (re)building a residual network (cold or warm)."""
        if not self.has_state:
            result = self._cost_scaling.solve(network)
            result = SolverResult(
                algorithm=self.name,
                total_cost=result.total_cost,
                flows=result.flows,
                potentials=result.potentials,
                runtime_seconds=result.runtime_seconds,
                statistics=result.statistics,
                optimal=result.optimal,
            )
        else:
            warm_flows = dict(self._last_flows)
            if self.efficient_task_removal:
                drain_removed_task_flow(network, warm_flows)
                # The drain walk is O(graph) without polling; surface a lost
                # race at its boundary before the warm rebuild starts.
                self._cost_scaling._check_abort()
            result = self._cost_scaling.solve_warm(
                network,
                warm_flows,
                warm_potentials=dict(self._last_potentials or {}),
                apply_price_refine=self.apply_price_refine,
                warm_scaled_potentials=self._last_scaled_potentials,
                warm_scale=self._last_scale,
            )
            result.algorithm = self.name
        return result
