"""Incremental cost scaling with the efficient task-removal heuristic.

Section 5.2 of the paper observes that cluster state changes little between
consecutive scheduling runs, so the MCMF solver should reuse its previous
solution.  Cost scaling is the best candidate for incremental operation even
though graph changes break its feasibility/epsilon-optimality preconditions:
it recovers by raising epsilon only as far as the worst violation the
changes introduced, rather than restarting from the maximum arc cost.

Section 5.3.2 adds the **efficient task removal** heuristic: removing a
running task deletes a source node whose flow is still draped over the graph
downstream, which would create a deficit at the machine node where the task
ran (expensive for cost scaling to fix).  The heuristic instead walks the
removed task's flow forward to the sink, draining it so the only imbalance
appears at the sink, co-located with the supply decrease.

:class:`IncrementalCostScalingSolver` is stateful: it remembers the flow and
potentials of its previous run keyed by arc endpoints / node ids, so it can
be handed a freshly rebuilt flow network each scheduling iteration (the way
Firmament's graph manager produces them) and still warm-start.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.flow.graph import FlowNetwork, NodeType
from repro.solvers.base import Solver, SolverResult, SolverStatistics
from repro.solvers.cost_scaling import CostScalingSolver, DEFAULT_ALPHA


def drain_removed_task_flow(network: FlowNetwork, warm_flows: Dict[Tuple[int, int], int]) -> int:
    """Drain stale flow that used to originate at removed task nodes.

    For every node whose warm-start inflow no longer matches its outflow
    because an upstream task node (and its arcs) disappeared, walk the
    surplus outflow forward to the sink and subtract it.  The imbalance then
    cancels against the sink's reduced demand instead of leaving a deficit in
    the middle of the graph.

    Args:
        network: The updated flow network (task nodes already removed).
        warm_flows: Previous solution flow keyed by ``(src, dst)``; entries
            for arcs that no longer exist are ignored.

    Returns:
        The number of flow units drained.
    """
    # Purge flow entries for arcs that no longer exist (their task or machine
    # node was removed); only flow on live arcs can be reused anyway.
    live_keys = {arc.key() for arc in network.arcs()}
    for key in [k for k in warm_flows if k not in live_keys]:
        del warm_flows[key]

    inflow: Dict[int, int] = {}
    outflow: Dict[int, int] = {}
    for arc in network.arcs():
        flow = min(warm_flows.get(arc.key(), 0), arc.capacity)
        if flow:
            outflow[arc.src] = outflow.get(arc.src, 0) + flow
            inflow[arc.dst] = inflow.get(arc.dst, 0) + flow

    drained_total = 0
    for node in network.nodes():
        if node.node_type in (NodeType.TASK, NodeType.SINK):
            continue
        surplus = outflow.get(node.node_id, 0) - inflow.get(node.node_id, 0) - max(node.supply, 0)
        while surplus > 0:
            drained = _drain_one_unit_path(network, warm_flows, node.node_id)
            if drained == 0:
                break
            surplus -= drained
            drained_total += drained
    return drained_total


def _drain_one_unit_path(
    network: FlowNetwork, warm_flows: Dict[Tuple[int, int], int], start: int
) -> int:
    """Remove one unit of warm flow along a path from ``start`` to the sink."""
    path = []
    node_id = start
    guard = network.num_nodes + 1
    while guard > 0:
        guard -= 1
        node = network.node(node_id)
        if node.node_type is NodeType.SINK:
            break
        next_arc = None
        for arc in network.outgoing(node_id):
            if warm_flows.get(arc.key(), 0) > 0:
                next_arc = arc
                break
        if next_arc is None:
            return 0
        path.append(next_arc.key())
        node_id = next_arc.dst
    else:
        return 0
    if not path:
        return 0
    for key in path:
        warm_flows[key] = warm_flows.get(key, 0) - 1
        if warm_flows[key] <= 0:
            warm_flows.pop(key, None)
    return 1


class IncrementalCostScalingSolver(Solver):
    """Stateful cost-scaling solver that warm-starts from its previous run."""

    name = "incremental_cost_scaling"

    def __init__(
        self,
        alpha: int = DEFAULT_ALPHA,
        efficient_task_removal: bool = True,
        apply_price_refine: bool = True,
    ) -> None:
        """Create the solver.

        Args:
            alpha: Epsilon division factor for the underlying cost scaling.
            efficient_task_removal: Enable the Section 5.3.2 heuristic.
            apply_price_refine: Apply the price-refine heuristic before each
                warm-started run (Section 6.2).
        """
        self._cost_scaling = CostScalingSolver(alpha=alpha)
        self.efficient_task_removal = efficient_task_removal
        self.apply_price_refine = apply_price_refine
        self._last_flows: Optional[Dict[Tuple[int, int], int]] = None
        self._last_potentials: Optional[Dict[int, int]] = None
        self._last_scaled_potentials: Optional[Dict[int, int]] = None
        self._last_scale: Optional[int] = None

    def reset(self) -> None:
        """Discard the remembered solution; the next solve runs from scratch."""
        self._last_flows = None
        self._last_potentials = None
        self._last_scaled_potentials = None
        self._last_scale = None

    def seed(self, flows: Dict[Tuple[int, int], int], potentials: Dict[int, int]) -> None:
        """Install an externally produced solution as the warm-start state.

        Firmament uses this to hand the winning relaxation solution to the
        incremental cost scaling instance so the next run starts from it.
        Relaxation potentials are exact in unscaled units, so the scaled
        state of any previous cost-scaling run is discarded.
        """
        self._last_flows = dict(flows)
        self._last_potentials = dict(potentials)
        self._last_scaled_potentials = None
        self._last_scale = None

    @property
    def has_state(self) -> bool:
        """Return whether a previous solution is available for warm starting."""
        return self._last_flows is not None

    def solve(self, network: FlowNetwork) -> SolverResult:
        """Solve the network, reusing the previous solution when available."""
        if not self.has_state:
            result = self._cost_scaling.solve(network)
            result = SolverResult(
                algorithm=self.name,
                total_cost=result.total_cost,
                flows=result.flows,
                potentials=result.potentials,
                runtime_seconds=result.runtime_seconds,
                statistics=result.statistics,
                optimal=result.optimal,
            )
        else:
            warm_flows = dict(self._last_flows)
            if self.efficient_task_removal:
                drain_removed_task_flow(network, warm_flows)
            result = self._cost_scaling.solve_warm(
                network,
                warm_flows,
                warm_potentials=dict(self._last_potentials or {}),
                apply_price_refine=self.apply_price_refine,
                warm_scaled_potentials=self._last_scaled_potentials,
                warm_scale=self._last_scale,
            )
            result.algorithm = self.name
        self._last_flows = dict(result.flows)
        self._last_potentials = dict(result.potentials)
        self._last_scaled_potentials = dict(self._cost_scaling.last_scaled_potentials or {})
        self._last_scale = self._cost_scaling.last_scale
        return result
