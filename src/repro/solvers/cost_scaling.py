"""Cost scaling MCMF algorithm (Goldberg-Tarjan), as used by Quincy.

Cost scaling maintains a feasible flow at all times and iteratively tightens
a relaxed complementary-slackness condition called *epsilon-optimality*: a
flow is epsilon-optimal when no residual arc has reduced cost below
``-epsilon``.  Each phase divides epsilon by a constant *alpha* factor and
re-establishes epsilon-optimality with push/relabel operations; once
epsilon drops below ``1/n`` the flow is optimal.

This implementation includes the two features the paper relies on:

* the tunable **alpha factor** (the paper finds alpha = 9 is ~30 % faster
  than cs2's default of 2 on scheduling graphs, Section 7.2), and
* the **price refine** heuristic (:func:`price_refine`), used in Section 6.2
  to convert the potentials left behind by a relaxation run into potentials
  that satisfy complementary slackness, so that a following incremental cost
  scaling run can start from a small epsilon.

The solver also supports warm starts from an existing feasible flow and
potentials, which is the basis of
:class:`~repro.solvers.incremental.IncrementalCostScalingSolver`.
"""

from __future__ import annotations

import time
from collections import deque
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    InfeasibleProblemError,
    Solver,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.residual import ResidualNetwork

#: Default alpha scaling factor used by Goldberg's cs2 solver (and Quincy).
DEFAULT_ALPHA = 2

#: Alpha factor the paper found best for scheduling graphs (Section 7.2).
TUNED_ALPHA = 9


def price_refine(residual: ResidualNetwork) -> bool:
    """Recompute node potentials that prove optimality of the current flow.

    Runs a Bellman-Ford sweep over the residual network (all nodes start at
    distance zero, modelling a virtual source connected to every node with
    zero-cost arcs).  If the residual network has no negative-cost cycle --
    which holds whenever the current flow is optimal, e.g. when it was
    produced by a relaxation run -- the negated distances are valid
    potentials under which no residual arc has negative reduced cost.

    Returns:
        True when new potentials were installed (flow was optimal), False
        when a negative cycle makes the current flow non-optimal, in which
        case the potentials are left untouched.
    """
    n = residual.num_nodes
    if n == 0:
        return True
    dist = [0] * n
    for iteration in range(n):
        changed = False
        for arc_index in range(residual.num_arcs):
            if residual.arc_residual[arc_index] <= 0:
                continue
            u = residual.arc_from[arc_index]
            v = residual.arc_to[arc_index]
            cost = residual.arc_cost[arc_index]
            if dist[u] + cost < dist[v]:
                dist[v] = dist[u] + cost
                changed = True
        if not changed:
            break
    else:
        # n full passes all improved something: negative cycle present.
        return False
    for i in range(n):
        residual.potential[i] = -dist[i]
    return True


class CostScalingSolver(Solver):
    """Goldberg-Tarjan cost scaling (push/relabel with epsilon scaling)."""

    name = "cost_scaling"

    def __init__(
        self,
        alpha: int = DEFAULT_ALPHA,
        max_phases: Optional[int] = None,
    ) -> None:
        """Create the solver.

        Args:
            alpha: Epsilon division factor between scaling phases (>= 2).
            max_phases: Optional limit on the number of scaling phases; used
                by the approximate-solution experiment (Figure 10).  ``None``
                runs to optimality.
        """
        if alpha < 2:
            raise ValueError("alpha must be at least 2")
        self.alpha = alpha
        self.max_phases = max_phases
        #: Exact scaled potentials of the most recent run, for warm starts.
        self.last_scaled_potentials: Optional[Dict[int, int]] = None
        self.last_scale: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, network: FlowNetwork) -> SolverResult:
        """Compute a min-cost max-flow from scratch."""
        start = time.perf_counter()
        residual = ResidualNetwork(network)
        stats = SolverStatistics()
        scale = self._cost_scale(residual)
        self._scale_costs(residual, scale)

        # Establish a feasible flow first (costs ignored): route all supply.
        self._establish_feasible_flow(residual, stats)

        epsilon = max(1, residual.max_cost())
        self._run_phases(residual, epsilon, stats)

        self._record_scaled_state(residual, scale)
        self._unscale_costs(residual, scale)
        residual.write_flow_back(network)
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm=self.name,
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=self._unscaled_potentials(residual, scale),
            runtime_seconds=runtime,
            statistics=stats,
            optimal=self.max_phases is None,
        )

    def solve_warm(
        self,
        network: FlowNetwork,
        warm_flows: Dict[Tuple[int, int], int],
        warm_potentials: Optional[Dict[int, int]] = None,
        apply_price_refine: bool = True,
        warm_scaled_potentials: Optional[Dict[int, int]] = None,
        warm_scale: Optional[int] = None,
    ) -> SolverResult:
        """Re-optimize starting from a previous solution.

        The warm flow is loaded arc by arc (clamped to the arc's current
        capacity) and node potentials are recovered -- from the previous
        run's scaled potentials if available, via the price-refine heuristic
        (Section 6.2) otherwise.  Optimality is then repaired cheaply:
        residual arcs whose reduced cost turned negative are saturated, and
        the resulting excesses (together with any new task supply) are routed
        along shortest reduced-cost paths, which preserves reduced-cost
        optimality.  Scaling phases only run as a fallback, starting from an
        epsilon sized to the worst remaining violation rather than from the
        maximum arc cost.

        Args:
            network: The (already updated) flow network to solve.
            warm_flows: Flow of the previous solution keyed by arc endpoints.
            warm_potentials: Node potentials of the previous solution in
                original (unscaled) cost units, e.g. from a relaxation run.
            apply_price_refine: Derive complementary-slackness potentials
                from the warm flow when no scaled potentials are available.
                With this disabled and no usable potentials, the solver falls
                back to zero potentials -- the "naive handoff" the paper's
                Figure 13 compares against.
            warm_scaled_potentials: Potentials in the scaled units of a
                previous cost-scaling run (takes precedence; avoids rounding
                losses across runs).
            warm_scale: The cost scale those potentials were computed under.
        """
        start = time.perf_counter()
        for arc in network.arcs():
            arc.flow = min(warm_flows.get(arc.key(), 0), arc.capacity)
        residual = ResidualNetwork(network, use_existing_flow=True)
        stats = SolverStatistics(warm_start=True)

        scale = self._cost_scale(residual)
        if warm_scaled_potentials is not None and warm_scale:
            # Choose the new scale as an integer multiple of the previous one
            # so the stored potentials transfer exactly (no rounding, hence
            # no spurious epsilon-optimality violations).
            multiplier = max(1, -(-scale // warm_scale))  # ceil division
            scale = warm_scale * multiplier
        self._scale_costs(residual, scale)

        have_good_potentials = True
        if warm_scaled_potentials is not None and warm_scale:
            multiplier = scale // warm_scale
            for node_id, value in warm_scaled_potentials.items():
                if node_id in residual.index:
                    residual.potential[residual.index[node_id]] = value * multiplier
        elif apply_price_refine and price_refine(residual):
            stats.potential_updates += 1
        elif warm_potentials is not None:
            residual.load_potentials(warm_potentials)
            for i in range(residual.num_nodes):
                residual.potential[i] *= scale
        else:
            # Naive handoff: no usable potentials.  This is the slow path
            # Figure 13 compares price refine against.
            have_good_potentials = False

        if have_good_potentials:
            # With (near-)optimal potentials the changes are repaired
            # directly, without re-running the scaling ladder: residual arcs
            # whose reduced cost turned negative (cost changes) are
            # saturated, then every remaining excess (new tasks, surpluses
            # and deficits left by removals and the saturation step) is
            # routed along shortest reduced-cost paths.  Both steps preserve
            # reduced-cost optimality, so the repaired feasible flow is
            # optimal, and the work done is proportional to the size of the
            # change batch rather than to the graph.  A completely unchanged
            # problem needs no repair at all.
            violation = self._max_violation(residual)
            excess = residual.total_excess()
            if violation > 0 and excess == 0 and price_refine(residual):
                # The warm flow is still feasible; the previous run's
                # potentials were merely 1-optimal (in scaled units) rather
                # than exact.  Price refine re-derives potentials that prove
                # the flow optimal, so no repair work is needed (Section 6.2
                # applies the same heuristic to relaxation hand-offs).
                stats.potential_updates += 1
                violation = 0
            if violation > 0 or excess > 0:
                self._repair_warm_solution(residual, stats)
                stats.epsilon_phases += 1
        else:
            # Naive handoff: no usable potentials, so behave like Quincy's
            # from-scratch solver except for reusing the warm flow -- route
            # all supply ignoring costs, then run the full scaling ladder
            # starting from the worst observed violation.
            self._establish_feasible_flow(residual, stats)
            violation = self._max_violation(residual)
            if violation > 0:
                self._run_phases(residual, max(1, violation), stats)

        self._record_scaled_state(residual, scale)
        self._unscale_costs(residual, scale)
        residual.write_flow_back(network)
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm="incremental_cost_scaling",
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=self._unscaled_potentials(residual, scale),
            runtime_seconds=runtime,
            statistics=stats,
        )

    def _repair_warm_solution(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Restore feasibility and optimality of a warm-started solution.

        The warm flow is feasible for the *previous* problem and the warm
        potentials certify its optimality there.  Graph changes leave two
        kinds of damage: residual arcs whose reduced cost is now negative
        (cost decreases, capacity increases) and node excesses/deficits (new
        or removed tasks, capacity decreases clamping flow).  Saturating the
        violating arcs restores reduced-cost optimality at the price of new
        excesses; routing every excess to a deficit along shortest
        reduced-cost paths (Dijkstra with potential updates, exactly as in
        successive shortest path) then restores feasibility while keeping
        reduced cost optimality, so the result is an optimal flow.
        """
        for arc_index in range(residual.num_arcs):
            if residual.arc_residual[arc_index] <= 0:
                continue
            if residual.reduced_cost(arc_index) < 0:
                residual.push(arc_index, residual.arc_residual[arc_index])
                stats.pushes += 1

        sources = residual.source_indices()
        while sources:
            source = sources[-1]
            if residual.excess[source] <= 0:
                sources.pop()
                continue
            routed = self._augment_along_reduced_costs(residual, source, stats)
            if routed == 0:
                raise InfeasibleProblemError(
                    "warm-start repair could not route all supply to a "
                    "deficit node; the updated flow network is infeasible"
                )

    def _augment_along_reduced_costs(
        self, residual: ResidualNetwork, source: int, stats: SolverStatistics
    ) -> int:
        """Send flow from ``source`` to the nearest deficit by reduced cost.

        Returns the amount routed (zero when no deficit is reachable).
        Potentials are updated with the Dijkstra distances so reduced costs
        stay non-negative for subsequent augmentations.
        """
        n = residual.num_nodes
        infinity = float("inf")
        dist: List[float] = [infinity] * n
        pred_arc: List[Optional[int]] = [None] * n
        visited = [False] * n
        dist[source] = 0
        heap: List[Tuple[float, int]] = [(0, source)]
        target = -1

        while heap:
            d, u = heappop(heap)
            if visited[u]:
                continue
            visited[u] = True
            stats.iterations += 1
            if residual.excess[u] < 0:
                target = u
                break
            for arc_index in residual.adjacency[u]:
                if residual.arc_residual[arc_index] <= 0:
                    continue
                v = residual.arc_to[arc_index]
                if visited[v]:
                    continue
                stats.arcs_scanned += 1
                new_dist = d + residual.reduced_cost(arc_index)
                if new_dist < dist[v]:
                    dist[v] = new_dist
                    pred_arc[v] = arc_index
                    heappush(heap, (new_dist, v))

        if target < 0:
            return 0

        target_dist = dist[target]
        for i in range(n):
            residual.potential[i] -= int(min(dist[i], target_dist))
        stats.potential_updates += 1

        amount = min(residual.excess[source], -residual.excess[target])
        node = target
        while node != source:
            arc_index = pred_arc[node]
            amount = min(amount, residual.arc_residual[arc_index])
            node = residual.arc_from[arc_index]

        path_arcs: List[int] = []
        node = target
        while node != source:
            arc_index = pred_arc[node]
            path_arcs.append(arc_index)
            node = residual.arc_from[arc_index]
        for arc_index in reversed(path_arcs):
            residual.push(arc_index, amount)
        stats.augmentations += 1
        return amount

    def _record_scaled_state(self, residual: ResidualNetwork, scale: int) -> None:
        """Remember the exact scaled potentials for the next warm start."""
        self.last_scaled_potentials = {
            nid: residual.potential[i] for nid, i in residual.index.items()
        }
        self.last_scale = scale

    # ------------------------------------------------------------------ #
    # Cost scaling internals
    # ------------------------------------------------------------------ #
    def _cost_scale(self, residual: ResidualNetwork) -> int:
        """Return the integer factor by which costs are multiplied.

        Scaling costs by ``n + 1`` makes 1-optimality in scaled units imply
        ``1/(n+1)``-optimality in original units, which guarantees optimality
        for integer costs.
        """
        return residual.num_nodes + 1

    def _scale_costs(self, residual: ResidualNetwork, scale: int) -> None:
        for arc_index in range(residual.num_arcs):
            residual.arc_cost[arc_index] *= scale

    def _unscale_costs(self, residual: ResidualNetwork, scale: int) -> None:
        for arc_index in range(residual.num_arcs):
            residual.arc_cost[arc_index] //= scale

    def _unscaled_potentials(
        self, residual: ResidualNetwork, scale: int
    ) -> Dict[int, int]:
        return {nid: residual.potential[i] // scale for nid, i in residual.index.items()}

    def _max_violation(self, residual: ResidualNetwork) -> int:
        """Return the magnitude of the worst negative reduced cost on a
        residual arc with remaining capacity (zero when epsilon-optimal for
        epsilon = 0)."""
        worst = 0
        for arc_index in range(residual.num_arcs):
            if residual.arc_residual[arc_index] <= 0:
                continue
            rc = residual.reduced_cost(arc_index)
            if rc < -worst:
                worst = -rc
        return worst

    def _run_phases(
        self, residual: ResidualNetwork, initial_epsilon: int, stats: SolverStatistics
    ) -> None:
        """Run scaling phases from ``initial_epsilon`` down to 1."""
        epsilon = initial_epsilon
        phases = 0
        while True:
            self._refine(residual, epsilon, stats)
            phases += 1
            stats.epsilon_phases += 1
            if epsilon <= 1:
                break
            if self.max_phases is not None and phases >= self.max_phases:
                break
            epsilon = max(1, epsilon // self.alpha)

    def _establish_feasible_flow(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Route all positive excess to deficit nodes, ignoring costs.

        Uses breadth-first augmentation; this corresponds to the max-flow
        computation that precedes cost optimization.  Raises
        :class:`InfeasibleProblemError` when supply cannot be routed.
        """
        for source in range(residual.num_nodes):
            while residual.excess[source] > 0:
                path = self._bfs_path_to_deficit(residual, source, stats)
                if path is None:
                    raise InfeasibleProblemError(
                        "cannot route all supply to the sink; scheduling graphs "
                        "must always provide unscheduled aggregator capacity"
                    )
                target = residual.arc_to[path[-1]]
                amount = min(residual.excess[source], -residual.excess[target])
                amount = min(
                    amount, min(residual.arc_residual[arc_index] for arc_index in path)
                )
                for arc_index in path:
                    residual.push(arc_index, amount)
                stats.augmentations += 1

    def _bfs_path_to_deficit(
        self, residual: ResidualNetwork, source: int, stats: SolverStatistics
    ) -> Optional[List[int]]:
        pred_arc: List[Optional[int]] = [None] * residual.num_nodes
        visited = [False] * residual.num_nodes
        visited[source] = True
        queue = deque([source])
        target = -1
        while queue:
            u = queue.popleft()
            if residual.excess[u] < 0:
                target = u
                break
            for arc_index in residual.adjacency[u]:
                if residual.arc_residual[arc_index] <= 0:
                    continue
                v = residual.arc_to[arc_index]
                stats.arcs_scanned += 1
                if not visited[v]:
                    visited[v] = True
                    pred_arc[v] = arc_index
                    queue.append(v)
        if target < 0:
            return None
        path: List[int] = []
        node = target
        while node != source:
            arc_index = pred_arc[node]
            path.append(arc_index)
            node = residual.arc_from[arc_index]
        path.reverse()
        return path

    def _refine(
        self, residual: ResidualNetwork, epsilon: int, stats: SolverStatistics
    ) -> None:
        """Re-establish epsilon-optimality of the current feasible flow."""
        # Saturate every residual arc with negative reduced cost.  This makes
        # the pseudo-flow 0-optimal for the current potentials but creates
        # excesses and deficits that the push/relabel loop drains.
        for arc_index in range(residual.num_arcs):
            if residual.arc_residual[arc_index] <= 0:
                continue
            if residual.reduced_cost(arc_index) < 0:
                residual.push(arc_index, residual.arc_residual[arc_index])
                stats.pushes += 1

        active = deque(
            i for i in range(residual.num_nodes) if residual.excess[i] > 0
        )
        in_queue = [False] * residual.num_nodes
        for i in active:
            in_queue[i] = True

        # Generous potential-increase bound used purely as an infeasibility
        # safety net; feasible scheduling graphs never get close to it.
        max_increase = 4 * (residual.num_nodes + 2) * (epsilon + residual.max_cost() + 1)
        start_potential = list(residual.potential)

        while active:
            u = active.popleft()
            in_queue[u] = False
            self._discharge(
                residual,
                u,
                epsilon,
                active,
                in_queue,
                stats,
                start_potential[u] + max_increase,
            )

    def _discharge(
        self,
        residual: ResidualNetwork,
        u: int,
        epsilon: int,
        active: deque,
        in_queue: List[bool],
        stats: SolverStatistics,
        potential_bound: int,
    ) -> None:
        """Push the excess of node ``u`` along admissible arcs, relabeling as needed."""
        while residual.excess[u] > 0:
            pushed_any = False
            for arc_index in residual.adjacency[u]:
                if residual.excess[u] <= 0:
                    break
                if residual.arc_residual[arc_index] <= 0:
                    continue
                stats.arcs_scanned += 1
                if residual.reduced_cost(arc_index) < 0:
                    v = residual.arc_to[arc_index]
                    amount = min(residual.excess[u], residual.arc_residual[arc_index])
                    residual.push(arc_index, amount)
                    stats.pushes += 1
                    pushed_any = True
                    if residual.excess[v] > 0 and not in_queue[v]:
                        active.append(v)
                        in_queue[v] = True
            if residual.excess[u] <= 0:
                return
            if not pushed_any:
                self._relabel(residual, u, epsilon, stats)
                if residual.potential[u] > potential_bound:
                    raise InfeasibleProblemError(
                        "potential of a node grew without bound during refine; "
                        "the flow network admits no feasible routing"
                    )

    def _relabel(
        self,
        residual: ResidualNetwork,
        u: int,
        epsilon: int,
        stats: SolverStatistics,
    ) -> None:
        """Raise the potential of ``u`` just enough to create an admissible arc."""
        best = None
        for arc_index in residual.adjacency[u]:
            if residual.arc_residual[arc_index] <= 0:
                continue
            v = residual.arc_to[arc_index]
            candidate = residual.arc_cost[arc_index] + residual.potential[v]
            if best is None or candidate < best:
                best = candidate
        if best is None:
            raise InfeasibleProblemError(
                f"node {u} has excess but no outgoing residual arcs"
            )
        residual.potential[u] = best + epsilon
        stats.relabels += 1
