"""Cost scaling MCMF algorithm (Goldberg-Tarjan), as used by Quincy.

Cost scaling maintains a feasible flow at all times and iteratively tightens
a relaxed complementary-slackness condition called *epsilon-optimality*: a
flow is epsilon-optimal when no residual arc has reduced cost below
``-epsilon``.  Each phase divides epsilon by a constant *alpha* factor and
re-establishes epsilon-optimality with push/relabel operations; once
epsilon drops below ``1/n`` the flow is optimal.

This implementation includes the two features the paper relies on:

* the tunable **alpha factor** (the paper finds alpha = 9 is ~30 % faster
  than cs2's default of 2 on scheduling graphs, Section 7.2), and
* the **price refine** heuristic (:func:`price_refine`), used in Section 6.2
  to convert the potentials left behind by a relaxation run into potentials
  that satisfy complementary slackness, so that a following incremental cost
  scaling run can start from a small epsilon.

Performance architecture
========================

The solver is the hottest code in the repository, so its inner loops avoid
every avoidable indirection:

* The push/relabel *discharge* loop (:meth:`CostScalingSolver._refine`)
  keeps a **current-arc cursor** per node
  (:attr:`~repro.solvers.residual.ResidualNetwork.current_arc`): a
  discharge resumes scanning the adjacency list where the previous one
  stopped instead of restarting at the front.  The cursor is only reset
  when the node is relabeled, which is exactly when previously scanned
  arcs can become admissible again (a relabel of ``u`` is the only event
  that lowers the reduced cost of ``u``'s outgoing arcs; pushes and other
  nodes' relabels only raise them).
* Reduced costs are computed **inline** from local aliases of the arc
  arrays (``arc_cost[a] - pot_u + potential[arc_to[a]]``); no method call
  or attribute lookup happens per scanned arc.
* Price refine comes in two variants selected by the solver's
  ``price_refine`` mode (``"spfa"``, ``"dijkstra"``, or ``"auto"``):
  :func:`price_refine_spfa` runs a deque-based label-correcting sweep
  (SLF-ordered SPFA) over the residual adjacency instead of a dense
  ``n``-pass Bellman-Ford, while :func:`price_refine_dijkstra` runs a
  best-first (binary-heap) correction pass *seeded from the current
  potentials*: only arcs whose reduced cost is negative enter the heap, and
  labels propagate with set-once semantics wherever reduced costs are
  non-negative -- which is everywhere except the violated arcs themselves.
  Seeding makes the Dijkstra variant **incremental**: a warm rebuild that
  carries the previous round's potentials repairs labels only around the
  arcs the round's changes violated instead of relabeling the whole
  network from scratch.
* ``max_cost`` / epsilon bounds read the residual network's **cached**
  maximum cost rather than rescanning every arc each phase.

Incremental (delta) solving
===========================

Beyond warm starts from a previous solution (:meth:`solve_warm`), the
solver supports the fully incremental path of the paper's Section 5.2:
:meth:`solve_delta` takes a *persistent* residual network left behind by
the previous run (still in scaled cost units, with exact potentials that
prove the previous optimum) and a typed
:class:`~repro.flow.changes.ChangeBatch`.  The batch is patched into the
residual in place -- O(|changes|) -- and only the patched ("dirty") arcs
can violate reduced-cost optimality, so the repair saturates those and
re-routes the resulting excesses along shortest reduced-cost paths.
Per-round work is therefore proportional to the size of the change and the
repair paths, never to the graph.

The persistence contract: a residual handed to :meth:`solve_delta` must be
**0-optimal** (no residual arc with negative reduced cost).  Solves that
finish through the epsilon ladder only guarantee 1-optimality in scaled
units, so a solver created with ``polish_potentials=True`` runs price
refine once at the end of such runs to restore exact potentials before the
residual is retained.
"""

from __future__ import annotations

import time
from collections import deque
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork
from repro.flow.validation import check_residual_epsilon_optimality
from repro.solvers.base import (
    InfeasibleProblemError,
    SolveAborted,
    Solver,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.residual import ResidualNetwork

#: Default alpha scaling factor used by Goldberg's cs2 solver (and Quincy).
DEFAULT_ALPHA = 2

#: Alpha factor the paper found best for scheduling graphs (Section 7.2).
TUNED_ALPHA = 9

#: How many discharge/augment operations run between two calls of the
#: cooperative abort check.  Each check is one pipe poll (a syscall); at this
#: granularity the overhead is far below 1 % of the hot-loop work while the
#: cancellation latency stays in the sub-millisecond range.
ABORT_CHECK_INTERVAL = 2048

#: Finer check interval for price refine's label-correcting sweep, whose
#: per-operation cost is a couple of microseconds: ~0.5 ms of cancellation
#: latency at ~1 % polling overhead.
PRICE_REFINE_CHECK_INTERVAL = 256

#: Price-refine variants accepted by the solvers and the CLI.  ``"auto"``
#: picks per call: the Dijkstra variant when a bounded violation set seeds
#: the refine (incremental mode), the deque sweep for full recomputations.
PRICE_REFINE_MODES = ("spfa", "dijkstra", "auto")

#: Heap-settle budget of *seeded* Dijkstra refines, as a multiple of the
#: seed (violated-arc) count with a floor for tiny seed sets.  Successful
#: incremental repairs settle roughly one label per violated arc, while a
#: residual that harbours a negative cycle grinds labels down until the
#: walk-length bound fires.  Both seeded call sites fall back to the
#: optimality repair on False, which is correct for any violation, so
#: giving up early only trades refine time for repair time instead of
#: burning it on cycle detection.
SEEDED_REFINE_POP_BUDGET_FACTOR = 4
SEEDED_REFINE_POP_BUDGET_FLOOR = 256

#: Under ``"auto"``, a seeded refine only uses the Dijkstra variant while
#: the violated arcs number at most ``max(floor, nodes / divisor)``.  Few
#: violations mean a local repair (a handful of set-once settles); a
#: violation count approaching the node count means the seed potentials
#: are globally stale, repair propagation goes wide, heap reinsertion
#: churn replaces the set-once behaviour, and the canonical SPFA sweep
#: recomputes from scratch faster.  (An unseeded full refine always takes
#: the sweep: without usable potentials most arc weights are negative,
#: which strips the heap of its set-once guarantee on every label.)
AUTO_SEED_MAX_VIOLATION_FLOOR = 32
AUTO_SEED_NODE_DIVISOR = 8


def price_refine_spfa(residual: ResidualNetwork, abort_check=None, stats=None) -> bool:
    """Recompute node potentials that prove optimality of the current flow.

    Runs a deque-based label-correcting sweep (SPFA) over the residual
    network: all nodes start at distance zero, modelling a virtual source
    connected to every node with zero-cost arcs, and labels are corrected
    along residual arcs until a fixpoint.  If the residual network has no
    negative-cost cycle -- which holds whenever the current flow is
    optimal, e.g. when it was produced by a relaxation run -- the negated
    distances are valid potentials under which no residual arc has negative
    reduced cost.

    Compared to the textbook dense Bellman-Ford (n passes over every arc),
    the sweep only revisits nodes whose label actually improved, which on
    scheduling graphs converges after a few sparse passes.

    Args:
        residual: The residual network whose potentials to recompute.
        abort_check: Optional cooperative cancellation hook, polled every
            :data:`PRICE_REFINE_CHECK_INTERVAL` dequeued labels; returning
            True raises :class:`~repro.solvers.base.SolveAborted`.  Price
            refine dominates the warm-start path's runtime, so a
            parallel-executor race that cannot cancel it would notice the
            other algorithm's finish tens of milliseconds late.
        stats: Optional :class:`~repro.solvers.base.SolverStatistics`;
            dequeued labels are accumulated into ``price_refine_passes``.

    Returns:
        True when new potentials were installed (flow was optimal), False
        when a negative cycle makes the current flow non-optimal, in which
        case the potentials are left untouched.
    """
    n = residual.num_nodes
    if n == 0:
        return True
    adjacency = residual.adjacency
    arc_residual = residual.arc_residual
    arc_cost = residual.arc_cost
    arc_to = residual.arc_to

    dist = [0] * n
    queue = deque(range(n))
    in_queue = bytearray(b"\x01" * n)
    # Edge count of the walk realizing each label: without a negative cycle
    # every improving walk is simple (at most n edges counting the virtual
    # source hop), so a longer walk proves a negative cycle.  This triggers
    # after O(cycle) relaxations instead of the O(n * m) an enqueue-count
    # bound needs.
    hops = [0] * n

    pops = 0
    ops_until_check = PRICE_REFINE_CHECK_INTERVAL
    while queue:
        if abort_check is not None:
            ops_until_check -= 1
            if ops_until_check <= 0:
                ops_until_check = PRICE_REFINE_CHECK_INTERVAL
                if abort_check():
                    raise SolveAborted("price refine cancelled by abort check")
        u = queue.popleft()
        pops += 1
        in_queue[u] = 0
        du = dist[u]
        hu = hops[u]
        for a in adjacency[u]:
            if arc_residual[a] <= 0:
                continue
            v = arc_to[a]
            nd = du + arc_cost[a]
            if nd < dist[v]:
                dist[v] = nd
                hops[v] = hu + 1
                if hops[v] > n:
                    if stats is not None:
                        stats.price_refine_passes += pops
                    return False
                if not in_queue[v]:
                    # Smallest-label-first: process promising labels before
                    # stale large ones.  Plain FIFO SPFA degenerates to
                    # near O(n * m) label churn on the post-seed residuals
                    # of large accelerated-trace rounds (tens of millions
                    # of corrections); SLF keeps the sweep near-linear.
                    if queue and nd <= dist[queue[0]]:
                        queue.appendleft(v)
                    else:
                        queue.append(v)
                    in_queue[v] = 1
    potential = residual.potential
    for i in range(n):
        potential[i] = -dist[i]
    if stats is not None:
        stats.price_refine_passes += pops
    return True


#: Backwards-compatible name: the SPFA sweep was the only price refine
#: before the Dijkstra variant landed, exported as plain ``price_refine``.
price_refine = price_refine_spfa


def price_refine_dijkstra(
    residual: ResidualNetwork,
    abort_check=None,
    seed_arcs: Optional[Iterable[int]] = None,
    stats=None,
    max_pops: Optional[int] = None,
) -> bool:
    """Repair the *current* potentials into optimality-proving ones.

    Where :func:`price_refine_spfa` discards the stored potentials and
    recomputes canonical ones from scratch, this variant treats them as a
    starting point: it seeks per-node corrections ``h <= 0`` such that
    ``potential + h`` leaves no residual arc with negative reduced cost.
    The corrections satisfy the difference constraints ``h(u) <= h(v) +
    reduced_cost(u, v)`` over residual arcs, solved as a shortest-path
    fixpoint with a binary heap: only the *violated* arcs (negative reduced
    cost under the current potentials) seed the heap, and every label
    settles permanently on the first pop wherever reduced costs are
    non-negative -- which, for an epsilon-optimal residual, is everywhere
    except the violated arcs themselves.  A residual that is already
    0-optimal therefore costs one scan and zero heap operations, and a
    residual violated only around a change batch's patched arcs repairs
    labels only in the region those arcs can reach -- the incremental
    refine mode.

    Args:
        residual: The residual network whose potentials to repair.
        abort_check: Cooperative cancellation hook, polled every
            :data:`PRICE_REFINE_CHECK_INTERVAL` operations.
        seed_arcs: Optional iterable of residual arc indices to restrict
            the violation scan to.  Callers that know which arcs changed
            (delta patches, a just-computed violation scan) pass them so
            the refine never touches the rest of the graph; ``None`` scans
            every residual arc.  Correctness requires every violated arc to
            be covered by the seeds.
        stats: Optional :class:`~repro.solvers.base.SolverStatistics`;
            heap settles are accumulated into ``price_refine_passes``.
        max_pops: Optional give-up budget on heap settles.  A successful
            incremental repair settles roughly one label per violated arc;
            a run far beyond that is almost certainly grinding toward the
            walk-length bound around a negative cycle, and a caller whose
            False-path (optimality repair) is correct for *any* violation
            can bail out much earlier than cycle detection proper.  Do not
            set it where False is treated as proof of non-optimality.

    Returns:
        True when corrected potentials were installed (flow optimal),
        False when a negative residual cycle exists -- labels on such a
        cycle decrease forever, detected by the same walk-length bound the
        SPFA sweep uses -- or the ``max_pops`` budget ran out; either way
        the potentials are left untouched.
    """
    n = residual.num_nodes
    if n == 0:
        return True
    adjacency = residual.adjacency
    arc_residual = residual.arc_residual
    arc_cost = residual.arc_cost
    arc_to = residual.arc_to
    arc_from = residual.arc_from
    potential = residual.potential

    h = [0] * n
    hops = [0] * n
    heap: List[Tuple[int, int]] = []
    pops = 0

    if seed_arcs is None:
        seed_arcs = range(len(arc_residual))
    ops_until_check = PRICE_REFINE_CHECK_INTERVAL
    for a in seed_arcs:
        if abort_check is not None:
            ops_until_check -= 1
            if ops_until_check <= 0:
                ops_until_check = PRICE_REFINE_CHECK_INTERVAL
                if abort_check():
                    raise SolveAborted("price refine cancelled by abort check")
        if arc_residual[a] <= 0:
            continue
        u = arc_from[a]
        cand = h[arc_to[a]] + arc_cost[a] - potential[u] + potential[arc_to[a]]
        if cand < h[u]:
            h[u] = cand
            hops[u] = hops[arc_to[a]] + 1
            heappush(heap, (cand, u))

    while heap:
        if abort_check is not None:
            ops_until_check -= 1
            if ops_until_check <= 0:
                ops_until_check = PRICE_REFINE_CHECK_INTERVAL
                if abort_check():
                    raise SolveAborted("price refine cancelled by abort check")
        d, x = heappop(heap)
        if d > h[x]:
            continue  # stale heap entry; a smaller label was pushed later
        pops += 1
        if max_pops is not None and pops > max_pops:
            if stats is not None:
                stats.price_refine_passes += pops
            return False
        hx = hops[x]
        px = potential[x]
        # A settled (lowered) label at x tightens the constraints of the
        # residual arcs *into* x: for each incoming arc (t, x) -- the
        # reverse half of an arc in x's adjacency -- the tail's correction
        # must obey h(t) <= h(x) + reduced_cost(t, x).
        for a in adjacency[x]:
            ra = a ^ 1
            if arc_residual[ra] <= 0:
                continue
            t = arc_to[a]
            cand = d + arc_cost[ra] - potential[t] + px
            if cand < h[t]:
                h[t] = cand
                nh = hx + 1
                hops[t] = nh
                if nh > n:
                    if stats is not None:
                        stats.price_refine_passes += pops
                    return False
                heappush(heap, (cand, t))

    for i in range(n):
        if h[i]:
            potential[i] += h[i]
    if stats is not None:
        stats.price_refine_passes += pops
    return True


class CostScalingSolver(Solver):
    """Goldberg-Tarjan cost scaling (push/relabel with epsilon scaling)."""

    name = "cost_scaling"

    def __init__(
        self,
        alpha: int = DEFAULT_ALPHA,
        max_phases: Optional[int] = None,
        polish_potentials: bool = False,
        price_refine: str = "auto",
    ) -> None:
        """Create the solver.

        Args:
            alpha: Epsilon division factor between scaling phases (>= 2).
            max_phases: Optional limit on the number of scaling phases; used
                by the approximate-solution experiment (Figure 10).  ``None``
                runs to optimality.
            polish_potentials: Run price refine after solves that finish
                through the epsilon ladder, so the residual network is left
                0-optimal and can be retained for delta solving.  Off by
                default (a plain Quincy-style solver does not pay for it).
            price_refine: Price-refine variant (:data:`PRICE_REFINE_MODES`):
                ``"spfa"`` always runs the deque-based label-correcting
                sweep, ``"dijkstra"`` the heap-based incremental repair,
                and ``"auto"`` (default) picks per call -- Dijkstra when a
                seeded violation set is small relative to the graph
                (at most ``max(32, nodes / 8)`` violated arcs), the SPFA
                sweep for widely-violated potentials and for unseeded
                full recomputations.
        """
        if alpha < 2:
            raise ValueError("alpha must be at least 2")
        if price_refine not in PRICE_REFINE_MODES:
            raise ValueError(
                f"unknown price refine mode {price_refine!r}; "
                f"choose from {PRICE_REFINE_MODES}"
            )
        self.alpha = alpha
        self.max_phases = max_phases
        self.polish_potentials = polish_potentials
        self.price_refine = price_refine
        #: Optional cooperative cancellation hook: a zero-argument callable
        #: polled every :data:`ABORT_CHECK_INTERVAL` operations inside the
        #: long-running loops.  Returning True raises
        #: :class:`~repro.solvers.base.SolveAborted`, cancelling the run
        #: (the speculative parallel executor uses this to stop the losing
        #: algorithm).  ``None`` (the default) adds no per-operation work.
        self.abort_check: Optional[callable] = None
        #: Exact scaled potentials of the most recent run, for warm starts.
        self.last_scaled_potentials: Optional[Dict[int, int]] = None
        self.last_scale: Optional[int] = None
        #: The residual network of the most recent run, retained in scaled
        #: cost units for :meth:`solve_delta` (None until the first solve).
        self.last_residual: Optional[ResidualNetwork] = None
        #: Optional soft-deadline hook: a zero-argument callable polled at
        #: epsilon-phase boundaries.  Returning True stops the scaling
        #: ladder at the *current* coarser epsilon instead of running to
        #: epsilon = 1: the flow stays feasible and epsilon-optimal (the
        #: paper's fig10 approximation), the result is flagged
        #: ``optimal=False``, and :attr:`last_degradation` records the
        #: epsilon together with an inline
        #: ``check_residual_epsilon_optimality`` validation.  ``None`` (the
        #: default) adds no per-phase work.
        self.deadline_check: Optional[callable] = None
        #: Details of the most recent deadline-truncated ladder:
        #: ``{"epsilon": int, "validated": bool, "problems": [...]}``;
        #: None when the last run finished its ladder (or never ran one).
        self.last_degradation: Optional[Dict] = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(self, network: FlowNetwork) -> SolverResult:
        """Compute a min-cost max-flow from scratch."""
        start = time.perf_counter()
        self.last_degradation = None
        residual = ResidualNetwork(network, abort_check=self.abort_check)
        stats = SolverStatistics()
        scale = self._cost_scale(residual)
        residual.scale_costs(scale)

        # Establish a feasible flow first (costs ignored): route all supply.
        self._establish_feasible_flow(residual, stats)

        epsilon = max(1, residual.max_cost())
        truncated = self._run_phases(residual, epsilon, stats)
        if not truncated:
            self._polish(residual, stats)

        return self._finish(
            network,
            residual,
            stats,
            start,
            optimal=self.max_phases is None and not truncated,
        )

    def solve_warm(
        self,
        network: FlowNetwork,
        warm_flows: Dict[Tuple[int, int], int],
        warm_potentials: Optional[Dict[int, int]] = None,
        apply_price_refine: bool = True,
        warm_scaled_potentials: Optional[Dict[int, int]] = None,
        warm_scale: Optional[int] = None,
    ) -> SolverResult:
        """Re-optimize starting from a previous solution.

        The warm flow is loaded arc by arc (clamped to the arc's current
        capacity) and node potentials are recovered -- from the previous
        run's scaled potentials if available, via the price-refine heuristic
        (Section 6.2) otherwise.  Optimality is then repaired cheaply:
        residual arcs whose reduced cost turned negative are saturated, and
        the resulting excesses (together with any new task supply) are routed
        along shortest reduced-cost paths, which preserves reduced-cost
        optimality.  Scaling phases only run as a fallback, starting from an
        epsilon sized to the worst remaining violation rather than from the
        maximum arc cost.

        Args:
            network: The (already updated) flow network to solve.
            warm_flows: Flow of the previous solution keyed by arc endpoints.
            warm_potentials: Node potentials of the previous solution in
                original (unscaled) cost units, e.g. from a relaxation run.
            apply_price_refine: Derive complementary-slackness potentials
                from the warm flow when no scaled potentials are available.
                With this disabled and no usable potentials, the solver falls
                back to zero potentials -- the "naive handoff" the paper's
                Figure 13 compares against.
            warm_scaled_potentials: Potentials in the scaled units of a
                previous cost-scaling run (takes precedence; avoids rounding
                losses across runs).
            warm_scale: The cost scale those potentials were computed under.
        """
        start = time.perf_counter()
        self.last_degradation = None
        for arc in network.arcs():
            arc.flow = min(warm_flows.get(arc.key(), 0), arc.capacity)
        self._check_abort()
        residual = ResidualNetwork(
            network, use_existing_flow=True, abort_check=self.abort_check
        )
        stats = SolverStatistics(warm_start=True)

        scale = self._cost_scale(residual)
        if warm_scaled_potentials is not None and warm_scale:
            # Choose the new scale as an integer multiple of the previous one
            # so the stored potentials transfer exactly (no rounding, hence
            # no spurious epsilon-optimality violations).
            multiplier = max(1, -(-scale // warm_scale))  # ceil division
            scale = warm_scale * multiplier
        residual.scale_costs(scale)

        have_good_potentials = True
        refine_proved_optimal = False
        refine_failed = False
        if warm_scaled_potentials is not None and warm_scale:
            multiplier = scale // warm_scale
            for node_id, value in warm_scaled_potentials.items():
                if node_id in residual.index:
                    residual.potential[residual.index[node_id]] = value * multiplier
        elif apply_price_refine:
            if self._handoff_refine(residual, stats, warm_potentials):
                stats.potential_updates += 1
                refine_proved_optimal = True
            else:
                # The handoff refine is deterministic: retrying it below
                # with the same potentials and seeds would fail identically,
                # so remember the outcome and go straight to repair (with
                # the handed-off potentials loaded) or, without any, to the
                # naive from-scratch path.
                refine_failed = True
                if warm_potentials is not None:
                    residual.load_potentials(warm_potentials)
                    for i in range(residual.num_nodes):
                        residual.potential[i] *= scale
                else:
                    have_good_potentials = False
        elif warm_potentials is not None:
            residual.load_potentials(warm_potentials)
            for i in range(residual.num_nodes):
                residual.potential[i] *= scale
        else:
            # Naive handoff: no usable potentials.  This is the slow path
            # Figure 13 compares price refine against.
            have_good_potentials = False

        if have_good_potentials:
            # With (near-)optimal potentials the changes are repaired
            # directly, without re-running the scaling ladder: residual arcs
            # whose reduced cost turned negative (cost changes) are
            # saturated, then every remaining excess (new tasks, surpluses
            # and deficits left by removals and the saturation step) is
            # routed along shortest reduced-cost paths.  Both steps preserve
            # reduced-cost optimality, so the repaired feasible flow is
            # optimal, and the work done is proportional to the size of the
            # change batch rather than to the graph.  A completely unchanged
            # problem needs no repair at all.
            if refine_proved_optimal:
                # The refine just certified 0-optimality; rescanning every
                # arc would only recompute (0, []).
                violation, violated = 0, []
            else:
                violation, violated = self._scan_violations(residual)
            excess = residual.total_excess()
            if (
                0 < violation <= scale
                and excess == 0
                and not refine_failed
                and self._price_refine(residual, stats, seed_arcs=violated)
            ):
                # The warm flow is still feasible and the violation is small
                # enough to be a rounding artifact: the previous run's
                # potentials were merely 1-optimal (in scaled units) rather
                # than exact.  Price refine re-derives potentials that prove
                # the flow optimal, so no repair work is needed (Section 6.2
                # applies the same heuristic to relaxation hand-offs).
                # Larger violations mean the graph genuinely changed (the
                # flow is likely non-optimal, price refine would grind to a
                # negative cycle), so those go straight to the repair path.
                stats.potential_updates += 1
                violation = 0
            if violation > 0 or excess > 0:
                self._repair_warm_solution(residual, stats)
                stats.epsilon_phases += 1
        else:
            # Naive handoff: no usable potentials, so behave like Quincy's
            # from-scratch solver except for reusing the warm flow -- route
            # all supply ignoring costs, then run the full scaling ladder
            # starting from the worst observed violation.
            self._establish_feasible_flow(residual, stats)
            violation = self._max_violation(residual)
            truncated = False
            if violation > 0:
                truncated = self._run_phases(residual, max(1, violation), stats)
            if not truncated:
                self._polish(residual, stats)
            if truncated:
                return self._finish(
                    network,
                    residual,
                    stats,
                    start,
                    algorithm="incremental_cost_scaling",
                    optimal=False,
                )

        return self._finish(
            network, residual, stats, start, algorithm="incremental_cost_scaling"
        )

    def solve_delta(
        self,
        residual: ResidualNetwork,
        network: FlowNetwork,
        changes: ChangeBatch,
    ) -> SolverResult:
        """Re-optimize a persistent residual network after a change batch.

        This is the paper's incremental path proper: no residual network is
        constructed.  ``residual`` is the structure retained by the previous
        run (scaled costs, exact potentials proving the previous optimum,
        the previous flow loaded); ``changes`` transforms the previous flow
        network into ``network``.  The batch is patched in place and only
        the patched arcs are checked for optimality violations.

        Raises:
            ValueError / KeyError: when the batch does not apply to the
                residual (caller should fall back to a rebuild).
            InfeasibleProblemError: when the updated network admits no
                feasible routing (the residual is garbage afterwards and
                must be discarded).
        """
        start = time.perf_counter()
        self.last_degradation = None
        stats = SolverStatistics(warm_start=True)
        dirty = residual.apply_changes(changes)
        stats.arcs_patched = residual.last_arcs_patched
        stats.nodes_touched = residual.last_nodes_touched
        residual.revision = (
            changes.target_revision
            if changes.target_revision is not None
            else getattr(network, "revision", None)
        )

        # Only dirty arcs can have acquired a negative reduced cost: every
        # untouched arc kept its cost, capacity, and endpoint potentials,
        # and the retained residual was 0-optimal.  Saturate the violating
        # dirty arcs, then route every excess along shortest reduced-cost
        # paths (which keeps reduced costs non-negative everywhere).
        repaired = False
        for position in dirty:
            for arc_index in (2 * position, 2 * position + 1):
                if residual.arc_residual[arc_index] <= 0:
                    continue
                if residual.reduced_cost(arc_index) < 0:
                    residual.push(arc_index, residual.arc_residual[arc_index])
                    stats.pushes += 1
                    repaired = True
        if any(e > 0 for e in residual.excess):
            self._route_excesses(residual, stats)
            repaired = True
        if repaired:
            stats.epsilon_phases += 1

        return self._finish(
            network,
            residual,
            stats,
            start,
            algorithm="incremental_cost_scaling",
        )

    # ------------------------------------------------------------------ #
    # Warm-start repair
    # ------------------------------------------------------------------ #
    def _repair_warm_solution(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Restore feasibility and optimality of a warm-started solution.

        The warm flow is feasible for the *previous* problem and the warm
        potentials certify its optimality there.  Graph changes leave two
        kinds of damage: residual arcs whose reduced cost is now negative
        (cost decreases, capacity increases) and node excesses/deficits (new
        or removed tasks, capacity decreases clamping flow).  Saturating the
        violating arcs restores reduced-cost optimality at the price of new
        excesses; routing every excess to a deficit along shortest
        reduced-cost paths (Dijkstra with potential updates, exactly as in
        successive shortest path) then restores feasibility while keeping
        reduced cost optimality, so the result is an optimal flow.
        """
        # The saturation below writes arc_residual directly.
        residual.invalidate_flow_journal()
        arc_residual = residual.arc_residual
        arc_cost = residual.arc_cost
        arc_from = residual.arc_from
        arc_to = residual.arc_to
        potential = residual.potential
        excess = residual.excess
        for arc_index in range(len(arc_residual)):
            r = arc_residual[arc_index]
            if r <= 0:
                continue
            u = arc_from[arc_index]
            v = arc_to[arc_index]
            if arc_cost[arc_index] - potential[u] + potential[v] < 0:
                arc_residual[arc_index] = 0
                arc_residual[arc_index ^ 1] += r
                excess[u] -= r
                excess[v] += r
                stats.pushes += 1
        self._route_excesses(residual, stats)

    def _route_excesses(self, residual: ResidualNetwork, stats: SolverStatistics) -> None:
        """Route every positive excess to a deficit along cheapest paths."""
        sources = residual.source_indices()
        while sources:
            source = sources[-1]
            if residual.excess[source] <= 0:
                sources.pop()
                continue
            self._check_abort()
            routed = self._augment_along_reduced_costs(residual, source, stats)
            if routed == 0:
                raise InfeasibleProblemError(
                    "warm-start repair could not route all supply to a "
                    "deficit node; the updated flow network is infeasible"
                )

    def _augment_along_reduced_costs(
        self, residual: ResidualNetwork, source: int, stats: SolverStatistics
    ) -> int:
        """Send flow from ``source`` to the nearest deficit by reduced cost.

        Returns the amount routed (zero when no deficit is reachable).
        Potentials are updated with the Dijkstra distances so reduced costs
        stay non-negative for subsequent augmentations.
        """
        n = residual.num_nodes
        adjacency = residual.adjacency
        arc_residual = residual.arc_residual
        arc_cost = residual.arc_cost
        arc_from = residual.arc_from
        arc_to = residual.arc_to
        potential = residual.potential
        excess = residual.excess

        infinity = float("inf")
        dist: List[float] = [infinity] * n
        pred_arc: List[Optional[int]] = [None] * n
        visited = bytearray(n)
        dist[source] = 0
        heap: List[Tuple[float, int]] = [(0, source)]
        target = -1
        iterations = 0
        arcs_scanned = 0

        while heap:
            d, u = heappop(heap)
            if visited[u]:
                continue
            visited[u] = 1
            iterations += 1
            if excess[u] < 0:
                target = u
                break
            pot_u = potential[u]
            for arc_index in adjacency[u]:
                if arc_residual[arc_index] <= 0:
                    continue
                v = arc_to[arc_index]
                if visited[v]:
                    continue
                arcs_scanned += 1
                new_dist = d + arc_cost[arc_index] - pot_u + potential[v]
                if new_dist < dist[v]:
                    dist[v] = new_dist
                    pred_arc[v] = arc_index
                    heappush(heap, (new_dist, v))
        stats.iterations += iterations
        stats.arcs_scanned += arcs_scanned

        if target < 0:
            return 0

        target_dist = dist[target]
        for i in range(n):
            di = dist[i]
            potential[i] -= int(di if di < target_dist else target_dist)
        stats.potential_updates += 1

        amount = min(excess[source], -excess[target])
        node = target
        while node != source:
            arc_index = pred_arc[node]
            r = arc_residual[arc_index]
            if r < amount:
                amount = r
            node = arc_from[arc_index]

        node = target
        while node != source:
            arc_index = pred_arc[node]
            residual.push(arc_index, amount)
            node = arc_from[arc_index]
        stats.augmentations += 1
        return amount

    # ------------------------------------------------------------------ #
    # Result assembly and state retention
    # ------------------------------------------------------------------ #
    def _finish(
        self,
        network: FlowNetwork,
        residual: ResidualNetwork,
        stats: SolverStatistics,
        start: float,
        algorithm: Optional[str] = None,
        optimal: bool = True,
    ) -> SolverResult:
        """Record warm-start state, write flow back, and build the result.

        When the solver polishes potentials, the residual is retained in
        scaled units (for a later :meth:`solve_delta`) and exposed as
        :attr:`last_residual`.  Without polishing, solves that went through
        the epsilon ladder leave the residual only 1-optimal in scaled
        units, which would violate :meth:`solve_delta`'s 0-optimality
        precondition -- so nothing is retained.  Result costs and
        potentials are converted to original units on the way out.
        """
        scale = residual.cost_scale
        self._record_scaled_state(residual, scale)
        if self.polish_potentials and self.max_phases is None and optimal:
            self.last_residual = residual
        else:
            self.last_residual = None
        residual.write_flow_back(network)
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm=algorithm or self.name,
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=self._unscaled_potentials(residual, scale),
            runtime_seconds=runtime,
            statistics=stats,
            optimal=optimal,
        )

    def _polish(self, residual: ResidualNetwork, stats: SolverStatistics) -> None:
        """Restore exact (0-optimal) potentials after the epsilon ladder.

        The ladder stops at epsilon = 1 in scaled units, which proves
        optimality of the *flow* but leaves residual arcs with reduced cost
        -1.  Delta solving requires strict 0-optimality (its Dijkstra-based
        repair assumes non-negative reduced costs on untouched arcs), so a
        persistent solver runs one price refine to re-derive exact
        potentials.  Skipped for truncated (``max_phases``) runs, whose
        flow is not optimal.
        """
        if not self.polish_potentials or self.max_phases is not None:
            return
        if self._price_refine(residual, stats):
            stats.potential_updates += 1

    # ------------------------------------------------------------------ #
    # Price refine dispatch
    # ------------------------------------------------------------------ #
    def _resolve_refine_variant(
        self,
        residual: ResidualNetwork,
        seed_arcs: Optional[Sequence[int]],
    ) -> str:
        """Pick the price-refine variant for one call (``auto`` resolution).

        A bounded violation set favours the Dijkstra variant: its work is
        proportional to the violated region, while the SPFA sweep relabels
        the whole network regardless.  The choice is guarded by the
        violation count relative to the node count
        (:data:`AUTO_SEED_MAX_VIOLATION_FLOOR` /
        :data:`AUTO_SEED_NODE_DIVISOR`) -- widely violated potentials are
        globally stale and the canonical sweep recomputes from scratch
        faster.  Unseeded full refines always take the sweep.
        """
        mode = self.price_refine
        if mode != "auto":
            return mode
        if seed_arcs is not None and len(seed_arcs) <= max(
            AUTO_SEED_MAX_VIOLATION_FLOOR,
            residual.num_nodes // AUTO_SEED_NODE_DIVISOR,
        ):
            return "dijkstra"
        return "spfa"

    def _price_refine(
        self,
        residual: ResidualNetwork,
        stats: SolverStatistics,
        seed_arcs: Optional[Sequence[int]] = None,
    ) -> bool:
        """Run the configured price-refine variant, timing it into ``stats``.

        ``seed_arcs`` (residual arc indices covering every possible
        violation) arms the incremental mode; the SPFA variant ignores it
        and recomputes canonical potentials from scratch, so both variants
        stay interchangeable at every call site.
        """
        variant = self._resolve_refine_variant(residual, seed_arcs)
        max_pops = None
        if seed_arcs is not None:
            # Both seeded call sites treat False as "run the optimality
            # repair instead", which is correct for any violation, so the
            # seeded refine may give up long before cycle detection proper.
            max_pops = max(
                SEEDED_REFINE_POP_BUDGET_FLOOR,
                SEEDED_REFINE_POP_BUDGET_FACTOR * len(seed_arcs),
            )
        start = time.perf_counter()
        try:
            if variant == "spfa":
                return price_refine_spfa(residual, self.abort_check, stats=stats)
            return price_refine_dijkstra(
                residual,
                self.abort_check,
                seed_arcs=seed_arcs,
                stats=stats,
                max_pops=max_pops,
            )
        finally:
            stats.price_refine_seconds += time.perf_counter() - start

    def _handoff_refine(
        self,
        residual: ResidualNetwork,
        stats: SolverStatistics,
        warm_potentials: Optional[Dict[int, int]],
    ) -> bool:
        """Derive complementary-slackness potentials for a warm handoff.

        The SPFA variant recomputes canonical potentials from scratch,
        ignoring any handed-off ones (the pre-Dijkstra behaviour).  The
        Dijkstra variant instead *loads* the previous round's potentials
        when the caller handed some over -- they are exact under scaling,
        so only arcs the inter-round graph changes violated seed the
        repair, and the refine's work is proportional to the drift instead
        of the network (the incremental refine mode).  On failure
        (negative residual cycle: the warm flow is no longer optimal) the
        potentials are left as loaded; the caller's fallback chain loads
        the same values and proceeds to the repair path.
        """
        if warm_potentials is not None and self.price_refine != "spfa":
            # The load + violation scan is part of deriving the potentials,
            # so it is charged to the price-refine attribution as well.
            start = time.perf_counter()
            residual.load_potentials(warm_potentials)
            potential = residual.potential
            scale = residual.cost_scale
            for i in range(residual.num_nodes):
                potential[i] *= scale
            _, violated = self._scan_violations(residual)
            stats.price_refine_seconds += time.perf_counter() - start
            if not violated:
                return True
            return self._price_refine(residual, stats, seed_arcs=violated)
        return self._price_refine(residual, stats)

    def _record_scaled_state(self, residual: ResidualNetwork, scale: int) -> None:
        """Remember the exact scaled potentials for the next warm start."""
        self.last_scaled_potentials = {
            nid: residual.potential[i]
            for nid, i in residual.index.items()
            if residual.node_alive[i]
        }
        self.last_scale = scale

    # ------------------------------------------------------------------ #
    # Cost scaling internals
    # ------------------------------------------------------------------ #
    def _cost_scale(self, residual: ResidualNetwork) -> int:
        """Return the integer factor by which costs are multiplied.

        Scaling costs by ``n + 1`` makes 1-optimality in scaled units imply
        ``1/(n+1)``-optimality in original units, which guarantees optimality
        for integer costs.
        """
        return residual.num_nodes + 1

    def _unscaled_potentials(
        self, residual: ResidualNetwork, scale: int
    ) -> Dict[int, int]:
        return {
            nid: residual.potential[i] // scale
            for nid, i in residual.index.items()
            if residual.node_alive[i]
        }

    def _max_violation(self, residual: ResidualNetwork) -> int:
        """Return the magnitude of the worst negative reduced cost on a
        residual arc with remaining capacity (zero when epsilon-optimal for
        epsilon = 0)."""
        return self._scan_violations(residual)[0]

    def _scan_violations(
        self, residual: ResidualNetwork
    ) -> Tuple[int, List[int]]:
        """Scan for 0-optimality violations under the current potentials.

        Returns ``(worst, violated)`` from
        :meth:`~repro.solvers.residual.ResidualNetwork.violated_arcs`; the
        index list doubles as the seed set of the incremental price refine
        -- by construction it covers every violated arc, which is exactly
        the precondition the seeded repair needs.
        """
        return residual.violated_arcs()

    def _check_abort(self) -> None:
        """Raise :class:`SolveAborted` when the cancellation hook fires."""
        check = self.abort_check
        if check is not None and check():
            raise SolveAborted("cost scaling run cancelled by abort check")

    def _run_phases(
        self, residual: ResidualNetwork, initial_epsilon: int, stats: SolverStatistics
    ) -> bool:
        """Run scaling phases from ``initial_epsilon`` down to 1.

        Returns True when :attr:`deadline_check` fired and the ladder was
        cut short at a coarser epsilon.  At least one phase always runs, so
        a deadline-truncated result is still a feasible, epsilon-optimal
        flow; the truncation epsilon is validated inline with
        :func:`~repro.flow.validation.check_residual_epsilon_optimality`
        and recorded in :attr:`last_degradation`.
        """
        epsilon = initial_epsilon
        phases = 0
        deadline = self.deadline_check
        while True:
            self._check_abort()
            self._refine(residual, epsilon, stats)
            phases += 1
            stats.epsilon_phases += 1
            if epsilon <= 1:
                break
            if self.max_phases is not None and phases >= self.max_phases:
                break
            if deadline is not None and deadline():
                stats.deadline_hits += 1
                stats.degraded_round = 1
                problems = check_residual_epsilon_optimality(residual, epsilon)
                self.last_degradation = {
                    "epsilon": epsilon,
                    "validated": not problems,
                    "problems": problems,
                }
                return True
            epsilon = max(1, epsilon // self.alpha)
        return False

    def _establish_feasible_flow(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Route all positive excess to deficit nodes, ignoring costs.

        Uses breadth-first augmentation; this corresponds to the max-flow
        computation that precedes cost optimization.  Raises
        :class:`InfeasibleProblemError` when supply cannot be routed.
        """
        for source in range(residual.num_nodes):
            while residual.excess[source] > 0:
                self._check_abort()
                path = self._bfs_path_to_deficit(residual, source, stats)
                if path is None:
                    raise InfeasibleProblemError(
                        "cannot route all supply to the sink; scheduling graphs "
                        "must always provide unscheduled aggregator capacity"
                    )
                target = residual.arc_to[path[-1]]
                amount = min(residual.excess[source], -residual.excess[target])
                amount = min(
                    amount, min(residual.arc_residual[arc_index] for arc_index in path)
                )
                for arc_index in path:
                    residual.push(arc_index, amount)
                stats.augmentations += 1

    def _bfs_path_to_deficit(
        self, residual: ResidualNetwork, source: int, stats: SolverStatistics
    ) -> Optional[List[int]]:
        arc_residual = residual.arc_residual
        arc_to = residual.arc_to
        adjacency = residual.adjacency
        excess = residual.excess

        pred_arc: List[Optional[int]] = [None] * residual.num_nodes
        visited = bytearray(residual.num_nodes)
        visited[source] = 1
        queue = deque([source])
        target = -1
        arcs_scanned = 0
        while queue:
            u = queue.popleft()
            if excess[u] < 0:
                target = u
                break
            for arc_index in adjacency[u]:
                if arc_residual[arc_index] <= 0:
                    continue
                v = arc_to[arc_index]
                arcs_scanned += 1
                if not visited[v]:
                    visited[v] = 1
                    pred_arc[v] = arc_index
                    queue.append(v)
        stats.arcs_scanned += arcs_scanned
        if target < 0:
            return None
        path: List[int] = []
        node = target
        while node != source:
            arc_index = pred_arc[node]
            path.append(arc_index)
            node = residual.arc_from[arc_index]
        path.reverse()
        return path

    def _refine(
        self, residual: ResidualNetwork, epsilon: int, stats: SolverStatistics
    ) -> None:
        """Re-establish epsilon-optimality of the current feasible flow.

        This is the hot loop of the solver: saturate every residual arc
        with negative reduced cost, then discharge active (positive-excess)
        nodes with push/relabel.  The discharge resumes each node's
        adjacency scan at its current-arc cursor and computes reduced costs
        inline from local aliases; see the module docstring for why the
        cursor is only reset on relabel.
        """
        # The loops below write arc_residual directly (inlined pushes), so
        # any dirty-flow tracking on the residual is no longer sound.
        residual.invalidate_flow_journal()
        arc_residual = residual.arc_residual
        arc_cost = residual.arc_cost
        arc_from = residual.arc_from
        arc_to = residual.arc_to
        potential = residual.potential
        excess = residual.excess
        adjacency = residual.adjacency
        num_nodes = residual.num_nodes

        # Saturate every residual arc with negative reduced cost.  This makes
        # the pseudo-flow 0-optimal for the current potentials but creates
        # excesses and deficits that the push/relabel loop drains.
        pushes = 0
        for arc_index in range(len(arc_residual)):
            r = arc_residual[arc_index]
            if r <= 0:
                continue
            u = arc_from[arc_index]
            v = arc_to[arc_index]
            if arc_cost[arc_index] - potential[u] + potential[v] < 0:
                arc_residual[arc_index] = 0
                arc_residual[arc_index ^ 1] += r
                excess[u] -= r
                excess[v] += r
                pushes += 1

        residual.reset_current_arcs()
        current_arc = residual.current_arc

        active = deque(i for i in range(num_nodes) if excess[i] > 0)
        in_queue = bytearray(num_nodes)
        for i in active:
            in_queue[i] = 1

        # Generous potential-increase bound used purely as an infeasibility
        # safety net; feasible scheduling graphs never get close to it.
        max_increase = 4 * (num_nodes + 2) * (epsilon + residual.max_cost() + 1)
        bound = [p + max_increase for p in potential]

        relabels = 0
        arcs_scanned = 0
        abort_check = self.abort_check
        ops_until_check = ABORT_CHECK_INTERVAL
        while active:
            if abort_check is not None:
                ops_until_check -= 1
                if ops_until_check <= 0:
                    ops_until_check = ABORT_CHECK_INTERVAL
                    if abort_check():
                        raise SolveAborted(
                            "cost scaling refine cancelled by abort check"
                        )
            u = active.popleft()
            in_queue[u] = 0
            e = excess[u]
            if e <= 0:
                continue
            adj = adjacency[u]
            degree = len(adj)
            i = current_arc[u]
            pot_u = potential[u]
            while True:
                if i >= degree:
                    # Relabel: raise u's potential just enough to create an
                    # admissible arc, then rescan from the front (the only
                    # event that can make previously scanned arcs
                    # admissible again).
                    best = None
                    for a in adj:
                        if arc_residual[a] > 0:
                            candidate = arc_cost[a] + potential[arc_to[a]]
                            if best is None or candidate < best:
                                best = candidate
                    arcs_scanned += degree
                    if best is None:
                        raise InfeasibleProblemError(
                            f"node {u} has excess but no outgoing residual arcs"
                        )
                    pot_u = best + epsilon
                    potential[u] = pot_u
                    relabels += 1
                    if pot_u > bound[u]:
                        raise InfeasibleProblemError(
                            "potential of a node grew without bound during "
                            "refine; the flow network admits no feasible routing"
                        )
                    i = 0
                    continue
                a = adj[i]
                arcs_scanned += 1
                r = arc_residual[a]
                if r > 0:
                    v = arc_to[a]
                    if arc_cost[a] - pot_u + potential[v] < 0:
                        amount = e if e < r else r
                        arc_residual[a] = r - amount
                        arc_residual[a ^ 1] += amount
                        e -= amount
                        ev = excess[v] + amount
                        excess[v] = ev
                        pushes += 1
                        if ev > 0 and not in_queue[v]:
                            active.append(v)
                            in_queue[v] = 1
                        if e == 0:
                            break
                        i += 1
                        continue
                i += 1
            excess[u] = 0
            current_arc[u] = i

        stats.pushes += pushes
        stats.relabels += relabels
        stats.arcs_scanned += arcs_scanned
