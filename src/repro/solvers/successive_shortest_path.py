"""Successive shortest path MCMF algorithm (Section 4 of the paper).

The algorithm maintains reduced-cost optimality at every step and works
towards feasibility: it repeatedly selects a node with positive excess and
augments flow along a shortest path (by reduced cost) to a node with
deficit.  Shortest paths are computed with Dijkstra over reduced costs,
which stay non-negative because the potentials are updated with the
computed distances after every augmentation.

Despite having the best worst-case complexity for scheduling graphs
(Table 1), the paper finds it performs poorly in practice (Figure 7)
because it re-runs a full shortest-path search per unit of unrouted supply.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional

from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    InfeasibleProblemError,
    Solver,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.residual import ResidualNetwork

_INF = float("inf")


class SuccessiveShortestPathSolver(Solver):
    """Successive shortest path algorithm with Dijkstra and potentials."""

    name = "successive_shortest_path"

    def solve(self, network: FlowNetwork) -> SolverResult:
        """Compute a min-cost max-flow on the network."""
        start = time.perf_counter()
        residual = ResidualNetwork(network)
        stats = SolverStatistics()

        self._initialize_potentials(residual, stats)

        sources = [i for i in residual.source_indices()]
        while sources:
            source = sources[-1]
            if residual.excess[source] <= 0:
                sources.pop()
                continue
            routed = self._augment_from(residual, source, stats)
            if routed == 0:
                raise InfeasibleProblemError(
                    "no augmenting path from a node with remaining supply; "
                    "the scheduling graph must route every task (check "
                    "unscheduled aggregator arcs)"
                )

        residual.write_flow_back(network)
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm=self.name,
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=residual.export_potentials(),
            runtime_seconds=runtime,
            statistics=stats,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _initialize_potentials(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Make all residual reduced costs non-negative.

        Scheduling graphs only use non-negative costs, in which case zero
        potentials already satisfy the invariant.  For generality (tests use
        arbitrary graphs) a Bellman-Ford pass from a virtual source computes
        valid initial potentials when negative costs are present.
        """
        if all(c >= 0 for c in residual.arc_cost):
            return
        n = residual.num_nodes
        dist = [0] * n
        for _ in range(n - 1):
            changed = False
            for arc_index in range(residual.num_arcs):
                if residual.arc_residual[arc_index] <= 0:
                    continue
                u = residual.arc_from[arc_index]
                v = residual.arc_to[arc_index]
                cost = residual.arc_cost[arc_index]
                if dist[u] + cost < dist[v]:
                    dist[v] = dist[u] + cost
                    changed = True
            stats.arcs_scanned += residual.num_arcs
            if not changed:
                break
        for i in range(n):
            residual.potential[i] = -dist[i]
        stats.potential_updates += 1

    def _augment_from(
        self, residual: ResidualNetwork, source: int, stats: SolverStatistics
    ) -> int:
        """Send flow from ``source`` to the nearest deficit node.

        Returns the amount of flow routed (zero when no deficit node is
        reachable, which means the problem is infeasible).
        """
        n = residual.num_nodes
        dist: List[float] = [_INF] * n
        pred_arc: List[Optional[int]] = [None] * n
        visited = [False] * n
        dist[source] = 0
        heap: List = [(0, source)]
        target = -1

        while heap:
            d, u = heapq.heappop(heap)
            if visited[u]:
                continue
            visited[u] = True
            stats.iterations += 1
            if residual.excess[u] < 0:
                target = u
                break
            for arc_index in residual.adjacency[u]:
                if residual.arc_residual[arc_index] <= 0:
                    continue
                v = residual.arc_to[arc_index]
                if visited[v]:
                    continue
                stats.arcs_scanned += 1
                rc = residual.reduced_cost(arc_index)
                new_dist = d + rc
                if new_dist < dist[v]:
                    dist[v] = new_dist
                    pred_arc[v] = arc_index
                    heapq.heappush(heap, (new_dist, v))

        if target < 0:
            return 0

        # Update potentials with the computed distances so reduced costs on
        # the augmenting path become zero and stay non-negative elsewhere.
        # Distances are capped at the target's distance so that nodes whose
        # labels were not finalized cannot introduce negative reduced costs.
        target_dist = dist[target]
        for i in range(n):
            residual.potential[i] -= int(min(dist[i], target_dist))
        stats.potential_updates += 1

        # Bottleneck along the path.
        amount = min(residual.excess[source], -residual.excess[target])
        node = target
        while node != source:
            arc_index = pred_arc[node]
            amount = min(amount, residual.arc_residual[arc_index])
            node = residual.arc_from[arc_index]

        node = target
        path_arcs: List[int] = []
        while node != source:
            arc_index = pred_arc[node]
            path_arcs.append(arc_index)
            node = residual.arc_from[arc_index]
        for arc_index in reversed(path_arcs):
            residual.push(arc_index, amount)
        stats.augmentations += 1
        return amount
