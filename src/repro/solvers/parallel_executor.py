"""True parallel speculative dual-algorithm execution (Section 6.1).

:class:`ParallelDualExecutor` is a drop-in
:class:`~repro.solvers.base.Solver` that races the paper's two algorithms
for real instead of modeling the race:

* **Relaxation** runs in a *persistent worker subprocess*, spawned once and
  fed one request per scheduling round over a pipe.  The network crosses
  the process boundary in the compact DIMACS text forms
  (:mod:`repro.flow.dimacs`), never as a pickled object graph -- and, like
  the real Firmament's out-of-process solver, usually only as a *delta*:
  the worker keeps a persistent shadow network (plus the relaxation
  solver's own persistent residual patched from the same changes), and the
  parent keeps a :class:`RevisionChainCache` of every revision-chained
  change batch it has seen.  A round whose batch chains directly onto the
  worker's revision ships as :func:`~repro.flow.dimacs.write_incremental`
  text (O(|changes|)); a round where the chain *broke* -- solo-solved
  rounds, skipped rounds, any gap -- ships a **resync payload**: the
  recorded batches composed from the worker's last known revision to the
  current one, still O(|missed changes|).  Full ``write_dimacs`` snapshots
  (O(graph), plus an O(graph) reparse and residual rebuild in the worker)
  remain only for true cold starts, worker respawns, and worker errors.
* **Incremental cost scaling** runs in the parent process, patching its
  persistent residual network from the round's
  :class:`~repro.flow.changes.ChangeBatch` exactly as in the sequential
  executor.

First finisher wins:

* If the parent's cost scaling run completes while the worker is still
  solving, cost scaling wins and the worker's round is **abandoned** -- the
  parent returns immediately and discards the worker's stale response
  whenever it eventually drains from the pipe.
* While cost scaling runs, it polls the pipe through the cooperative
  :attr:`~repro.solvers.cost_scaling.CostScalingSolver.abort_check` hook;
  when the worker's solution arrives first, the parent-side run is
  **cancelled** mid-flight (:class:`~repro.solvers.base.SolveAborted`) and
  relaxation wins.  The winning relaxation solution then seeds the
  incremental solver's warm state, as in the sequential executor.

Speculation is adaptive: when the incremental solver holds a
revision-chained persistent residual and the round's change batch is small
(:data:`DELTA_SOLO_THRESHOLD`), the parent solves solo -- a bounded
O(|changes|) repair cannot lose to a from-scratch relaxation run, so racing
would only waste a core (and on oversubscribed hosts would actively slow
the guaranteed winner).  Under ``executor_policy="auto"`` the shared
:class:`~repro.solvers.dual_executor.RaceCostModel` additionally skips the
predictable loser on the remaining rounds (solo relaxation ships the round
to the worker and waits; solo cost scaling leaves the worker idle and the
revision-chain cache covers the gap).  The full race runs on exactly the
rounds where Section 6.1's insurance matters: cold starts, post-seed
rebuilds, oversized batches, and whenever the cost model is unsure.

When multiprocessing is unavailable (spawn failure, broken pipe, platforms
without it) the executor transparently falls back to the sequential
:class:`~repro.solvers.dual_executor.DualAlgorithmExecutor`, sharing the
same component solver instances so warm state carries over.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.flow.changes import ChangeBatch, GraphChange, apply_changes
from repro.flow.dimacs import (
    read_dimacs,
    read_incremental,
    write_dimacs,
    write_incremental,
)
from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    RoundDeadline,
    RoundDeadlineExceeded,
    SolveAborted,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.dual_executor import (
    DualAlgorithmExecutor,
    DualExecutionResult,
    RaceCostModel,
    SpeculativeDualExecutor,
)
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.relaxation import RelaxationSolver
from repro.solvers.worker_health import WorkerCircuitBreaker

#: The parent only ships a round when the worker has answered every
#: previous request.  Besides keeping a slow worker from falling ever
#: further behind on long-abandoned rounds, this is a deadlock guard: an
#: answered-up worker is provably parked in ``recv``, so the parent's
#: blocking ``send`` always finds a reader.  Shipping while an abandoned
#: round is still in flight could wedge both processes on large graphs --
#: parent blocked writing a request bigger than the pipe buffer, worker
#: blocked writing the abandoned round's result, neither reading.

#: Change-batch size up to which a *delta-armed* round skips speculation.
#: When the incremental solver holds a revision-chained persistent residual,
#: its round costs O(|changes| + repair) -- for batches this small that is
#: far below any from-scratch relaxation run, so racing the worker cannot
#: change the winner; it only burns a second core (or, on shared cores,
#: steals scheduling quanta from the guaranteed winner).  Rebuild rounds --
#: first round, post-seed rounds, oversized batches -- always race, which
#: is where Section 6.1's tail-latency insurance actually pays.
DELTA_SOLO_THRESHOLD = 1024

#: How long the parent waits for the worker after the parent-side solver
#: *failed* (e.g. infeasibility) before re-raising the parent's error.
LOSER_GRACE_SECONDS = 30.0

#: How many revision-chained change batches the parent remembers for
#: worker resync.  At one batch per scheduling round this covers every
#: realistic solo/skip streak; a worker further behind than this gets a
#: full snapshot, exactly as before the cache existed.
BATCH_HISTORY_LIMIT = 256

#: A resync payload is worth shipping while it stays within this multiple
#: of the full snapshot's line count (one line per change vs one line per
#: node/arc): even at equal line counts the delta wins, because the worker
#: patches its shadow and persistent residual in place instead of reparsing
#: the whole document and rebuilding the residual from scratch -- roughly
#: half of a cold round's cost.  Beyond ~2x, a churn-heavy history (adds
#: later removed again) makes the composed payload pure overhead and the
#: full document takes over.
RESYNC_MAX_SNAPSHOT_MULTIPLE = 2


class RevisionChainCache:
    """Recent revision-chained change batches, for worker-side resync.

    The parent records every revision-chained batch it sees (including the
    rounds it solves solo, which is precisely when the worker's chain
    breaks) keyed by base revision.  :meth:`compose` then rebuilds the
    change sequence from the worker's last known revision to the current
    one by walking the recorded chain, so a broken chain resyncs with an
    O(|missed changes|) incremental payload instead of a full DIMACS
    snapshot and reparse.
    """

    def __init__(self, max_entries: int = BATCH_HISTORY_LIMIT) -> None:
        self.max_entries = max_entries
        #: base_revision -> (target_revision, changes)
        self._by_base: "OrderedDict[int, Tuple[int, List[GraphChange]]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._by_base)

    def record(self, batch: ChangeBatch) -> None:
        """Remember one revision-chained batch (unrevisioned ones are not
        resyncable and are ignored)."""
        base = batch.base_revision
        target = batch.target_revision
        if base is None or target is None or base == target:
            return
        self._by_base[base] = (target, list(batch))
        self._by_base.move_to_end(base)
        while len(self._by_base) > self.max_entries:
            self._by_base.popitem(last=False)

    def compose(
        self, from_revision: int, to_revision: int, max_changes: Optional[int] = None
    ) -> Optional[List[GraphChange]]:
        """Return the concatenated changes leading ``from_revision`` to
        ``to_revision``, or ``None`` when the recorded chain has a gap (or
        the composition exceeds ``max_changes``)."""
        if from_revision == to_revision:
            return []
        changes: List[GraphChange] = []
        revision = from_revision
        for _ in range(len(self._by_base)):
            entry = self._by_base.get(revision)
            if entry is None:
                return None
            target, recorded = entry
            changes.extend(recorded)
            if max_changes is not None and len(changes) > max_changes:
                return None
            if target == to_revision:
                return changes
            revision = target
        return None


def _relaxation_worker(conn, relaxation_kwargs: Dict[str, Any]) -> None:
    """Entry point of the persistent relaxation worker subprocess.

    Serves ``("full", round_id, dimacs_text, revision)`` and ``("delta",
    round_id, incremental_text, base_revision, target_revision)`` requests
    until a ``("shutdown",)`` message or pipe closure.  A full request
    replaces the worker's shadow network (and, through the solve, the
    relaxation solver's persistent residual); a delta request patches the
    shadow in place (O(|changes|)) and hands the same batch to the solver,
    whose persistent residual is patched rather than rebuilt -- so
    steady-state rounds pay neither a full-document parse nor an O(graph)
    residual construction.  Responses carry the round id so the parent can
    discard answers to rounds it has already abandoned, and a monotonic
    finish stamp so the parent can settle photo finishes (CLOCK_MONOTONIC
    is system-wide, hence comparable across processes).
    """
    relaxation_kwargs = dict(relaxation_kwargs)
    ascent_cap = relaxation_kwargs.pop("ascent_cap", None)
    solver = RelaxationSolver(**relaxation_kwargs)
    solver.ascent_cap = ascent_cap
    shadow = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "shutdown":
            break
        if message[0] == "chaos_delay":
            # Chaos harness: a one-way "sleep before serving the next
            # round" message, standing in for a slow/overloaded worker.
            time.sleep(message[1])
            continue
        kind, round_id, text = message[0], message[1], message[2]
        try:
            if kind == "full":
                shadow = read_dimacs(text)
                shadow.revision = message[3]
                solver.invalidate_residual()
                result = solver.solve(shadow)
            elif shadow is None:
                raise RuntimeError("delta request but no shadow network")
            else:
                base_revision, target_revision = message[3], message[4]
                parsed = read_incremental(text)
                apply_changes(shadow, parsed)
                shadow.revision = target_revision
                batch = ChangeBatch(
                    changes=parsed,
                    base_revision=base_revision,
                    target_revision=target_revision,
                )
                result = solver.solve(shadow, changes=batch)
            stats = result.statistics
            response = (
                "result",
                round_id,
                {
                    "total_cost": result.total_cost,
                    "flows": result.flows,
                    "potentials": result.potentials,
                    "runtime_seconds": result.runtime_seconds,
                    "iterations": stats.iterations,
                    "augmentations": stats.augmentations,
                    "relaxation_tree_nodes": stats.relaxation_tree_nodes,
                    "dual_ascents": stats.dual_ascents,
                    "arcs_patched": stats.arcs_patched,
                    "nodes_touched": stats.nodes_touched,
                    "finished_at": time.monotonic(),
                },
            )
        except Exception as error:
            # The shadow (and the solver's residual) may be half-patched;
            # drop both so the next full snapshot (which the parent sends
            # after seeing any error) starts clean.
            shadow = None
            solver.invalidate_residual()
            response = ("error", round_id, f"{type(error).__name__}: {error}")
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class _RoundRace:
    """Per-round view of the worker pipe for the parent-side race.

    The instance doubles as the cost-scaling abort check: calling it drains
    the pipe without blocking, discards responses to abandoned rounds, and
    returns True exactly when the *current* round's relaxation result has
    arrived (at which point the parent-side run should stop).
    """

    def __init__(self, conn, round_id: int, unanswered: set, on_error=None) -> None:
        self._conn = conn
        self._round_id = round_id
        self._unanswered = unanswered
        self._on_error = on_error
        self.payload: Optional[Dict[str, Any]] = None
        self.worker_error: Optional[str] = None
        self.pipe_broken = False

    def __call__(self) -> bool:
        if self.payload is not None:
            return True
        if self.pipe_broken:
            return False
        try:
            while self._conn.poll(0):
                kind, round_id, body = self._conn.recv()
                self._unanswered.discard(round_id)
                if kind == "error" and self._on_error is not None:
                    # Any error (current or abandoned round) means the
                    # worker dropped its shadow network; the parent must
                    # send a full snapshot next.
                    self._on_error()
                if round_id != self._round_id:
                    continue  # response to an abandoned round
                if kind == "result":
                    self.payload = body
                    return True
                self.worker_error = body
        except (EOFError, OSError):
            self.pipe_broken = True
        return False

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds for the current round's result."""
        deadline = time.monotonic() + timeout
        while not self():
            if self.pipe_broken or self.worker_error is not None:
                return False
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                self._conn.poll(min(remaining, 0.05))
            except (EOFError, OSError):
                self.pipe_broken = True
                return False
        return True


class ParallelDualExecutor(SpeculativeDualExecutor):
    """Race relaxation (worker subprocess) against incremental cost scaling
    (parent process); the first finisher's solution is installed."""

    name = "firmament_dual_parallel"

    @property
    def charges_wall_clock(self) -> bool:
        """Tell the scheduler to charge real measured wall clock per round.

        True while racing for real: the race is physical, so the modeled
        ``min()`` of the sequential executor would under-report.  On a
        round served by the sequential fallback the legs run back to back
        again, and charging wall clock would double-charge the loser --
        such rounds revert to the winner's modeled runtime.  The flag is
        per-round because the circuit breaker makes fallback temporary:
        a probe round that re-closes the breaker resumes real racing.
        """
        return not self._last_round_fallback

    def __init__(
        self,
        relaxation: Optional[RelaxationSolver] = None,
        incremental: Optional[IncrementalCostScalingSolver] = None,
        spawn_retries: int = 1,
        loser_grace_seconds: float = LOSER_GRACE_SECONDS,
        delta_solo_threshold: int = DELTA_SOLO_THRESHOLD,
        price_refine: str = "auto",
        executor_policy: str = "race",
        cost_model: Optional[RaceCostModel] = None,
        batch_history_limit: int = BATCH_HISTORY_LIMIT,
        breaker: Optional[WorkerCircuitBreaker] = None,
        round_deadline_seconds: Optional[float] = None,
        relaxation_ascent_cap: Optional[int] = None,
        chaos=None,
    ) -> None:
        """Create the executor.

        Args:
            relaxation: Relaxation configuration template; its settings (not
                the instance) are shipped to the worker subprocess.  The
                instance itself only solves when the executor has fallen
                back to sequential mode.
            incremental: Incremental cost scaling instance run in the parent.
            spawn_retries: Compatibility knob: when ``breaker`` is not
                given, maps to a default breaker whose ``failure_threshold``
                is ``1 + spawn_retries`` (the old one-shot semantics of "N
                respawns, then fallback" become "N+1 consecutive failures
                trip the breaker" -- but the breaker re-closes via probe
                rounds instead of staying down forever).
            loser_grace_seconds: How long to wait for the worker when the
                parent-side solver failed (infeasible problems race an
                error against an error).
            delta_solo_threshold: Skip speculation on delta-armed rounds
                whose change batch is at most this large (0 races every
                round); see :data:`DELTA_SOLO_THRESHOLD`.
            price_refine: Price-refine variant for the default parent-side
                incremental instance; ignored when ``incremental`` is
                passed explicitly.  Faster price refine shifts the
                solo-vs-race crossover: warm rebuilds the parent used to
                lose (racing pays) become rounds it wins solo.
            executor_policy: ``"race"`` (default) races every non-solo-delta
                round; ``"auto"`` lets the cost model skip the predictable
                loser (see :class:`~repro.solvers.dual_executor.
                RaceCostModel`).
            cost_model: Model instance driving ``"auto"``.
            batch_history_limit: How many revision-chained batches the
                resync cache retains (see :class:`RevisionChainCache`).
            breaker: Worker health state machine; defaults to a
                :class:`~repro.solvers.worker_health.WorkerCircuitBreaker`
                derived from ``spawn_retries``.
            round_deadline_seconds: Per-round wall-clock budget.  When set,
                the parent-side cost scaling leg truncates its epsilon
                ladder at the budget (still feasible and epsilon-optimal
                at the coarser epsilon) and both legs are hard-aborted one
                watchdog period later; a round where *no* leg produced a
                feasible flow raises :class:`RoundDeadlineExceeded` so the
                scheduler can degrade to the previous placements.
            relaxation_ascent_cap: Cap on dual ascents per relaxation run
                (shipped to the worker); the leg aborts past the cap.
            chaos: Optional :class:`repro.chaos.ChaosPolicy` injecting
                deterministic faults into the round pipeline (tests only;
                None keeps every hook a no-op).
        """
        super().__init__(
            relaxation=relaxation, incremental=incremental,
            price_refine=price_refine, executor_policy=executor_policy,
            cost_model=cost_model,
            round_deadline_seconds=round_deadline_seconds,
            relaxation_ascent_cap=relaxation_ascent_cap,
            chaos=chaos,
        )
        self._relaxation_kwargs = {
            "arc_prioritization": self.relaxation.arc_prioritization,
            "priority_probe_limit": self.relaxation.priority_probe_limit,
            "ascent_cap": self.relaxation.ascent_cap,
        }
        self.loser_grace_seconds = loser_grace_seconds
        self.delta_solo_threshold = delta_solo_threshold
        self._conn = None
        self._process = None
        self._round_id = 0
        self._unanswered: set = set()
        self.breaker = breaker or WorkerCircuitBreaker(
            failure_threshold=1 + max(0, spawn_retries)
        )
        self._fallback: Optional[DualAlgorithmExecutor] = None
        self._closed = False
        self._spawned_once = False
        self._last_round_fallback = False
        self._respawns_at_round_start = 0
        #: Worker subprocesses respawned after the first (observability).
        self.worker_respawns: int = 0
        #: Revision of the network content the worker's shadow copy mirrors
        #: (None forces the next request to be a full snapshot).
        self._worker_revision: Optional[int] = None
        #: Revision-chained batches seen recently, for worker resync.
        self._batch_history = RevisionChainCache(max_entries=batch_history_limit)
        #: Rounds served by the sequential fallback (observability).
        self.fallback_rounds: int = 0
        #: Rounds where the worker was skipped because it lagged too far.
        self.skipped_worker_rounds: int = 0
        #: Delta-armed rounds solved solo (speculation skipped as futile).
        self.solo_delta_rounds: int = 0
        #: Requests shipped as full DIMACS snapshots vs incremental deltas
        #: (``delta_payloads`` includes both directly-chained rounds and
        #: history-composed resyncs; the latter are additionally counted in
        #: ``resync_payloads``).
        self.full_payloads: int = 0
        self.delta_payloads: int = 0
        self.resync_payloads: int = 0

    @property
    def snapshot_ships(self) -> int:
        """Alias of :attr:`full_payloads` (full DIMACS snapshots shipped)."""
        return self.full_payloads

    @property
    def delta_ships(self) -> int:
        """Alias of :attr:`delta_payloads` (incremental payloads shipped)."""
        return self.delta_payloads

    def reset_counters(self) -> None:
        """Zero race and transport counters; worker and warm state persist."""
        super().reset_counters()
        self.fallback_rounds = 0
        self.skipped_worker_rounds = 0
        self.solo_delta_rounds = 0
        self.full_payloads = 0
        self.delta_payloads = 0
        self.resync_payloads = 0
        self.worker_respawns = 0

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_worker(self) -> bool:
        """Return True when a live worker exists (spawning one if needed).

        Respawn attempts are gated by the circuit breaker: after the first
        failure the retry is immediate, repeated failures back off
        exponentially, and past ``failure_threshold`` consecutive failures
        the breaker opens -- rounds run on the sequential fallback until a
        periodic probe round re-closes it.
        """
        if self._conn is not None:
            if self._process is None or self._process.is_alive():
                return True
            # The worker died between rounds: a process-level failure.
            self._note_worker_failure()
        if not self.breaker.allow_attempt():
            return False
        try:
            import multiprocessing

            context = multiprocessing.get_context()
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_relaxation_worker,
                args=(child_conn, self._relaxation_kwargs),
                daemon=True,
                name="repro-relaxation-worker",
            )
            process.start()
            child_conn.close()
            self._conn = parent_conn
            self._process = process
            self._unanswered.clear()
            self._worker_revision = None
            if self._spawned_once:
                self.worker_respawns += 1
            self._spawned_once = True
            return True
        except Exception:
            self.breaker.record_failure()
            return False

    def _ensure_fallback(self) -> None:
        """Lazily build the sequential fallback executor (shared solvers)."""
        if self._fallback is None:
            self._fallback = DualAlgorithmExecutor(
                relaxation=self.relaxation, incremental=self.incremental,
                executor_policy=self.executor_policy, cost_model=self.cost_model,
                round_deadline_seconds=self.round_deadline_seconds,
            )

    def _note_worker_error(self) -> None:
        """The worker dropped its shadow; ship a full snapshot next round."""
        self._worker_revision = None

    def _note_worker_failure(self) -> None:
        """Record a process-level failure (death, broken pipe, spawn fail)."""
        self.breaker.record_failure()
        self._teardown_worker()

    def _settle_worker_health(self, race: Optional["_RoundRace"]) -> None:
        """End-of-round health bookkeeping: exactly one breaker update.

        Mid-round sites that discover a broken pipe only tear the worker
        down; the failure itself is recorded here, once, so a single bad
        round cannot double-count against the breaker's threshold.
        """
        if race is None:
            return
        if race.pipe_broken:
            self._note_worker_failure()
        else:
            self.breaker.record_success()

    def _drain_pending(self) -> None:
        """Consume any queued responses to already-abandoned rounds."""
        conn = self._conn
        if conn is None:
            return
        try:
            while conn.poll(0):
                kind, round_id, _ = conn.recv()
                self._unanswered.discard(round_id)
                if kind == "error":
                    self._note_worker_error()
        except (EOFError, OSError):
            self._note_worker_failure()

    def _teardown_worker(self) -> None:
        conn, process = self._conn, self._process
        self._conn = None
        self._process = None
        self._unanswered.clear()
        self._worker_revision = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=2.0)

    def close(self) -> None:
        """Shut the worker down gracefully; idempotent and terminal.

        Safe to call twice and safe when the worker already died (the
        shutdown send is best-effort and join on a dead process is a
        no-op).  After close the executor refuses further rounds instead
        of hanging on a dead pipe -- see :meth:`solve_detailed`.
        """
        self._closed = True
        conn, process = self._conn, self._process
        if conn is not None:
            try:
                conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        if process is not None:
            process.join(timeout=2.0)
        self._teardown_worker()

    # ------------------------------------------------------------------ #
    # The race
    # ------------------------------------------------------------------ #
    def solve_detailed(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> DualExecutionResult:
        """Race the two algorithms; return the first finisher's result.

        The winning flow is the one left assigned on the network's arcs.
        """
        if self._closed:
            raise RuntimeError(
                "ParallelDualExecutor is closed; create a new executor "
                "(a solve after close would hang on the dead worker pipe)"
            )
        chaos, chaos_round = self._begin_chaos_round()
        self.breaker.note_round()
        self._respawns_at_round_start = self.worker_respawns
        if changes is not None:
            # Remember every revision-chained batch -- including the rounds
            # solved solo below, which is exactly when the worker's chain
            # would otherwise break and force a full snapshot.
            self._batch_history.record(changes)
        if not self._ensure_worker():
            return self._solve_fallback(network, changes)
        self._drain_pending()
        if self._conn is None:
            # The drain found the pipe broken; try one respawn cycle.
            if not self._ensure_worker():
                return self._solve_fallback(network, changes)

        started = time.perf_counter()
        deadline: Optional[RoundDeadline] = None
        if self.round_deadline_seconds is not None:
            deadline = RoundDeadline(self.round_deadline_seconds)
        strategy = "race"
        if (
            changes is not None
            and len(changes) <= self.delta_solo_threshold
            and self.incremental.can_solve_delta(changes)
        ):
            # Delta-armed round with a bounded batch: cost scaling's repair
            # is O(|changes|) and cannot lose to a from-scratch relaxation
            # run, so speculation would only burn CPU.  Solve solo.
            self.solo_delta_rounds += 1
            strategy = "cost_scaling"
        else:
            strategy = self._choose_strategy(changes)
            if strategy == "cost_scaling":
                self.solo_cost_scaling_rounds += 1

        race: Optional[_RoundRace] = None
        ship_kind: Optional[str] = None
        if strategy != "cost_scaling":
            if not self._unanswered:
                self._round_id += 1
                round_id = self._round_id
                try:
                    message, ship_kind, shipped_revision = self._encode_request(
                        round_id, network, changes
                    )
                    if chaos is not None:
                        message = self._apply_send_chaos(
                            chaos, chaos_round, message
                        )
                    self._conn.send(message)
                    # Yield the timeslice so the worker starts on the
                    # request immediately.  On a multi-core box this costs
                    # nothing; on a shared core it stops the parent from
                    # sitting on the CPU for a full scheduling quantum
                    # before the race even starts.
                    if hasattr(os, "sched_yield"):
                        os.sched_yield()
                    self._unanswered.add(round_id)
                    self._worker_revision = shipped_revision
                    if ship_kind == "delta":
                        self.delta_payloads += 1
                    else:
                        self.full_payloads += 1
                    race = _RoundRace(
                        self._conn, round_id, self._unanswered,
                        on_error=self._note_worker_error,
                    )
                    if (
                        chaos is not None
                        and self._process is not None
                        and chaos.fires("worker_kill", chaos_round)
                    ):
                        self._process.terminate()
                except (BrokenPipeError, OSError):
                    # The ship itself failed: a process-level failure, now.
                    # Serve the round with the parent-side solver unopposed
                    # (no retry recursion -- the breaker's backoff decides
                    # when the next respawn attempt happens).
                    self._note_worker_failure()
                    race = None
                    ship_kind = None
            else:
                # The worker is still chewing on an older (abandoned) round;
                # do not pile on -- see the deadlock note on the answered-up
                # send precondition above.  Cost scaling runs this round
                # unopposed; the revision-chain cache lets the *next*
                # shipped round resync the worker with a delta payload.
                self.skipped_worker_rounds += 1

        if race is not None and strategy == "relaxation":
            # The cost model picked solo relaxation: wait for the worker
            # instead of burning the parent core on the predicted loser.
            # The wait is bounded by the *cost-scaling* estimate (with
            # slack), not the failure-grace bound: if the worker has not
            # answered within a few multiples of what the skipped leg
            # would have taken, the prediction was wrong (e.g. a
            # contention spike) and the parent-side solver takes over.
            self.solo_relaxation_rounds += 1
            scaling_estimate = self.cost_model.cost_scaling_seconds
            timeout = self.loser_grace_seconds
            if scaling_estimate is not None:
                timeout = min(timeout, max(0.05, 4.0 * scaling_estimate))
            if deadline is not None:
                timeout = min(
                    timeout,
                    max(0.01, deadline.remaining() + deadline.watchdog_period),
                )
            if race.wait(timeout):
                self._settle_worker_health(race)
                return self._finish_round(
                    network, started, None,
                    self._payload_to_result(race.payload),
                    winner_is_relaxation=True, ship_kind=ship_kind,
                    parent_ran=False,
                )
            # The worker failed or timed out; degrade to the parent-side
            # solver (the race below, with the worker round still pending,
            # simply runs cost scaling unopposed).  A broken pipe is
            # recorded once, by the end-of-round health settlement.

        cost_scaling_result: Optional[SolverResult] = None
        parent_error: Optional[BaseException] = None
        abort_check = None
        if race is not None and deadline is not None:
            hard_expired = deadline.hard_expired
            current_race = race
            abort_check = lambda: current_race() or hard_expired()  # noqa: E731
        elif race is not None:
            abort_check = race
        elif deadline is not None:
            abort_check = deadline.hard_expired
        if abort_check is not None:
            self.incremental.abort_check = abort_check
        if deadline is not None:
            self.incremental.deadline_check = deadline
        try:
            cost_scaling_result = self.incremental.solve(network, changes=changes)
        except SolveAborted:
            pass
        except Exception as error:
            parent_error = error
        finally:
            self.incremental.abort_check = None
            self.incremental.deadline_check = None
        parent_finished_at = time.monotonic()

        if race is None:
            if parent_error is not None:
                raise parent_error
            if cost_scaling_result is None:
                # The deadline hard-aborted the only leg before it produced
                # a feasible flow (no worker to fall back on either).
                self.deadline_exceeded_rounds += 1
                raise RoundDeadlineExceeded(
                    "no solver produced a feasible flow within the round "
                    f"budget ({self.round_deadline_seconds:.3f}s)"
                )
            return self._finish_round(
                network, started, cost_scaling_result, None,
                winner_is_relaxation=False, ship_kind=ship_kind,
            )

        if cost_scaling_result is not None:
            # Parent finished un-aborted; one last drain settles the photo
            # finish (the worker may have crossed the line between the last
            # abort check and now).
            race()
            relaxation_result = self._payload_to_result(race.payload)
            worker_first = (
                race.payload is not None
                and race.payload["finished_at"] <= parent_finished_at
            )
            self._settle_worker_health(race)
            return self._finish_round(
                network,
                started,
                cost_scaling_result,
                relaxation_result,
                winner_is_relaxation=worker_first,
                ship_kind=ship_kind,
            )

        if parent_error is None:
            # Cost scaling was cancelled -- by the worker's finish, or (with
            # a budget set) by the hard deadline.  One drain disambiguates.
            race()
            if race.payload is not None:
                self._settle_worker_health(race)
                return self._finish_round(
                    network, started, None,
                    self._payload_to_result(race.payload),
                    winner_is_relaxation=True, ship_kind=ship_kind,
                )
            if deadline is not None:
                # Deadline abort with the worker still in flight: grant one
                # watchdog period of grace (the worker may be mid-send), then
                # give up on the round entirely.
                if race.wait(deadline.watchdog_period):
                    self._settle_worker_health(race)
                    return self._finish_round(
                        network, started, None,
                        self._payload_to_result(race.payload),
                        winner_is_relaxation=True, ship_kind=ship_kind,
                        deadline_hit=True,
                    )
                self._settle_worker_health(race)
                self.deadline_exceeded_rounds += 1
                raise RoundDeadlineExceeded(
                    "no solver produced a feasible flow within the round "
                    f"budget ({self.round_deadline_seconds:.3f}s)"
                )
            self._settle_worker_health(race)
            raise RuntimeError(
                "cost scaling aborted without a worker result or deadline"
            )  # pragma: no cover - abort sources are exactly those two

        # The parent-side solver failed (e.g. infeasibility).  Give the
        # worker a bounded grace period to disagree; if it cannot produce a
        # solution either, surface the parent's error.
        if race.wait(self.loser_grace_seconds):
            self._settle_worker_health(race)
            return self._finish_round(
                network, started, None,
                self._payload_to_result(race.payload),
                winner_is_relaxation=True, ship_kind=ship_kind,
            )
        self._settle_worker_health(race)
        raise parent_error

    def _apply_send_chaos(self, chaos, round_index: int, message: tuple) -> tuple:
        """Deliver this round's send-path faults just before the ship.

        ``pipe_break`` closes the transport out from under the send (the
        caller's ``conn.send`` raises exactly like a real broken pipe);
        ``corrupt_message`` appends garbage to the DIMACS text so the
        worker's parser rejects it (exercising the error-reply + full
        resnapshot path); ``worker_delay`` slips a sleep request in front
        of the round so the worker answers late.
        """
        if chaos.fires("pipe_break", round_index):
            self._conn.close()
            return message
        if chaos.fires("corrupt_message", round_index):
            message = (
                message[0], message[1],
                message[2] + "\nthis is not DIMACS\n",
            ) + tuple(message[3:])
        if chaos.fires("worker_delay", round_index):
            self._conn.send(("chaos_delay", chaos.delay_seconds))
        return message

    def _encode_request(
        self,
        round_id: int,
        network: FlowNetwork,
        changes: Optional[ChangeBatch],
    ) -> Tuple[tuple, str, Optional[int]]:
        """Serialize the round for the worker: a delta whenever possible.

        Returns ``(message, kind, shipped_revision)``.  An incremental
        payload is legal when the revision-chain cache can compose the
        recorded batches from the exact revision the worker's shadow
        mirrors to the round's target revision -- the directly-chained case
        is just a one-batch composition.  Anything else (cold start, worker
        respawn or error, a gap older than the cache, unserializable
        batches, unrevisioned hand-built networks) ships a full snapshot.
        """
        # Only a revision-*tracked* round may ship incrementally: without a
        # batch whose revisions vouch for the graph's lineage, two
        # different networks could share a revision number (hand-built
        # networks default to 0) and an "empty delta" would make the
        # worker solve its stale shadow as if it were the new problem.
        # Full snapshots still stamp the network's own revision so the
        # next *tracked* round can chain onto them.
        target = None
        if (
            changes is not None
            and changes.base_revision is not None
            and changes.target_revision is not None
        ):
            target = changes.target_revision
        worker_revision = self._worker_revision
        if worker_revision is not None and target is not None:
            composed = self._batch_history.compose(
                worker_revision,
                target,
                max_changes=RESYNC_MAX_SNAPSHOT_MULTIPLE
                * (network.num_arcs + network.num_nodes),
            )
            if composed is not None:
                try:
                    text = write_incremental(
                        composed,
                        base_revision=worker_revision,
                        target_revision=target,
                    )
                except (ValueError, TypeError):
                    pass  # e.g. a NodeAddition without an explicit node id
                else:
                    if changes is None or worker_revision != changes.base_revision:
                        # The payload bridges a gap beyond the current
                        # round's own batch: a resync of a broken chain.
                        self.resync_payloads += 1
                    message = (
                        "delta", round_id, text, worker_revision, target,
                    )
                    return message, "delta", target
        text = write_dimacs(network, include_node_types=False)
        shipped_revision = getattr(network, "revision", None)
        return ("full", round_id, text, shipped_revision), "full", shipped_revision

    # ------------------------------------------------------------------ #
    # Round assembly
    # ------------------------------------------------------------------ #
    def _solve_fallback(
        self, network: FlowNetwork, changes: Optional[ChangeBatch]
    ) -> DualExecutionResult:
        self._ensure_fallback()
        result = self._fallback.solve_detailed(network, changes)
        result.executor = "sequential_fallback"
        self.fallback_rounds += 1
        self._last_round_fallback = True
        self._stamp_health_stats(result.winner.statistics)
        # Tally only: the inner sequential executor's _record_round already
        # folded the loser's stats and fed the (shared) cost model.
        self._tally_round(result)
        return result

    def _stamp_health_stats(self, stats: SolverStatistics) -> None:
        """Surface this round's breaker/respawn state on the winner's stats."""
        stats.breaker_open = 0 if self.breaker.is_closed else 1
        stats.worker_respawns += (
            self.worker_respawns - self._respawns_at_round_start
        )

    def _payload_to_result(
        self, payload: Optional[Dict[str, Any]]
    ) -> Optional[SolverResult]:
        """Rebuild a relaxation :class:`SolverResult` from the IPC payload."""
        if payload is None:
            return None
        return SolverResult(
            algorithm=self.relaxation.name,
            total_cost=payload["total_cost"],
            flows=payload["flows"],
            potentials=payload["potentials"],
            runtime_seconds=payload["runtime_seconds"],
            statistics=SolverStatistics(
                iterations=payload["iterations"],
                augmentations=payload["augmentations"],
                relaxation_tree_nodes=payload.get("relaxation_tree_nodes", 0),
                dual_ascents=payload.get("dual_ascents", 0),
                arcs_patched=payload.get("arcs_patched", 0),
                nodes_touched=payload.get("nodes_touched", 0),
            ),
        )

    def _finish_round(
        self,
        network: FlowNetwork,
        started: float,
        cost_scaling_result: Optional[SolverResult],
        relaxation_result: Optional[SolverResult],
        winner_is_relaxation: bool,
        ship_kind: Optional[str] = None,
        parent_ran: bool = True,
        deadline_hit: bool = False,
    ) -> DualExecutionResult:
        wall_clock = time.perf_counter() - started
        if winner_is_relaxation:
            winner = relaxation_result
            self._install_relaxation_win(network, relaxation_result)
        else:
            winner = cost_scaling_result
        # A cancelled parent run consumed roughly the whole round's wall
        # clock before it stopped (a solo-relaxation round's idle parent
        # consumed nothing); an abandoned worker round is accounted only
        # when its runtime is known (the stale result may never drain).
        work = 0.0
        if cost_scaling_result is not None:
            work += cost_scaling_result.runtime_seconds
        elif parent_ran:
            work += wall_clock
        if relaxation_result is not None:
            work += relaxation_result.runtime_seconds
        if ship_kind == "full":
            winner.statistics.snapshot_ships = 1
        elif ship_kind == "delta":
            winner.statistics.delta_ships = 1
        if deadline_hit:
            winner.statistics.deadline_hits += 1
        if not winner.optimal:
            # A deadline-truncated epsilon ladder degraded this round.
            winner.statistics.degraded_round = 1
        self._stamp_health_stats(winner.statistics)
        self._last_round_fallback = False
        result = DualExecutionResult(
            winner=winner,
            relaxation=relaxation_result,
            cost_scaling=cost_scaling_result,
            effective_runtime_seconds=wall_clock,
            total_work_seconds=work,
            wall_clock_seconds=wall_clock,
            executor="parallel",
            # A round raced only when the worker was consulted *and* the
            # parent leg ran; solo rounds must not feed the cost model
            # censored loser samples (the skipped leg never started).
            raced=ship_kind is not None and parent_ran,
        )
        return self._record_round(result)
