"""Compact, persistent residual-network representation for the MCMF solvers.

The scheduler-facing :class:`~repro.flow.graph.FlowNetwork` is an object
graph optimized for incremental mutation by scheduling policies.  The
solvers instead operate on this array-based residual network: nodes are
renumbered ``0..n-1`` and every original arc is stored as a pair of directed
residual arcs (forward at an even index, its reverse at the following odd
index), so that the reverse of arc ``k`` is always ``k ^ 1``.

Arc attributes live in parallel ``array('q')`` columns (64-bit signed
integers) rather than Python lists of boxed ints, and per-node adjacency is
a flat list of arc indices with a *current-arc* cursor
(:attr:`ResidualNetwork.current_arc`) that cost scaling's discharge loop
uses to resume scanning where it left off.

Two features make the structure *persistent* across scheduling rounds
(paper, Section 5.2 -- solver work proportional to the change, not the
graph):

* :meth:`ResidualNetwork.apply_changes` patches the structure in place from
  a typed :class:`~repro.flow.changes.ChangeBatch` (supply, capacity, and
  cost changes, node/arc additions and removals) instead of requiring a
  rebuild from the :class:`FlowNetwork` object graph.  Removed arcs become
  *dead slots* (zero residual in both directions, never traversed); the
  arrays are compacted automatically once dead slots dominate.
* Costs may be held in scaled units between runs
  (:attr:`ResidualNetwork.cost_scale`), so an incremental cost-scaling
  solver can keep its exact scaled potentials without an O(arcs) rescale
  per round.

The representation also supports warm starts: an existing flow and set of
node potentials can be loaded so the incremental solvers resume from the
previous scheduling run's solution rather than from scratch.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.flow.graph import FlowNetwork
from repro.solvers.base import SolveAborted

#: Arcs loaded between two polls of the construction abort hook (the build
#: loop's per-arc cost is a few microseconds, so this keeps cancellation
#: latency around a millisecond at negligible polling overhead).
CONSTRUCTION_CHECK_INTERVAL = 256


class ResidualNetwork:
    """Array-based residual graph with node excesses and potentials.

    Attributes (hot-loop storage, intentionally public):
        arc_from / arc_to / arc_residual / arc_cost: parallel ``array('q')``
            columns indexed by residual arc.
        adjacency: per-node lists of outgoing residual arc indices.
        current_arc: per-node scan cursor into ``adjacency`` (the classic
            push/relabel current-arc heuristic; reset on relabel).
        excess / potential / supply: per-node integer columns.
        cost_scale: integer factor the stored ``arc_cost`` values (and
            potentials) are multiplied by; 1 for a freshly built network.
        revision: identity of the :class:`FlowNetwork` snapshot this
            residual mirrors (used to validate delta patches).
    """

    def __init__(
        self,
        network: FlowNetwork,
        use_existing_flow: bool = False,
        abort_check=None,
    ) -> None:
        """Build the residual network from a flow network.

        Args:
            network: The scheduling flow network.
            use_existing_flow: When True the arcs' current ``flow`` values are
                loaded into the residual capacities and the node excesses are
                reduced accordingly (warm start); otherwise flow starts at
                zero and every source node carries its full supply as excess.
            abort_check: Optional cooperative cancellation hook polled every
                few hundred arcs during construction (the build is O(graph)
                with no other polling opportunity); returning True raises
                :class:`~repro.solvers.base.SolveAborted`.
        """
        self.node_ids: List[int] = list(network.node_ids())
        self.index: Dict[int, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        self.num_nodes: int = len(self.node_ids)

        self.supply: List[int] = [0] * self.num_nodes
        self.excess: List[int] = [0] * self.num_nodes
        for node in network.nodes():
            i = self.index[node.node_id]
            self.supply[i] = node.supply
            self.excess[i] = node.supply

        self.potential: List[int] = [0] * self.num_nodes
        self.node_alive: bytearray = bytearray(b"\x01" * self.num_nodes)
        self.current_arc: List[int] = [0] * self.num_nodes

        # Residual arcs: forward arc 2k pairs with backward arc 2k+1.
        self.arc_from: array = array("q")
        self.arc_to: array = array("q")
        self.arc_residual: array = array("q")
        self.arc_cost: array = array("q")
        self.adjacency: List[List[int]] = [[] for _ in range(self.num_nodes)]
        # Original arc endpoints for forward arcs, used to write flow back.
        # ``None`` marks a dead (removed) arc pair slot.
        self.forward_arc_keys: List[Optional[Tuple[int, int]]] = []
        # (src, dst) -> forward pair position, for O(1) delta patching.
        self.arc_position: Dict[Tuple[int, int], int] = {}

        self.cost_scale: int = 1
        #: Whether any arc may carry a negative cost (conservative: set on
        #: load/patch of a negative cost, only cleared by a compaction's
        #: full rescan).  A from-scratch solver with all-zero potentials
        #: skips its reduced-cost restoration scan when this is False.
        self.has_negative_costs: bool = False
        self.revision: Optional[int] = getattr(network, "revision", None)
        self.dead_arc_pairs: int = 0
        self.dead_nodes: int = 0
        #: Change-application counters of the most recent
        #: :meth:`apply_changes` call (surfaced via ``SolverStatistics``).
        self.last_arcs_patched: int = 0
        self.last_nodes_touched: int = 0
        self._max_cost_cache: Optional[int] = None
        # Dirty-flow journal: forward pair positions whose flow changed since
        # the last extraction, plus a cache of the last extracted non-zero
        # flows.  ``None`` means "not tracking" -- extraction then scans all
        # live arcs and (re)primes the journal.  Mutation paths that bypass
        # :meth:`push` (the inlined hot loops of the scaling ladder) must call
        # :meth:`invalidate_flow_journal`.
        self._flow_journal: Optional[set] = None
        self._flows_cache: Optional[Dict[Tuple[int, int], int]] = None

        ops_until_check = CONSTRUCTION_CHECK_INTERVAL
        for arc in network.arcs():
            if abort_check is not None:
                ops_until_check -= 1
                if ops_until_check <= 0:
                    ops_until_check = CONSTRUCTION_CHECK_INTERVAL
                    if abort_check():
                        raise SolveAborted(
                            "residual construction cancelled by abort check"
                        )
            u = self.index[arc.src]
            v = self.index[arc.dst]
            flow = arc.flow if use_existing_flow else 0
            if flow < 0 or flow > arc.capacity:
                raise ValueError(
                    f"arc {arc.src}->{arc.dst} has invalid warm-start flow {flow}"
                )
            position = self._add_arc_pair(u, v, arc.capacity, arc.cost, flow)
            if arc.cost < 0:
                self.has_negative_costs = True
            self.forward_arc_keys.append((arc.src, arc.dst))
            self.arc_position[(arc.src, arc.dst)] = position
            if use_existing_flow and flow:
                self.excess[u] -= flow
                self.excess[v] += flow

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _add_arc_pair(self, u: int, v: int, capacity: int, cost: int, flow: int) -> int:
        """Append a forward/reverse arc pair; return the pair position."""
        forward_index = len(self.arc_to)
        self.arc_from.append(u)
        self.arc_to.append(v)
        self.arc_residual.append(capacity - flow)
        self.arc_cost.append(cost)
        self.adjacency[u].append(forward_index)

        self.arc_from.append(v)
        self.arc_to.append(u)
        self.arc_residual.append(flow)
        self.arc_cost.append(-cost)
        self.adjacency[v].append(forward_index + 1)
        return forward_index // 2

    def _add_node_slot(self, node_id: int, supply: int) -> int:
        """Append (or revive) a node slot for ``node_id``; return its index."""
        if node_id in self.index:
            i = self.index[node_id]
            if self.node_alive[i]:
                raise ValueError(f"node {node_id} already exists in the residual")
            self.node_alive[i] = 1
            self.dead_nodes -= 1
            self.supply[i] = supply
            self.excess[i] = supply
            self.potential[i] = 0
            self.current_arc[i] = 0
            return i
        i = self.num_nodes
        self.node_ids.append(node_id)
        self.index[node_id] = i
        self.supply.append(supply)
        self.excess.append(supply)
        self.potential.append(0)
        self.node_alive.append(1)
        self.current_arc.append(0)
        self.adjacency.append([])
        self.num_nodes += 1
        return i

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_arcs(self) -> int:
        """Number of residual arc slots (twice the original arc pair slots)."""
        return len(self.arc_to)

    @property
    def num_live_arc_pairs(self) -> int:
        """Number of live (non-removed) original arcs."""
        return len(self.forward_arc_keys) - self.dead_arc_pairs

    def reverse(self, arc_index: int) -> int:
        """Return the index of the reverse residual arc."""
        return arc_index ^ 1

    def is_forward(self, arc_index: int) -> bool:
        """Return True when the residual arc corresponds to an original arc."""
        return arc_index % 2 == 0

    def reduced_cost(self, arc_index: int) -> int:
        """Return the reduced cost of a residual arc under current potentials."""
        u = self.arc_from[arc_index]
        v = self.arc_to[arc_index]
        return self.arc_cost[arc_index] - self.potential[u] + self.potential[v]

    def push(self, arc_index: int, amount: int) -> None:
        """Push ``amount`` units of flow along a residual arc.

        Updates residual capacities of the arc and its reverse as well as the
        excesses of the endpoints.
        """
        if amount < 0:
            raise ValueError("push amount must be non-negative")
        if amount > self.arc_residual[arc_index]:
            raise ValueError(
                f"push of {amount} exceeds residual capacity "
                f"{self.arc_residual[arc_index]} on arc {arc_index}"
            )
        u = self.arc_from[arc_index]
        v = self.arc_to[arc_index]
        self.arc_residual[arc_index] -= amount
        self.arc_residual[arc_index ^ 1] += amount
        self.excess[u] -= amount
        self.excess[v] += amount
        if self._flow_journal is not None and amount:
            self._flow_journal.add(arc_index >> 1)

    def flow_on_forward_arc(self, forward_position: int) -> int:
        """Return the flow on the ``forward_position``-th original arc."""
        return self.arc_residual[2 * forward_position + 1]

    def total_excess(self) -> int:
        """Return the sum of positive node excesses (remaining supply)."""
        return sum(e for e in self.excess if e > 0)

    def source_indices(self) -> List[int]:
        """Return node indices with positive excess."""
        return [i for i, e in enumerate(self.excess) if e > 0]

    def deficit_indices(self) -> List[int]:
        """Return node indices with negative excess (demand)."""
        return [i for i, e in enumerate(self.excess) if e < 0]

    def violated_arcs(self, epsilon: int = 0) -> Tuple[int, List[int]]:
        """Scan for epsilon-optimality violations under current potentials.

        Returns ``(worst, indices)``: the magnitude of the worst reduced
        cost below ``-epsilon`` on a residual arc with remaining capacity,
        and the indices of every such arc (empty when the stored
        potentials prove epsilon-optimality).  The index list is exactly
        the seed set the incremental (Dijkstra) price refine needs: by
        construction it covers every violated arc.
        """
        arc_residual = self.arc_residual
        arc_cost = self.arc_cost
        arc_from = self.arc_from
        arc_to = self.arc_to
        potential = self.potential
        worst = 0
        violated: List[int] = []
        for arc_index in range(len(arc_residual)):
            if arc_residual[arc_index] <= 0:
                continue
            rc = (
                arc_cost[arc_index]
                - potential[arc_from[arc_index]]
                + potential[arc_to[arc_index]]
            )
            if rc < -epsilon:
                violated.append(arc_index)
                if -rc > worst:
                    worst = -rc
        return worst, violated

    def max_cost(self) -> int:
        """Return an upper bound on the largest absolute arc cost (in the
        stored cost units).

        The value is cached and maintained through mutations: cost patches
        and arc additions raise it in O(1) when they exceed it, so a
        persistent residual never pays an O(arcs) rescan per round.  The
        bound is exact after a full scan or a compaction and can only
        overestimate when the arc that held the maximum is removed or its
        cost lowered -- every caller (relaxation's ascent guard, cost
        scaling's initial epsilon and potential bound) is safe under an
        upper bound.
        """
        if self._max_cost_cache is None:
            self._max_cost_cache = (
                max(abs(c) for c in self.arc_cost) if len(self.arc_cost) else 0
            )
        return self._max_cost_cache

    # ------------------------------------------------------------------ #
    # Cost scaling support
    # ------------------------------------------------------------------ #
    def scale_costs(self, multiplier: int) -> None:
        """Multiply every arc cost (and the stored scale) by ``multiplier``."""
        if multiplier == 1:
            return
        arc_cost = self.arc_cost
        for arc_index in range(len(arc_cost)):
            arc_cost[arc_index] *= multiplier
        self.cost_scale *= multiplier
        if self._max_cost_cache is not None:
            self._max_cost_cache *= multiplier

    def unscale_costs(self) -> None:
        """Divide arc costs back to original units (``cost_scale`` 1)."""
        divisor = self.cost_scale
        if divisor == 1:
            return
        arc_cost = self.arc_cost
        for arc_index in range(len(arc_cost)):
            arc_cost[arc_index] //= divisor
        self.cost_scale = 1
        if self._max_cost_cache is not None:
            self._max_cost_cache //= divisor

    def reset_current_arcs(self) -> None:
        """Reset every node's current-arc cursor to the start of its list."""
        self.current_arc = [0] * self.num_nodes

    def reset_to_zero_flow(self) -> None:
        """Return the residual to the zero-flow, zero-potential start state.

        From-scratch solvers that keep a *persistent* residual between
        rounds (the relaxation fast path) patch the structure with
        :meth:`apply_changes` and then reset the carried solution instead
        of rebuilding the whole object from the flow network: forward
        residuals return to the arcs' capacities, every node's excess
        returns to its supply, and potentials and scan cursors are zeroed.
        The reset is pure array arithmetic -- no dict rebuilds, no object
        traversal -- which is what makes reuse cheaper than reconstruction.

        The dirty-flow journal survives: every arc whose carried flow is
        being dropped is recorded as dirty, so a following solve still
        extracts its result in O(changed + non-zero) instead of O(arcs).
        """
        arc_residual = self.arc_residual
        journal = self._flow_journal
        for position, key in enumerate(self.forward_arc_keys):
            if key is None:
                continue
            forward = 2 * position
            flow = arc_residual[forward + 1]
            if flow:
                arc_residual[forward] += flow
                arc_residual[forward + 1] = 0
                if journal is not None:
                    journal.add(position)
        supply = self.supply
        excess = self.excess
        potential = self.potential
        node_alive = self.node_alive
        for i in range(self.num_nodes):
            excess[i] = supply[i] if node_alive[i] else 0
            potential[i] = 0
        self.reset_current_arcs()

    # ------------------------------------------------------------------ #
    # Delta patching
    # ------------------------------------------------------------------ #
    def apply_changes(self, batch) -> List[int]:
        """Patch the residual in place from a change batch.

        Accepts a :class:`~repro.flow.changes.ChangeBatch` (or any iterable
        of :class:`~repro.flow.changes.GraphChange` objects) whose costs are
        expressed in *original* (unscaled) units; they are multiplied by
        :attr:`cost_scale` on the way in, so a persistent scaled residual
        stays consistent.

        The previous flow is preserved where it remains valid: capacity
        reductions clamp the carried flow and return the difference to the
        endpoints' excesses, and removing an arc (or a node with its
        incident arcs) returns the arc's flow the same way.  The caller is
        responsible for re-routing the resulting excesses (that is the
        repair step of incremental cost scaling).

        Returns:
            Sorted list of *dirty* forward pair positions: arcs whose
            capacity, cost, or existence changed (including every arc
            incident to an added node).  Only these can have acquired a
            negative reduced cost, so optimality repair may restrict its
            violation scan to them.

        Raises:
            ValueError / KeyError: when the batch does not match the
                residual's current structure (e.g. patching an unknown arc).
        """
        from repro.flow import changes as ch

        self._maybe_compact()
        dirty: set = set()
        scale = self.cost_scale
        arcs_patched = 0
        nodes_touched = 0

        for change in batch:
            if isinstance(change, (ch.SupplyChange, ch.NodeAddition, ch.NodeRemoval)):
                nodes_touched += 1
            else:
                arcs_patched += 1
            if isinstance(change, ch.SupplyChange):
                i = self.index[change.node_id]
                if not self.node_alive[i]:
                    raise ValueError(f"supply change on removed node {change.node_id}")
                self.supply[i] += change.delta
                self.excess[i] += change.delta
            elif isinstance(change, ch.ArcCostChange):
                position = self.arc_position[(change.src, change.dst)]
                cost = change.new_cost * scale
                self.arc_cost[2 * position] = cost
                self.arc_cost[2 * position + 1] = -cost
                dirty.add(position)
                if cost < 0:
                    self.has_negative_costs = True
                if self._max_cost_cache is not None:
                    scaled = cost if cost >= 0 else -cost
                    if scaled > self._max_cost_cache:
                        self._max_cost_cache = scaled
            elif isinstance(change, ch.ArcCapacityChange):
                position = self.arc_position[(change.src, change.dst)]
                self._patch_capacity(position, change.new_capacity)
                dirty.add(position)
            elif isinstance(change, ch.ArcAddition):
                dirty.add(
                    self._patch_add_arc(
                        change.src, change.dst, change.capacity, change.cost
                    )
                )
            elif isinstance(change, ch.ArcRemoval):
                position = self.arc_position[(change.src, change.dst)]
                self._remove_arc_pair(position)
            elif isinstance(change, ch.NodeAddition):
                if change.node_id is None:
                    raise ValueError(
                        "NodeAddition must carry an explicit node_id to be "
                        "applied to a residual network"
                    )
                self._add_node_slot(change.node_id, change.supply)
                for dst, capacity, cost in change.arcs_out:
                    dirty.add(self._patch_add_arc(change.node_id, dst, capacity, cost))
                for src, capacity, cost in change.arcs_in:
                    dirty.add(self._patch_add_arc(src, change.node_id, capacity, cost))
            elif isinstance(change, ch.NodeRemoval):
                self._patch_remove_node(change.node_id)
            else:
                raise ValueError(f"unsupported change type {type(change).__name__}")

        self.last_arcs_patched = arcs_patched
        self.last_nodes_touched = nodes_touched
        return sorted(dirty)

    def _patch_capacity(self, position: int, new_capacity: int) -> None:
        forward = 2 * position
        flow = self.arc_residual[forward + 1]
        if new_capacity < flow:
            # Clamp the carried flow; the clamped-off units return to the
            # endpoints as excess/deficit for the repair step to re-route.
            returned = flow - new_capacity
            self.excess[self.arc_from[forward]] += returned
            self.excess[self.arc_to[forward]] -= returned
            flow = new_capacity
            self.arc_residual[forward + 1] = flow
            if self._flow_journal is not None:
                self._flow_journal.add(position)
        self.arc_residual[forward] = new_capacity - flow

    def _patch_add_arc(self, src: int, dst: int, capacity: int, cost: int) -> int:
        key = (src, dst)
        if key in self.arc_position:
            raise ValueError(f"arc {src}->{dst} already exists in the residual")
        u = self.index[src]
        v = self.index[dst]
        if not (self.node_alive[u] and self.node_alive[v]):
            raise ValueError(f"arc {src}->{dst} references a removed node")
        position = self._add_arc_pair(u, v, capacity, cost * self.cost_scale, 0)
        if cost < 0:
            self.has_negative_costs = True
        self.forward_arc_keys.append(key)
        self.arc_position[key] = position
        if self._max_cost_cache is not None:
            scaled = abs(cost * self.cost_scale)
            if scaled > self._max_cost_cache:
                self._max_cost_cache = scaled
        return position

    def _remove_arc_pair(self, position: int) -> None:
        key = self.forward_arc_keys[position]
        if key is None:
            raise ValueError(f"arc pair {position} is already removed")
        forward = 2 * position
        flow = self.arc_residual[forward + 1]
        if flow:
            # Return the carried flow to the endpoints.
            self.excess[self.arc_from[forward]] += flow
            self.excess[self.arc_to[forward]] -= flow
        # Dead slot: zero residual in both directions means no traversal ever
        # touches it again; zero cost keeps the max-cost cache an upper bound.
        self.arc_residual[forward] = 0
        self.arc_residual[forward + 1] = 0
        self.arc_cost[forward] = 0
        self.arc_cost[forward + 1] = 0
        self.forward_arc_keys[position] = None
        del self.arc_position[key]
        self.dead_arc_pairs += 1
        # The slot is dead: purge its cached flow and drop any pending
        # journal entry (the position no longer maps to a live key).
        if self._flows_cache is not None:
            self._flows_cache.pop(key, None)
        if self._flow_journal is not None:
            self._flow_journal.discard(position)

    def _patch_remove_node(self, node_id: int) -> None:
        i = self.index[node_id]
        if not self.node_alive[i]:
            raise ValueError(f"node {node_id} is already removed")
        # Remove every live incident arc first (both the arcs out of the node
        # and, via their reverse halves in our adjacency, the arcs into it).
        for arc_index in self.adjacency[i]:
            position = arc_index >> 1
            if self.forward_arc_keys[position] is not None:
                self._remove_arc_pair(position)
        # Retiring the node retires its supply; a consistent batch leaves the
        # node balanced once its arcs' flow has been returned.
        self.excess[i] -= self.supply[i]
        self.supply[i] = 0
        if self.excess[i] != 0:
            raise ValueError(
                f"node {node_id} still has excess {self.excess[i]} after removal; "
                "the change batch is inconsistent with the stored flow"
            )
        self.node_alive[i] = 0
        self.potential[i] = 0
        self.dead_nodes += 1

    def _maybe_compact(self) -> None:
        """Compact away dead slots once they dominate the arrays.

        Amortized O(1) per change: a compaction costs O(nodes + arcs) but
        only triggers after a proportional number of removals.
        """
        pairs = len(self.forward_arc_keys)
        if (self.dead_arc_pairs * 2 <= pairs or pairs < 64) and (
            self.dead_nodes * 2 <= self.num_nodes or self.num_nodes < 64
        ):
            return
        self.compact()

    def compact(self) -> None:
        """Rebuild the arrays without dead node/arc slots (same node ids)."""
        # Compaction renumbers pair positions, so pending journal entries
        # would dangle; compaction is amortized-rare, so simply fall back to
        # one full extraction afterwards.
        self.invalidate_flow_journal()
        keep = [i for i in range(self.num_nodes) if self.node_alive[i]]
        remap = {old: new for new, old in enumerate(keep)}
        self.node_ids = [self.node_ids[i] for i in keep]
        self.index = {nid: i for i, nid in enumerate(self.node_ids)}
        self.supply = [self.supply[i] for i in keep]
        self.excess = [self.excess[i] for i in keep]
        self.potential = [self.potential[i] for i in keep]
        self.num_nodes = len(keep)
        self.node_alive = bytearray(b"\x01" * self.num_nodes)
        self.current_arc = [0] * self.num_nodes
        self.adjacency = [[] for _ in range(self.num_nodes)]
        self.dead_nodes = 0

        old_residual = self.arc_residual
        old_cost = self.arc_cost
        old_from = self.arc_from
        old_to = self.arc_to
        old_keys = self.forward_arc_keys
        self.arc_from = array("q")
        self.arc_to = array("q")
        self.arc_residual = array("q")
        self.arc_cost = array("q")
        self.forward_arc_keys = []
        self.arc_position = {}
        self.dead_arc_pairs = 0
        # The full walk below makes the conservative negative-cost flag
        # exact again (the max-cost cache stays a valid upper bound).
        self.has_negative_costs = False
        for position, key in enumerate(old_keys):
            if key is None:
                continue
            forward = 2 * position
            if old_cost[forward] < 0:
                self.has_negative_costs = True
            u = remap[old_from[forward]]
            v = remap[old_to[forward]]
            new_position = len(self.forward_arc_keys)
            self.arc_from.append(u)
            self.arc_to.append(v)
            self.arc_residual.append(old_residual[forward])
            self.arc_cost.append(old_cost[forward])
            self.adjacency[u].append(2 * new_position)
            self.arc_from.append(v)
            self.arc_to.append(u)
            self.arc_residual.append(old_residual[forward + 1])
            self.arc_cost.append(old_cost[forward + 1])
            self.adjacency[v].append(2 * new_position + 1)
            self.forward_arc_keys.append(key)
            self.arc_position[key] = new_position

    # ------------------------------------------------------------------ #
    # Potentials / warm start
    # ------------------------------------------------------------------ #
    def load_potentials(self, potentials: Mapping[int, int]) -> None:
        """Load node potentials keyed by original node identifiers."""
        for node_id, value in potentials.items():
            if node_id in self.index:
                self.potential[self.index[node_id]] = value

    def export_potentials(self) -> Dict[int, int]:
        """Export node potentials keyed by original node identifiers."""
        return {
            nid: self.potential[i]
            for nid, i in self.index.items()
            if self.node_alive[i]
        }

    # ------------------------------------------------------------------ #
    # Result extraction (dirty-flow journal)
    # ------------------------------------------------------------------ #
    def invalidate_flow_journal(self) -> None:
        """Stop O(changed) flow tracking; the next extraction scans all arcs.

        Must be called by any code path that mutates ``arc_residual``
        without going through :meth:`push` or the delta-patching helpers
        (the inlined discharge loops of the scaling ladder do this).
        """
        self._flow_journal = None
        self._flows_cache = None

    @property
    def flow_journal_active(self) -> bool:
        """Whether extractions are currently served from the journal."""
        return self._flow_journal is not None and self._flows_cache is not None

    def _sync_flow_journal(self) -> Optional[Dict[Tuple[int, int], int]]:
        """Fold pending journal entries into the flows cache.

        Returns the up-to-date cache, or ``None`` when tracking is off.
        """
        journal = self._flow_journal
        cache = self._flows_cache
        if journal is None or cache is None:
            return None
        if journal:
            arc_residual = self.arc_residual
            keys = self.forward_arc_keys
            for position in journal:
                key = keys[position]
                if key is None:
                    continue
                flow = arc_residual[2 * position + 1]
                if flow:
                    cache[key] = flow
                else:
                    cache.pop(key, None)
            journal.clear()
        return cache

    def full_flows(self) -> Dict[Tuple[int, int], int]:
        """Extract the flow by scanning every live arc (journal bypass).

        The journal-equivalence tests compare this against :meth:`flows`;
        production code calls :meth:`flows`, which re-primes the journal
        from this scan whenever tracking was invalidated.
        """
        result: Dict[Tuple[int, int], int] = {}
        arc_residual = self.arc_residual
        for position, key in enumerate(self.forward_arc_keys):
            if key is None:
                continue
            flow = arc_residual[2 * position + 1]
            if flow:
                result[key] = flow
        return result

    def write_flow_back(self, network: FlowNetwork) -> None:
        """Write the computed flow back onto the original network's arcs.

        On the delta path (journal active) only the changed and non-zero
        flows are written -- O(changed + non-zero flows).  The target
        network may carry the *previous* round's flows on its arcs (the
        graph manager mutates one persistent network in place), so arcs
        whose journaled flow dropped to zero are explicitly zeroed before
        the cache of non-zero flows is applied.
        """
        journaled: Optional[List[Tuple[int, int]]] = None
        if self._flow_journal is not None and self._flows_cache is not None:
            journaled = [
                key
                for key in (
                    self.forward_arc_keys[position]
                    for position in self._flow_journal
                )
                if key is not None
            ]
        cache = self._sync_flow_journal()
        if cache is not None:
            if journaled:
                for key in journaled:
                    if key not in cache and network.has_arc(*key):
                        network.arc(*key).flow = 0
            for key, flow in cache.items():
                if network.has_arc(*key):
                    network.arc(*key).flow = flow
            return
        arc_residual = self.arc_residual
        for position, key in enumerate(self.forward_arc_keys):
            if key is None:
                continue
            if network.has_arc(*key):
                network.arc(*key).flow = arc_residual[2 * position + 1]

    def flows(self) -> Dict[Tuple[int, int], int]:
        """Return the computed flow as a ``{(src, dst): flow}`` mapping.

        With an active journal the scan is restricted to the positions whose
        flow changed since the previous extraction (plus an O(non-zero
        flows) copy of the cache).  Without one, a full scan of the live
        arcs runs and primes the journal, so a persistent residual's
        subsequent delta rounds are served incrementally.
        """
        cache = self._sync_flow_journal()
        if cache is not None:
            return dict(cache)
        self._flows_cache = self.full_flows()
        self._flow_journal = set()
        return dict(self._flows_cache)

    def total_cost(self) -> int:
        """Return the total cost of the current flow (in original units)."""
        total = 0
        arc_residual = self.arc_residual
        arc_cost = self.arc_cost
        for position, key in enumerate(self.forward_arc_keys):
            if key is None:
                continue
            flow = arc_residual[2 * position + 1]
            if flow:
                total += flow * arc_cost[2 * position]
        return total // self.cost_scale

    # ------------------------------------------------------------------ #
    # Consistency checking (used by the delta-equivalence tests)
    # ------------------------------------------------------------------ #
    def consistency_errors(self, network: FlowNetwork) -> List[str]:
        """Return discrepancies between this residual and ``network``.

        A delta-patched residual must be arc-for-arc equivalent to one
        freshly built from the updated flow network: same live node set and
        supplies, same arcs with the same capacities and (unscaled) costs,
        and internally consistent flow/excess bookkeeping.
        """
        problems: List[str] = []
        live_ids = {nid for nid, i in self.index.items() if self.node_alive[i]}
        network_ids = set(network.node_ids())
        if live_ids != network_ids:
            problems.append(
                f"node sets differ: residual-only {sorted(live_ids - network_ids)}, "
                f"network-only {sorted(network_ids - live_ids)}"
            )
        for nid in live_ids & network_ids:
            if self.supply[self.index[nid]] != network.node(nid).supply:
                problems.append(
                    f"node {nid} supply {self.supply[self.index[nid]]} != "
                    f"network supply {network.node(nid).supply}"
                )
        network_keys = {arc.key() for arc in network.arcs()}
        if set(self.arc_position) != network_keys:
            problems.append(
                f"arc sets differ: residual-only "
                f"{sorted(set(self.arc_position) - network_keys)}, network-only "
                f"{sorted(network_keys - set(self.arc_position))}"
            )
        for key, position in self.arc_position.items():
            if key not in network_keys:
                continue
            arc = network.arc(*key)
            forward = 2 * position
            capacity = self.arc_residual[forward] + self.arc_residual[forward + 1]
            if capacity != arc.capacity:
                problems.append(
                    f"arc {key} capacity {capacity} != network {arc.capacity}"
                )
            if self.arc_cost[forward] != arc.cost * self.cost_scale:
                problems.append(
                    f"arc {key} cost {self.arc_cost[forward]} != scaled network "
                    f"cost {arc.cost * self.cost_scale}"
                )
            if self.arc_cost[forward + 1] != -self.arc_cost[forward]:
                problems.append(f"arc {key} reverse cost is not the negation")
            if self.arc_residual[forward] < 0 or self.arc_residual[forward + 1] < 0:
                problems.append(f"arc {key} has negative residual capacity")
        # Excess bookkeeping: excess = supply - outflow + inflow.
        balance = list(self.supply)
        for position, key in enumerate(self.forward_arc_keys):
            if key is None:
                continue
            flow = self.arc_residual[2 * position + 1]
            if flow:
                balance[self.arc_from[2 * position]] -= flow
                balance[self.arc_to[2 * position]] += flow
        for i in range(self.num_nodes):
            if self.node_alive[i] and balance[i] != self.excess[i]:
                problems.append(
                    f"node {self.node_ids[i]} excess {self.excess[i]} != "
                    f"supply-flow balance {balance[i]}"
                )
        return problems
