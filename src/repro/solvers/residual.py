"""Compact residual-network representation shared by the MCMF solvers.

The scheduler-facing :class:`~repro.flow.graph.FlowNetwork` is an object
graph optimized for incremental mutation by scheduling policies.  The
solvers instead operate on this array-based residual network: nodes are
renumbered ``0..n-1`` and every original arc is stored as a pair of directed
residual arcs (forward at an even index, its reverse at the following odd
index), so that the reverse of arc ``k`` is always ``k ^ 1``.

The representation supports warm starts: an existing flow and set of node
potentials can be loaded so the incremental solvers resume from the previous
scheduling run's solution rather than from scratch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.flow.graph import FlowNetwork


class ResidualNetwork:
    """Array-based residual graph with node excesses and potentials."""

    def __init__(self, network: FlowNetwork, use_existing_flow: bool = False) -> None:
        """Build the residual network from a flow network.

        Args:
            network: The scheduling flow network.
            use_existing_flow: When True the arcs' current ``flow`` values are
                loaded into the residual capacities and the node excesses are
                reduced accordingly (warm start); otherwise flow starts at
                zero and every source node carries its full supply as excess.
        """
        self.node_ids: List[int] = list(network.node_ids())
        self.index: Dict[int, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        self.num_nodes: int = len(self.node_ids)

        self.excess: List[int] = [0] * self.num_nodes
        for node in network.nodes():
            self.excess[self.index[node.node_id]] = node.supply

        self.potential: List[int] = [0] * self.num_nodes

        # Residual arcs: forward arc 2k pairs with backward arc 2k+1.
        self.arc_from: List[int] = []
        self.arc_to: List[int] = []
        self.arc_residual: List[int] = []
        self.arc_cost: List[int] = []
        self.adjacency: List[List[int]] = [[] for _ in range(self.num_nodes)]
        # Original arc endpoints for forward arcs, used to write flow back.
        self.forward_arc_keys: List[Tuple[int, int]] = []

        for arc in network.arcs():
            u = self.index[arc.src]
            v = self.index[arc.dst]
            flow = arc.flow if use_existing_flow else 0
            if flow < 0 or flow > arc.capacity:
                raise ValueError(
                    f"arc {arc.src}->{arc.dst} has invalid warm-start flow {flow}"
                )
            self._add_arc_pair(u, v, arc.capacity, arc.cost, flow)
            self.forward_arc_keys.append((arc.src, arc.dst))
            if use_existing_flow and flow:
                self.excess[u] -= flow
                self.excess[v] += flow

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _add_arc_pair(self, u: int, v: int, capacity: int, cost: int, flow: int) -> None:
        forward_index = len(self.arc_to)
        self.arc_from.append(u)
        self.arc_to.append(v)
        self.arc_residual.append(capacity - flow)
        self.arc_cost.append(cost)
        self.adjacency[u].append(forward_index)

        self.arc_from.append(v)
        self.arc_to.append(u)
        self.arc_residual.append(flow)
        self.arc_cost.append(-cost)
        self.adjacency[v].append(forward_index + 1)

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_arcs(self) -> int:
        """Number of residual arcs (twice the number of original arcs)."""
        return len(self.arc_to)

    def reverse(self, arc_index: int) -> int:
        """Return the index of the reverse residual arc."""
        return arc_index ^ 1

    def is_forward(self, arc_index: int) -> bool:
        """Return True when the residual arc corresponds to an original arc."""
        return arc_index % 2 == 0

    def reduced_cost(self, arc_index: int) -> int:
        """Return the reduced cost of a residual arc under current potentials."""
        u = self.arc_from[arc_index]
        v = self.arc_to[arc_index]
        return self.arc_cost[arc_index] - self.potential[u] + self.potential[v]

    def push(self, arc_index: int, amount: int) -> None:
        """Push ``amount`` units of flow along a residual arc.

        Updates residual capacities of the arc and its reverse as well as the
        excesses of the endpoints.
        """
        if amount < 0:
            raise ValueError("push amount must be non-negative")
        if amount > self.arc_residual[arc_index]:
            raise ValueError(
                f"push of {amount} exceeds residual capacity "
                f"{self.arc_residual[arc_index]} on arc {arc_index}"
            )
        u = self.arc_from[arc_index]
        v = self.arc_to[arc_index]
        self.arc_residual[arc_index] -= amount
        self.arc_residual[self.reverse(arc_index)] += amount
        self.excess[u] -= amount
        self.excess[v] += amount

    def flow_on_forward_arc(self, forward_position: int) -> int:
        """Return the flow on the ``forward_position``-th original arc."""
        return self.arc_residual[2 * forward_position + 1]

    def total_excess(self) -> int:
        """Return the sum of positive node excesses (remaining supply)."""
        return sum(e for e in self.excess if e > 0)

    def source_indices(self) -> List[int]:
        """Return node indices with positive excess."""
        return [i for i, e in enumerate(self.excess) if e > 0]

    def deficit_indices(self) -> List[int]:
        """Return node indices with negative excess (demand)."""
        return [i for i, e in enumerate(self.excess) if e < 0]

    def max_cost(self) -> int:
        """Return the largest absolute arc cost."""
        if not self.arc_cost:
            return 0
        return max(abs(c) for c in self.arc_cost)

    # ------------------------------------------------------------------ #
    # Potentials / warm start
    # ------------------------------------------------------------------ #
    def load_potentials(self, potentials: Mapping[int, int]) -> None:
        """Load node potentials keyed by original node identifiers."""
        for node_id, value in potentials.items():
            if node_id in self.index:
                self.potential[self.index[node_id]] = value

    def export_potentials(self) -> Dict[int, int]:
        """Export node potentials keyed by original node identifiers."""
        return {nid: self.potential[i] for nid, i in self.index.items()}

    # ------------------------------------------------------------------ #
    # Result extraction
    # ------------------------------------------------------------------ #
    def write_flow_back(self, network: FlowNetwork) -> None:
        """Write the computed flow back onto the original network's arcs."""
        for position, (src, dst) in enumerate(self.forward_arc_keys):
            if network.has_arc(src, dst):
                network.arc(src, dst).flow = self.flow_on_forward_arc(position)

    def flows(self) -> Dict[Tuple[int, int], int]:
        """Return the computed flow as a ``{(src, dst): flow}`` mapping."""
        result: Dict[Tuple[int, int], int] = {}
        for position, key in enumerate(self.forward_arc_keys):
            flow = self.flow_on_forward_arc(position)
            if flow:
                result[key] = flow
        return result

    def total_cost(self) -> int:
        """Return the total cost of the current flow."""
        total = 0
        for position in range(len(self.forward_arc_keys)):
            flow = self.flow_on_forward_arc(position)
            if flow:
                total += flow * self.arc_cost[2 * position]
        return total
