"""Cycle canceling MCMF algorithm (Klein's primal method, Section 4).

The algorithm first establishes a feasible flow (ignoring costs) by
breadth-first augmentation from nodes with excess to nodes with deficit, and
then repeatedly cancels negative-cost directed cycles in the residual
network until none remain, at which point the negative-cycle optimality
condition holds and the flow is optimal.

It is the simplest of the four algorithms and, as the paper's Figure 7
shows, by far the slowest on scheduling graphs; it is included for
completeness and as a correctness cross-check.
"""

from __future__ import annotations

import time
from collections import deque
from typing import List, Optional

from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    InfeasibleProblemError,
    Solver,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.residual import ResidualNetwork


class CycleCancelingSolver(Solver):
    """Klein's cycle canceling algorithm with Bellman-Ford cycle detection."""

    name = "cycle_canceling"

    def __init__(self, max_iterations: Optional[int] = None) -> None:
        """Create the solver.

        Args:
            max_iterations: Optional safety limit on the number of canceled
                cycles; mainly useful for the approximate-solution experiment
                (Figure 10).  ``None`` means run to optimality.
        """
        self.max_iterations = max_iterations

    def solve(self, network: FlowNetwork) -> SolverResult:
        """Compute a min-cost max-flow on the network."""
        start = time.perf_counter()
        residual = ResidualNetwork(network)
        stats = SolverStatistics()

        self._establish_feasible_flow(residual, stats)

        canceled = 0
        while True:
            if self.max_iterations is not None and canceled >= self.max_iterations:
                break
            cycle = self._find_negative_cycle(residual, stats)
            if cycle is None:
                break
            bottleneck = min(residual.arc_residual[arc_index] for arc_index in cycle)
            for arc_index in cycle:
                residual.push(arc_index, bottleneck)
            canceled += 1
            stats.negative_cycles_canceled += 1

        residual.write_flow_back(network)
        runtime = time.perf_counter() - start
        return SolverResult(
            algorithm=self.name,
            total_cost=residual.total_cost(),
            flows=residual.flows(),
            potentials=residual.export_potentials(),
            runtime_seconds=runtime,
            statistics=stats,
            optimal=self.max_iterations is None,
        )

    # ------------------------------------------------------------------ #
    # Phase 1: feasibility (maximum flow, costs ignored)
    # ------------------------------------------------------------------ #
    def _establish_feasible_flow(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> None:
        """Route all supply to deficit nodes along BFS augmenting paths."""
        while True:
            sources = [i for i in range(residual.num_nodes) if residual.excess[i] > 0]
            if not sources:
                return
            routed_any = False
            for source in sources:
                while residual.excess[source] > 0:
                    path = self._bfs_augmenting_path(residual, source, stats)
                    if path is None:
                        break
                    target = residual.arc_to[path[-1]]
                    amount = min(
                        residual.excess[source], -residual.excess[target]
                    )
                    amount = min(
                        amount,
                        min(residual.arc_residual[arc_index] for arc_index in path),
                    )
                    for arc_index in path:
                        residual.push(arc_index, amount)
                    stats.augmentations += 1
                    routed_any = True
            if not routed_any:
                raise InfeasibleProblemError(
                    "cannot route all task supply to the sink; the scheduling "
                    "graph is missing unscheduled aggregator capacity"
                )

    def _bfs_augmenting_path(
        self, residual: ResidualNetwork, source: int, stats: SolverStatistics
    ) -> Optional[List[int]]:
        """Find any path of residual arcs from ``source`` to a deficit node."""
        pred_arc: List[Optional[int]] = [None] * residual.num_nodes
        visited = [False] * residual.num_nodes
        visited[source] = True
        queue = deque([source])
        target = -1
        while queue:
            u = queue.popleft()
            if residual.excess[u] < 0:
                target = u
                break
            for arc_index in residual.adjacency[u]:
                if residual.arc_residual[arc_index] <= 0:
                    continue
                v = residual.arc_to[arc_index]
                stats.arcs_scanned += 1
                if not visited[v]:
                    visited[v] = True
                    pred_arc[v] = arc_index
                    queue.append(v)
        if target < 0:
            return None
        path: List[int] = []
        node = target
        while node != source:
            arc_index = pred_arc[node]
            path.append(arc_index)
            node = residual.arc_from[arc_index]
        path.reverse()
        return path

    # ------------------------------------------------------------------ #
    # Phase 2: optimality (negative cycle cancellation)
    # ------------------------------------------------------------------ #
    def _find_negative_cycle(
        self, residual: ResidualNetwork, stats: SolverStatistics
    ) -> Optional[List[int]]:
        """Find a negative-cost cycle in the residual network.

        Runs Bellman-Ford from a virtual source connected to every node; if
        the n-th relaxation pass still improves a label, a negative cycle is
        reachable from the improved node and is recovered by walking
        predecessor arcs.
        """
        n = residual.num_nodes
        dist = [0] * n
        pred_arc: List[Optional[int]] = [None] * n
        improved_node = -1
        for iteration in range(n):
            improved_node = -1
            for arc_index in range(residual.num_arcs):
                if residual.arc_residual[arc_index] <= 0:
                    continue
                u = residual.arc_from[arc_index]
                v = residual.arc_to[arc_index]
                cost = residual.arc_cost[arc_index]
                if dist[u] + cost < dist[v]:
                    dist[v] = dist[u] + cost
                    pred_arc[v] = arc_index
                    improved_node = v
            stats.arcs_scanned += residual.num_arcs
            stats.iterations += 1
            if improved_node < 0:
                return None
        # Walk back n steps to guarantee we are on the cycle, then collect it.
        node = improved_node
        for _ in range(n):
            node = residual.arc_from[pred_arc[node]]
        cycle: List[int] = []
        current = node
        while True:
            arc_index = pred_arc[current]
            cycle.append(arc_index)
            current = residual.arc_from[arc_index]
            if current == node:
                break
        cycle.reverse()
        return cycle
