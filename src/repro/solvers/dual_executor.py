"""Speculative dual-algorithm execution (Section 6.1 of the paper).

Firmament's MCMF solver always runs two algorithms on every scheduling
iteration -- from-scratch relaxation and incremental cost scaling -- and
picks the solution of whichever finishes first.  In the common case
relaxation wins by a wide margin; under oversubscription or heavy contention
relaxation degrades badly and incremental cost scaling bounds the placement
latency.  Running both is cheap because each algorithm is single-threaded.

The Python reproduction executes the algorithms sequentially (the GIL makes
thread-level parallelism pointless for pure-Python CPU-bound work) and
models the concurrent deployment the paper describes: the *effective*
algorithm runtime reported for a scheduling iteration is the minimum of the
two runtimes, exactly as if they had run on two cores, while the reported
total work is the sum.  Both numbers are exposed so experiments can reason
about either.

After each iteration the winning solution is installed as the warm-start
state of the incremental cost scaling instance (via price refine, Section
6.2), so the next run benefits regardless of which algorithm produced it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork
from repro.solvers.base import Solver, SolverResult
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.relaxation import RelaxationSolver


@dataclass
class DualExecutionResult:
    """Outcome of one speculative dual-algorithm scheduling iteration.

    Attributes:
        winner: The result whose algorithm finished first; its flow is the
            one written to the network.
        relaxation: The relaxation run's result.
        cost_scaling: The (incremental) cost scaling run's result.
        effective_runtime_seconds: min of the two runtimes -- the placement
            latency a concurrent deployment would observe.
        total_work_seconds: Sum of the two runtimes -- the CPU cost paid for
            the speculation.
    """

    winner: SolverResult
    relaxation: SolverResult
    cost_scaling: SolverResult
    effective_runtime_seconds: float
    total_work_seconds: float

    @property
    def winning_algorithm(self) -> str:
        """Name of the faster algorithm in this iteration."""
        return self.winner.algorithm


class DualAlgorithmExecutor(Solver):
    """Run relaxation and incremental cost scaling, keep the faster answer."""

    name = "firmament_dual"

    #: The scheduler may pass ``changes=ChangeBatch`` to :meth:`solve`; the
    #: batch is forwarded to the incremental cost scaling instance so it can
    #: patch its persistent residual network instead of rebuilding it.
    accepts_change_batches = True

    def __init__(
        self,
        relaxation: Optional[RelaxationSolver] = None,
        incremental: Optional[IncrementalCostScalingSolver] = None,
    ) -> None:
        """Create the executor.

        Args:
            relaxation: Relaxation solver instance (a default one with arc
                prioritization enabled is created when omitted).
            incremental: Incremental cost scaling instance (a default one
                with price refine and efficient task removal is created when
                omitted).
        """
        self.relaxation = relaxation or RelaxationSolver(arc_prioritization=True)
        self.incremental = incremental or IncrementalCostScalingSolver()
        self.last_result: Optional[DualExecutionResult] = None

    def solve(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> SolverResult:
        """Solve the network and return the winning algorithm's result."""
        return self.solve_detailed(network, changes).winner

    def solve_detailed(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> DualExecutionResult:
        """Solve the network and return both algorithms' results.

        The winning flow is the one left assigned on the network's arcs.
        """
        # Run relaxation on a copy so the network's arcs end up carrying the
        # winner's flow regardless of execution order.
        relaxation_network = network.copy()
        relaxation_result = self.relaxation.solve(relaxation_network)

        cost_scaling_result = self.incremental.solve(network, changes=changes)

        if relaxation_result.runtime_seconds <= cost_scaling_result.runtime_seconds:
            winner = relaxation_result
            network.set_flows(relaxation_result.flows)
            # Hand the relaxation solution to incremental cost scaling so its
            # next warm start benefits from it (price refine makes the
            # potentials usable, Section 6.2).
            self.incremental.seed(relaxation_result.flows, relaxation_result.potentials)
        else:
            winner = cost_scaling_result

        result = DualExecutionResult(
            winner=winner,
            relaxation=relaxation_result,
            cost_scaling=cost_scaling_result,
            effective_runtime_seconds=min(
                relaxation_result.runtime_seconds, cost_scaling_result.runtime_seconds
            ),
            total_work_seconds=(
                relaxation_result.runtime_seconds + cost_scaling_result.runtime_seconds
            ),
        )
        self.last_result = result
        return result
