"""Speculative dual-algorithm execution (Section 6.1 of the paper).

Firmament's MCMF solver always runs two algorithms on every scheduling
iteration -- from-scratch relaxation and incremental cost scaling -- and
picks the solution of whichever finishes first.  In the common case
relaxation wins by a wide margin; under oversubscription or heavy contention
relaxation degrades badly and incremental cost scaling bounds the placement
latency.  Running both is cheap because each algorithm is single-threaded.

The reproduction provides two executors sharing the race/seed/result logic
in :class:`SpeculativeDualExecutor`:

* :class:`DualAlgorithmExecutor` (this module) runs the algorithms
  *sequentially* and models the concurrent deployment: the *effective*
  runtime reported for an iteration is the minimum of the two runtimes,
  exactly as if they had run on two cores, while the real wall-clock cost
  paid is the sum.  Both numbers are exposed so experiments can reason
  about either.
* :class:`~repro.solvers.parallel_executor.ParallelDualExecutor` races the
  algorithms *for real*: relaxation runs in a persistent worker subprocess
  while incremental cost scaling runs in the parent, the first finisher
  wins, and the loser is cancelled (parent side) or abandoned (worker
  side).  Its measured wall clock per round approximates the winner's solo
  runtime instead of the sum.

After each iteration the winning solution is installed as the warm-start
state of the incremental cost scaling instance (via price refine, Section
6.2), so the next run benefits regardless of which algorithm produced it.

Racing every round is insurance, not a law: when one algorithm has been
winning by a wide margin the loser's run is pure waste (CPU on the
sequential executor, a core plus IPC on the parallel one).  The
``executor_policy`` knob selects between the paper-faithful ``"race"``
(default, always speculate) and ``"auto"``, which consults a small
:class:`RaceCostModel` fed by recent :class:`~repro.solvers.base.
SolverStatistics` -- last wall clocks of both legs, the round's change-batch
size, and relaxation's contention proxy (dual ascents per augmentation, the
mechanism behind the Figure 8/9 degradation) -- to pick per round between
solo relaxation, solo incremental cost scaling, and the full race.  The
model periodically forces a race so the skipped leg's estimate cannot go
permanently stale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.chaos import corrupt_residual_potentials
from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    RoundDeadline,
    RoundDeadlineExceeded,
    SolveAborted,
    Solver,
    SolverResult,
)
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.relaxation import RelaxationSolver

#: Executor policies accepted by the executors, the scheduler, and the CLI.
EXECUTOR_POLICIES = ("race", "auto")


@dataclass
class DualExecutionResult:
    """Outcome of one speculative dual-algorithm scheduling iteration.

    Attributes:
        winner: The result whose algorithm finished first; its flow is the
            one written to the network.
        relaxation: The relaxation run's result; ``None`` when the parallel
            executor abandoned the worker's round before it finished or the
            adaptive policy skipped the leg.
        cost_scaling: The (incremental) cost scaling run's result; ``None``
            when the parallel executor cancelled the run mid-flight or the
            adaptive policy skipped the leg.
        effective_runtime_seconds: The placement latency of the round: the
            modeled min of the two runtimes for the sequential executor,
            the *measured* wall clock for the parallel one.
        total_work_seconds: CPU seconds paid for the speculation (sum of
            the known runtimes; a cancelled run is accounted at the wall
            clock it consumed before cancellation).
        wall_clock_seconds: Real elapsed time of the round in the calling
            process.  For the sequential executor this is the sum of the
            runtimes; for the parallel executor it approximates the
            winner's solo runtime plus IPC overhead.
        executor: Which execution strategy produced this round
            (``"sequential"``, ``"parallel"``, or ``"sequential_fallback"``
            when the parallel executor could not use multiprocessing).
    """

    winner: SolverResult
    relaxation: Optional[SolverResult]
    cost_scaling: Optional[SolverResult]
    effective_runtime_seconds: float
    total_work_seconds: float
    wall_clock_seconds: float = 0.0
    executor: str = "sequential"
    #: Whether both legs actually started this round.  False for the
    #: adaptive policy's solo rounds and the parallel executor's
    #: delta-solo/skipped-worker rounds; True for raced rounds even when
    #: the losing leg's result is ``None`` (cancelled or abandoned) -- the
    #: cost model then learns from the censored observation.
    raced: bool = True

    @property
    def winning_algorithm(self) -> str:
        """Name of the faster algorithm in this iteration."""
        return self.winner.algorithm


class RaceCostModel:
    """Per-round strategy chooser behind ``executor_policy="auto"``.

    A deliberately small first cut: exponential moving averages of the two
    legs' recent runtimes plus relaxation's contention proxy (dual ascents
    per augmentation -- the quantity that explodes exactly when relaxation
    degrades, Figures 8/9).  A leg is only skipped when the other has been
    winning by at least ``margin`` and the skipped leg's estimate is fresh;
    every ``probe_interval`` non-raced rounds a full race is forced so a
    stale estimate cannot lock the policy in.  Oversized change batches
    always race: they are the rounds where Section 6.1's insurance pays.
    """

    def __init__(
        self,
        margin: float = 3.0,
        ema_alpha: float = 0.5,
        contention_limit: float = 3.0,
        probe_interval: int = 8,
        min_observations: int = 2,
        always_race_batch_size: int = 8192,
    ) -> None:
        """Create the model.

        Args:
            margin: Minimum runtime ratio between the legs before the
                slower one is dropped for the round.
            ema_alpha: Weight of the newest observation in the EMAs.
            contention_limit: Solo relaxation is off the table while the
                dual-ascents-per-augmentation EMA exceeds this (contended
                graphs are where relaxation collapses without warning).
            probe_interval: Force a full race after this many consecutive
                solo rounds so both estimates stay fresh.
            min_observations: Race unconditionally until each leg has been
                observed this many times.
        """
        self.margin = margin
        self.ema_alpha = ema_alpha
        self.contention_limit = contention_limit
        self.probe_interval = probe_interval
        self.min_observations = min_observations
        self.always_race_batch_size = always_race_batch_size
        self.relaxation_seconds: Optional[float] = None
        self.cost_scaling_seconds: Optional[float] = None
        self.contention: float = 0.0
        self.relaxation_observations: int = 0
        self.cost_scaling_observations: int = 0
        self.rounds_since_race: int = 0

    def _ema(self, previous: Optional[float], value: float) -> float:
        if previous is None:
            return value
        alpha = self.ema_alpha
        return alpha * value + (1.0 - alpha) * previous

    def observe(
        self,
        relaxation: Optional[SolverResult],
        cost_scaling: Optional[SolverResult],
        wall_clock_seconds: Optional[float] = None,
        raced: Optional[bool] = None,
    ) -> None:
        """Fold one finished round's leg results into the estimates.

        A raced round whose losing leg was cancelled or abandoned (result
        ``None``) still teaches the model: the loser provably needed *at
        least* the round's wall clock, so that censored lower bound feeds
        its EMA.  Without it, a dominant winner would cancel the loser
        every round and the model could never gather the loser-side
        observations it needs to stop racing.
        """
        if raced is None:
            raced = relaxation is not None and cost_scaling is not None
        if raced:
            self.rounds_since_race = 0
        else:
            self.rounds_since_race += 1
        if relaxation is not None:
            self.relaxation_seconds = self._ema(
                self.relaxation_seconds, relaxation.runtime_seconds
            )
            self.relaxation_observations += 1
            stats = relaxation.statistics
            ratio = stats.dual_ascents / max(1, stats.augmentations)
            self.contention = self._ema(self.contention, ratio)
        elif raced and wall_clock_seconds:
            sample = wall_clock_seconds
            if self.relaxation_seconds is not None:
                sample = max(sample, self.relaxation_seconds)
            self.relaxation_seconds = self._ema(self.relaxation_seconds, sample)
            self.relaxation_observations += 1
        if cost_scaling is not None:
            self.cost_scaling_seconds = self._ema(
                self.cost_scaling_seconds, cost_scaling.runtime_seconds
            )
            self.cost_scaling_observations += 1
        elif raced and wall_clock_seconds:
            sample = wall_clock_seconds
            if self.cost_scaling_seconds is not None:
                sample = max(sample, self.cost_scaling_seconds)
            self.cost_scaling_seconds = self._ema(self.cost_scaling_seconds, sample)
            self.cost_scaling_observations += 1

    def choose(self, batch_size: Optional[int], delta_armed: bool) -> str:
        """Pick this round's strategy.

        Returns ``"race"``, ``"relaxation"``, or ``"cost_scaling"``.

        Args:
            batch_size: Size of the round's change batch (None when no
                batch was supplied -- a rebuild-style round).
            delta_armed: Whether incremental cost scaling would take the
                pure delta path this round (bounded O(|changes|) repair).
        """
        if (
            self.relaxation_observations < self.min_observations
            or self.cost_scaling_observations < self.min_observations
        ):
            return "race"
        if self.rounds_since_race >= self.probe_interval:
            return "race"
        if batch_size is None or batch_size > self.always_race_batch_size:
            # Rebuild-style rounds (no change batch) and oversized batches
            # are the highest-variance rounds -- exactly where Section
            # 6.1's insurance pays -- so they always race.
            return "race"
        relax = self.relaxation_seconds
        scaling = self.cost_scaling_seconds
        if delta_armed and scaling is not None and scaling <= relax:
            # A delta-armed repair that has also been *measuring* faster
            # cannot lose to from-scratch relaxation.
            return "cost_scaling"
        if scaling * self.margin <= relax:
            return "cost_scaling"
        if relax * self.margin <= scaling and self.contention <= self.contention_limit:
            return "relaxation"
        return "race"


class SpeculativeDualExecutor(Solver):
    """Shared race/seed/result logic of the two dual-algorithm executors.

    Subclasses implement :meth:`solve_detailed`; the base class owns the
    component solvers, the winner-seeds-warm-start rule, the adaptive race
    policy, and the race counters used by benchmarks and tests for
    observability.
    """

    #: The scheduler may pass ``changes=ChangeBatch`` to :meth:`solve`; the
    #: batch is forwarded to the incremental cost scaling instance so it can
    #: patch its persistent residual network instead of rebuilding it.
    accepts_change_batches = True

    def __init__(
        self,
        relaxation: Optional[RelaxationSolver] = None,
        incremental: Optional[IncrementalCostScalingSolver] = None,
        price_refine: str = "auto",
        executor_policy: str = "race",
        cost_model: Optional[RaceCostModel] = None,
        round_deadline_seconds: Optional[float] = None,
        relaxation_ascent_cap: Optional[int] = None,
        chaos=None,
    ) -> None:
        """Create the executor.

        Args:
            relaxation: Relaxation solver instance (a default one with arc
                prioritization enabled is created when omitted).
            incremental: Incremental cost scaling instance (a default one
                with price refine and efficient task removal is created when
                omitted).
            price_refine: Price-refine variant for the default incremental
                instance (``"spfa"``, ``"dijkstra"``, or ``"auto"``);
                ignored when ``incremental`` is passed explicitly.
            executor_policy: ``"race"`` (default) speculates every round,
                exactly as the paper deploys; ``"auto"`` consults the
                :class:`RaceCostModel` to skip the predictable loser's leg.
            cost_model: Model instance driving ``"auto"`` (a default one is
                created when omitted; ignored under ``"race"``).
            round_deadline_seconds: Optional per-round latency budget.  When
                set, every leg runs under a :class:`RoundDeadline`: cost
                scaling degrades to the current coarser epsilon at the soft
                deadline, relaxation (and any leg still running at the hard
                deadline) is aborted, and a round in which *no* leg produced
                a feasible flow raises :class:`RoundDeadlineExceeded` so the
                scheduler can reuse the previous placements instead of
                stalling.
            relaxation_ascent_cap: Optional cap on relaxation dual ascents
                per run (the relaxation-side degradation knob; exceeded →
                the round falls back to the cost-scaling leg).
            chaos: Optional :class:`repro.chaos.ChaosPolicy` injecting
                deterministic faults; ``None`` (default) is a no-op.
        """
        if executor_policy not in EXECUTOR_POLICIES:
            raise ValueError(
                f"unknown executor policy {executor_policy!r}; "
                f"choose from {EXECUTOR_POLICIES}"
            )
        self.relaxation = relaxation or RelaxationSolver(arc_prioritization=True)
        self.incremental = incremental or IncrementalCostScalingSolver(
            price_refine=price_refine
        )
        self.executor_policy = executor_policy
        self.cost_model = cost_model or RaceCostModel()
        self.round_deadline_seconds = round_deadline_seconds
        if relaxation_ascent_cap is not None:
            self.relaxation.ascent_cap = relaxation_ascent_cap
        self.chaos = chaos
        #: Rounds that blew their hard deadline with no usable result
        #: (each raised :class:`RoundDeadlineExceeded`).
        self.deadline_exceeded_rounds: int = 0
        self._chaos_round: int = 0
        self.last_result: Optional[DualExecutionResult] = None
        #: Race observability counters, accumulated across rounds.
        self.rounds: int = 0
        self.relaxation_wins: int = 0
        self.cost_scaling_wins: int = 0
        self.total_wall_clock_seconds: float = 0.0
        self.total_winner_runtime_seconds: float = 0.0
        self.total_work_seconds: float = 0.0
        #: Rounds the adaptive policy served with a single leg.
        self.solo_relaxation_rounds: int = 0
        self.solo_cost_scaling_rounds: int = 0

    def solve(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> SolverResult:
        """Solve the network and return the winning algorithm's result."""
        return self.solve_detailed(network, changes).winner

    def solve_detailed(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> DualExecutionResult:
        """Solve the network and return both algorithms' results."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (worker processes); idempotent."""

    def reset_counters(self) -> None:
        """Zero the race counters (e.g. after a warm-up round).

        Benchmarks measuring steady-state racing call this after priming
        the executor, so one-time costs (worker spawn, interpreter warm-up,
        the first full-snapshot serialization) do not pollute the per-round
        accounting.  Solver warm state is left untouched.
        """
        self.rounds = 0
        self.relaxation_wins = 0
        self.cost_scaling_wins = 0
        self.total_wall_clock_seconds = 0.0
        self.total_winner_runtime_seconds = 0.0
        self.total_work_seconds = 0.0
        self.solo_relaxation_rounds = 0
        self.solo_cost_scaling_rounds = 0

    # ------------------------------------------------------------------ #
    # Shared race plumbing
    # ------------------------------------------------------------------ #
    def _begin_chaos_round(self):
        """Advance the chaos round clock and inject solver-state faults.

        Returns ``(chaos, round_index)``; both executors call this once at
        the top of :meth:`solve_detailed`.  ``residual_corruption`` is the
        one fault injected here because it lives in shared solver state
        (the incremental solver's persistent residual); the worker-process
        faults only exist in the parallel subclass.  Corrupting also arms
        ``validate_residual`` so the poisoned state must be *detected*, not
        merely survived.
        """
        chaos = self.chaos
        round_index = self._chaos_round
        self._chaos_round += 1
        if chaos is not None:
            residual = self.incremental.persistent_residual
            if residual is not None and chaos.fires("residual_corruption", round_index):
                corrupt_residual_potentials(residual, seed=chaos.seed + round_index)
                self.incremental.validate_residual = True
        return chaos, round_index

    def _choose_strategy(self, changes: Optional[ChangeBatch]) -> str:
        """Resolve the round's strategy under the configured policy."""
        if self.executor_policy != "auto":
            return "race"
        return self.cost_model.choose(
            batch_size=len(changes) if changes is not None else None,
            delta_armed=self.incremental.can_solve_delta(changes),
        )

    def _install_relaxation_win(
        self, network: FlowNetwork, relaxation_result: SolverResult
    ) -> None:
        """Make a winning relaxation solution the network's and the warm state.

        The relaxation flow is written onto the network's arcs and handed to
        the incremental cost scaling instance so its next warm start benefits
        from it (price refine makes the potentials usable, Section 6.2).
        """
        network.set_flows(relaxation_result.flows)
        self.incremental.seed(relaxation_result.flows, relaxation_result.potentials)

    def _record_round(self, result: DualExecutionResult) -> DualExecutionResult:
        """Account a finished round in the executor's counters.

        Leg-cost attribution is *round-level*: the cost-scaling leg's
        ``price_refine_seconds`` / ``price_refine_passes`` and the
        relaxation leg's ``relaxation_tree_nodes`` / ``dual_ascents`` are
        folded into the winning result's statistics whenever the other leg
        won (mirroring how the scheduler attributes
        ``graph_update_seconds``).  Timelines then show what every round
        paid for each leg instead of only the rounds that leg happened to
        win.
        """
        loser = result.cost_scaling
        if (
            loser is not None
            and result.winner is not loser
            and loser.statistics is not result.winner.statistics
        ):
            result.winner.statistics.price_refine_seconds += (
                loser.statistics.price_refine_seconds
            )
            result.winner.statistics.price_refine_passes += (
                loser.statistics.price_refine_passes
            )
        relaxation_loser = result.relaxation
        if (
            relaxation_loser is not None
            and result.winner is not relaxation_loser
            and relaxation_loser.statistics is not result.winner.statistics
        ):
            result.winner.statistics.relaxation_tree_nodes += (
                relaxation_loser.statistics.relaxation_tree_nodes
            )
            result.winner.statistics.dual_ascents += (
                relaxation_loser.statistics.dual_ascents
            )
        self._tally_round(result)
        self.cost_model.observe(
            result.relaxation,
            result.cost_scaling,
            wall_clock_seconds=result.wall_clock_seconds,
            raced=result.raced,
        )
        return result

    def _tally_round(self, result: DualExecutionResult) -> None:
        """Accumulate one round into the executor's counters.

        Shared by :meth:`_record_round` and the parallel executor's
        fallback path (which must *not* re-run the stat folding or the
        cost-model observation -- the inner sequential executor already
        did both); every counter lives here so the two paths cannot
        drift.
        """
        self.rounds += 1
        if result.winner.algorithm == self.relaxation.name:
            self.relaxation_wins += 1
        else:
            self.cost_scaling_wins += 1
        if not result.raced and result.executor != "parallel":
            # Sequential and fallback solo rounds are classified here from
            # the result shape; the parallel executor counts its own solo
            # rounds at the decision site instead, where delta-solos and
            # policy solos are distinguishable.
            if result.cost_scaling is None:
                self.solo_relaxation_rounds += 1
            elif result.relaxation is None:
                self.solo_cost_scaling_rounds += 1
        self.total_wall_clock_seconds += result.wall_clock_seconds
        self.total_winner_runtime_seconds += result.winner.runtime_seconds
        self.total_work_seconds += result.total_work_seconds
        self.last_result = result


class DualAlgorithmExecutor(SpeculativeDualExecutor):
    """Run relaxation and incremental cost scaling sequentially, keep the
    faster answer (the modeled concurrent deployment)."""

    name = "firmament_dual"

    def solve_detailed(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> DualExecutionResult:
        """Solve the network and return both algorithms' results.

        The winning flow is the one left assigned on the network's arcs.
        Under ``executor_policy="auto"`` the round may run a single leg;
        the skipped leg's slot in the result is ``None``.

        With ``round_deadline_seconds`` set, each leg runs under its own
        :class:`RoundDeadline` (the legs model *concurrent* algorithms, so
        each gets the full budget): relaxation is aborted at the hard
        deadline or its ascent cap, cost scaling stops its epsilon ladder
        at the soft deadline (``optimal=False``) and is aborted outright at
        the hard one.  A leg that died degrades the round to the surviving
        leg; if both died, :class:`RoundDeadlineExceeded` is raised so the
        caller reuses the previous placements.
        """
        started = time.perf_counter()
        self._begin_chaos_round()
        strategy = self._choose_strategy(changes)
        budget = self.round_deadline_seconds
        deadline_hit = False

        relaxation_result: Optional[SolverResult] = None
        if strategy != "cost_scaling":
            # Run relaxation on a copy so the network's arcs end up carrying
            # the winner's flow regardless of execution order.  The round's
            # change batch is forwarded so the solver can patch its
            # persistent residual instead of rebuilding it.
            relaxation_network = network.copy()
            if budget is not None:
                self.relaxation.abort_check = RoundDeadline(budget).hard_expired
            try:
                relaxation_result = self.relaxation.solve(
                    relaxation_network, changes=changes
                )
            except SolveAborted:
                # Hard deadline or ascent cap: degrade to the other leg.
                relaxation_result = None
                deadline_hit = True
            finally:
                self.relaxation.abort_check = None

        if strategy == "relaxation" and relaxation_result is not None:
            self._install_relaxation_win(network, relaxation_result)
            runtime = relaxation_result.runtime_seconds
            return self._record_round(
                DualExecutionResult(
                    winner=relaxation_result,
                    relaxation=relaxation_result,
                    cost_scaling=None,
                    effective_runtime_seconds=runtime,
                    total_work_seconds=runtime,
                    wall_clock_seconds=time.perf_counter() - started,
                    executor="sequential",
                    raced=False,
                )
            )

        cost_scaling_result: Optional[SolverResult] = None
        deadline: Optional[RoundDeadline] = None
        if budget is not None:
            deadline = RoundDeadline(budget)
            self.incremental.deadline_check = deadline
            self.incremental.abort_check = deadline.hard_expired
        try:
            cost_scaling_result = self.incremental.solve(network, changes=changes)
        except SolveAborted:
            cost_scaling_result = None
            deadline_hit = True
        finally:
            if deadline is not None:
                self.incremental.deadline_check = None
                self.incremental.abort_check = None

        if relaxation_result is None and cost_scaling_result is None:
            self.deadline_exceeded_rounds += 1
            raise RoundDeadlineExceeded(
                "no solver produced a feasible flow within the round budget"
                + (f" ({budget:.3f}s)" if budget is not None else "")
            )

        if relaxation_result is None:
            # Policy solo, or a raced/solo relaxation leg that died at the
            # deadline: the cost-scaling leg serves the round alone.
            if deadline_hit:
                cost_scaling_result.statistics.deadline_hits += 1
            runtime = cost_scaling_result.runtime_seconds
            return self._record_round(
                DualExecutionResult(
                    winner=cost_scaling_result,
                    relaxation=None,
                    cost_scaling=cost_scaling_result,
                    effective_runtime_seconds=runtime,
                    total_work_seconds=runtime,
                    wall_clock_seconds=time.perf_counter() - started,
                    executor="sequential",
                    raced=False,
                )
            )

        if cost_scaling_result is None:
            # Race round whose cost-scaling leg died at the hard deadline.
            self._install_relaxation_win(network, relaxation_result)
            relaxation_result.statistics.deadline_hits += 1
            runtime = relaxation_result.runtime_seconds
            return self._record_round(
                DualExecutionResult(
                    winner=relaxation_result,
                    relaxation=relaxation_result,
                    cost_scaling=None,
                    effective_runtime_seconds=runtime,
                    total_work_seconds=runtime,
                    wall_clock_seconds=time.perf_counter() - started,
                    executor="sequential",
                    raced=False,
                )
            )

        if relaxation_result.runtime_seconds <= cost_scaling_result.runtime_seconds:
            winner = relaxation_result
            self._install_relaxation_win(network, relaxation_result)
        else:
            winner = cost_scaling_result

        result = DualExecutionResult(
            winner=winner,
            relaxation=relaxation_result,
            cost_scaling=cost_scaling_result,
            effective_runtime_seconds=min(
                relaxation_result.runtime_seconds, cost_scaling_result.runtime_seconds
            ),
            total_work_seconds=(
                relaxation_result.runtime_seconds + cost_scaling_result.runtime_seconds
            ),
            wall_clock_seconds=time.perf_counter() - started,
            executor="sequential",
        )
        return self._record_round(result)
