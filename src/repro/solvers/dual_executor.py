"""Speculative dual-algorithm execution (Section 6.1 of the paper).

Firmament's MCMF solver always runs two algorithms on every scheduling
iteration -- from-scratch relaxation and incremental cost scaling -- and
picks the solution of whichever finishes first.  In the common case
relaxation wins by a wide margin; under oversubscription or heavy contention
relaxation degrades badly and incremental cost scaling bounds the placement
latency.  Running both is cheap because each algorithm is single-threaded.

The reproduction provides two executors sharing the race/seed/result logic
in :class:`SpeculativeDualExecutor`:

* :class:`DualAlgorithmExecutor` (this module) runs the algorithms
  *sequentially* and models the concurrent deployment: the *effective*
  runtime reported for an iteration is the minimum of the two runtimes,
  exactly as if they had run on two cores, while the real wall-clock cost
  paid is the sum.  Both numbers are exposed so experiments can reason
  about either.
* :class:`~repro.solvers.parallel_executor.ParallelDualExecutor` races the
  algorithms *for real*: relaxation runs in a persistent worker subprocess
  while incremental cost scaling runs in the parent, the first finisher
  wins, and the loser is cancelled (parent side) or abandoned (worker
  side).  Its measured wall clock per round approximates the winner's solo
  runtime instead of the sum.

After each iteration the winning solution is installed as the warm-start
state of the incremental cost scaling instance (via price refine, Section
6.2), so the next run benefits regardless of which algorithm produced it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork
from repro.solvers.base import Solver, SolverResult
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.relaxation import RelaxationSolver


@dataclass
class DualExecutionResult:
    """Outcome of one speculative dual-algorithm scheduling iteration.

    Attributes:
        winner: The result whose algorithm finished first; its flow is the
            one written to the network.
        relaxation: The relaxation run's result; ``None`` when the parallel
            executor abandoned the worker's round before it finished.
        cost_scaling: The (incremental) cost scaling run's result; ``None``
            when the parallel executor cancelled the run mid-flight.
        effective_runtime_seconds: The placement latency of the round: the
            modeled min of the two runtimes for the sequential executor,
            the *measured* wall clock for the parallel one.
        total_work_seconds: CPU seconds paid for the speculation (sum of
            the known runtimes; a cancelled run is accounted at the wall
            clock it consumed before cancellation).
        wall_clock_seconds: Real elapsed time of the round in the calling
            process.  For the sequential executor this is the sum of the
            runtimes; for the parallel executor it approximates the
            winner's solo runtime plus IPC overhead.
        executor: Which execution strategy produced this round
            (``"sequential"``, ``"parallel"``, or ``"sequential_fallback"``
            when the parallel executor could not use multiprocessing).
    """

    winner: SolverResult
    relaxation: Optional[SolverResult]
    cost_scaling: Optional[SolverResult]
    effective_runtime_seconds: float
    total_work_seconds: float
    wall_clock_seconds: float = 0.0
    executor: str = "sequential"

    @property
    def winning_algorithm(self) -> str:
        """Name of the faster algorithm in this iteration."""
        return self.winner.algorithm


class SpeculativeDualExecutor(Solver):
    """Shared race/seed/result logic of the two dual-algorithm executors.

    Subclasses implement :meth:`solve_detailed`; the base class owns the
    component solvers, the winner-seeds-warm-start rule, and the race
    counters used by benchmarks and tests for observability.
    """

    #: The scheduler may pass ``changes=ChangeBatch`` to :meth:`solve`; the
    #: batch is forwarded to the incremental cost scaling instance so it can
    #: patch its persistent residual network instead of rebuilding it.
    accepts_change_batches = True

    def __init__(
        self,
        relaxation: Optional[RelaxationSolver] = None,
        incremental: Optional[IncrementalCostScalingSolver] = None,
        price_refine: str = "auto",
    ) -> None:
        """Create the executor.

        Args:
            relaxation: Relaxation solver instance (a default one with arc
                prioritization enabled is created when omitted).
            incremental: Incremental cost scaling instance (a default one
                with price refine and efficient task removal is created when
                omitted).
            price_refine: Price-refine variant for the default incremental
                instance (``"spfa"``, ``"dijkstra"``, or ``"auto"``);
                ignored when ``incremental`` is passed explicitly.
        """
        self.relaxation = relaxation or RelaxationSolver(arc_prioritization=True)
        self.incremental = incremental or IncrementalCostScalingSolver(
            price_refine=price_refine
        )
        self.last_result: Optional[DualExecutionResult] = None
        #: Race observability counters, accumulated across rounds.
        self.rounds: int = 0
        self.relaxation_wins: int = 0
        self.cost_scaling_wins: int = 0
        self.total_wall_clock_seconds: float = 0.0
        self.total_winner_runtime_seconds: float = 0.0
        self.total_work_seconds: float = 0.0

    def solve(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> SolverResult:
        """Solve the network and return the winning algorithm's result."""
        return self.solve_detailed(network, changes).winner

    def solve_detailed(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> DualExecutionResult:
        """Solve the network and return both algorithms' results."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (worker processes); idempotent."""

    def reset_counters(self) -> None:
        """Zero the race counters (e.g. after a warm-up round).

        Benchmarks measuring steady-state racing call this after priming
        the executor, so one-time costs (worker spawn, interpreter warm-up,
        the first full-snapshot serialization) do not pollute the per-round
        accounting.  Solver warm state is left untouched.
        """
        self.rounds = 0
        self.relaxation_wins = 0
        self.cost_scaling_wins = 0
        self.total_wall_clock_seconds = 0.0
        self.total_winner_runtime_seconds = 0.0
        self.total_work_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Shared race plumbing
    # ------------------------------------------------------------------ #
    def _install_relaxation_win(
        self, network: FlowNetwork, relaxation_result: SolverResult
    ) -> None:
        """Make a winning relaxation solution the network's and the warm state.

        The relaxation flow is written onto the network's arcs and handed to
        the incremental cost scaling instance so its next warm start benefits
        from it (price refine makes the potentials usable, Section 6.2).
        """
        network.set_flows(relaxation_result.flows)
        self.incremental.seed(relaxation_result.flows, relaxation_result.potentials)

    def _record_round(self, result: DualExecutionResult) -> DualExecutionResult:
        """Account a finished round in the executor's counters.

        Price-refine attribution is *round-level*: the refine runs inside
        the cost-scaling leg whether or not that leg wins, so when
        relaxation wins its statistics inherit the leg's
        ``price_refine_seconds`` / ``price_refine_passes`` (mirroring how
        the scheduler attributes ``graph_update_seconds`` onto the winning
        result).  Timelines then show what every round paid for price
        refine instead of only the rounds cost scaling happened to win.
        """
        self.rounds += 1
        loser = result.cost_scaling
        if (
            loser is not None
            and result.winner is not loser
            and loser.statistics is not result.winner.statistics
        ):
            result.winner.statistics.price_refine_seconds += (
                loser.statistics.price_refine_seconds
            )
            result.winner.statistics.price_refine_passes += (
                loser.statistics.price_refine_passes
            )
        if result.winner.algorithm == self.relaxation.name:
            self.relaxation_wins += 1
        else:
            self.cost_scaling_wins += 1
        self.total_wall_clock_seconds += result.wall_clock_seconds
        self.total_winner_runtime_seconds += result.winner.runtime_seconds
        self.total_work_seconds += result.total_work_seconds
        self.last_result = result
        return result


class DualAlgorithmExecutor(SpeculativeDualExecutor):
    """Run relaxation and incremental cost scaling sequentially, keep the
    faster answer (the modeled concurrent deployment)."""

    name = "firmament_dual"

    def solve_detailed(
        self, network: FlowNetwork, changes: Optional[ChangeBatch] = None
    ) -> DualExecutionResult:
        """Solve the network and return both algorithms' results.

        The winning flow is the one left assigned on the network's arcs.
        """
        started = time.perf_counter()
        # Run relaxation on a copy so the network's arcs end up carrying the
        # winner's flow regardless of execution order.
        relaxation_network = network.copy()
        relaxation_result = self.relaxation.solve(relaxation_network)

        cost_scaling_result = self.incremental.solve(network, changes=changes)

        if relaxation_result.runtime_seconds <= cost_scaling_result.runtime_seconds:
            winner = relaxation_result
            self._install_relaxation_win(network, relaxation_result)
        else:
            winner = cost_scaling_result

        result = DualExecutionResult(
            winner=winner,
            relaxation=relaxation_result,
            cost_scaling=cost_scaling_result,
            effective_runtime_seconds=min(
                relaxation_result.runtime_seconds, cost_scaling_result.runtime_seconds
            ),
            total_work_seconds=(
                relaxation_result.runtime_seconds + cost_scaling_result.runtime_seconds
            ),
            wall_clock_seconds=time.perf_counter() - started,
            executor="sequential",
        )
        return self._record_round(result)
