"""Common solver interface, result types, and the paper's static tables.

Every MCMF solver implements :class:`Solver`: it receives a
:class:`~repro.flow.graph.FlowNetwork`, computes a minimum-cost maximum
flow, assigns the flow onto the network's arcs, and returns a
:class:`SolverResult` describing the solution and runtime statistics.

The module also records Table 1 (worst-case complexities) and Table 2
(per-iteration preconditions) from the paper as data so benchmarks and
documentation can render them.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.flow.graph import FlowNetwork


@dataclass
class SolverStatistics:
    """Counters collected by a solver during one run.

    Not every solver populates every counter; unused counters stay zero.
    """

    iterations: int = 0
    augmentations: int = 0
    pushes: int = 0
    relabels: int = 0
    potential_updates: int = 0
    negative_cycles_canceled: int = 0
    arcs_scanned: int = 0
    epsilon_phases: int = 0
    warm_start: bool = False
    #: Change-application counters of the delta path: arcs and nodes the
    #: solver patched in its persistent residual from the round's change
    #: batch (zero on rebuild rounds).
    arcs_patched: int = 0
    nodes_touched: int = 0
    #: Wall-clock seconds spent inside price refine during this run, and the
    #: number of label-queue pops its sweeps performed (SPFA dequeues plus
    #: Dijkstra heap settles).  Price refine dominates warm-rebuild rounds,
    #: so both are surfaced through ``ScheduleRecord`` and ``MetricsSummary``
    #: to attribute per-round time; the pop count doubles as the
    #: degeneration detector (a label-correcting pathology shows up as a
    #: pop count orders of magnitude above the node count).
    price_refine_seconds: float = 0.0
    price_refine_passes: int = 0
    #: Relaxation observability (Section 4 / Figure 7-9 attribution): nodes
    #: added across all zero-reduced-cost trees and the number of dual
    #: ascent steps performed.  Zero for the other algorithms.  The dual
    #: executors fold the relaxation leg's counters into the round's
    #: winning result (like ``price_refine_seconds``), so timelines show
    #: the relaxation work every round paid regardless of who won.
    relaxation_tree_nodes: int = 0
    dual_ascents: int = 0
    #: Worker transport accounting of the round (parallel executor only):
    #: whether the relaxation worker was fed a full DIMACS snapshot or an
    #: incremental delta/resync payload this round (at most one of the two
    #: is 1; both zero when the worker was not consulted).
    snapshot_ships: int = 0
    delta_ships: int = 0
    #: Wall-clock seconds the graph manager spent producing this round's
    #: network (filled in by the scheduler, not the solver), so fig14-style
    #: runs can attribute per-round time to graph maintenance vs solving.
    graph_update_seconds: float = 0.0
    #: Self-healing round pipeline attribution.  ``deadline_hits`` counts
    #: deadline firings that truncated or aborted work this round;
    #: ``degraded_round`` flags a round whose result is deliberately
    #: non-optimal (epsilon-truncated ladder or previous-placement reuse);
    #: ``worker_respawns`` counts relaxation-worker respawns performed
    #: during the round; ``breaker_open`` flags a round served while the
    #: worker circuit breaker was not closed (sequential fallback rounds).
    deadline_hits: int = 0
    degraded_round: int = 0
    worker_respawns: int = 0
    breaker_open: int = 0
    #: Sharded-round attribution (:mod:`repro.core.sharding`): how many
    #: cells solved this round, which cell's solve took longest (the round's
    #: wall clock in concurrent gather is the straggler's time, so tail
    #: latency is attributed to a specific cell rather than "the cluster"),
    #: that cell's solve seconds, and how many queued/unscheduled tasks the
    #: cross-cell balancer re-homed after the round.  All zero (straggler
    #: cell ``-1``) for monolithic schedulers.
    cells_solved: int = 0
    straggler_cell: int = -1
    straggler_seconds: float = 0.0
    cross_cell_migrations: int = 0

    def merge(self, other: "SolverStatistics") -> "SolverStatistics":
        """Return statistics summing this run with another."""
        return SolverStatistics(
            iterations=self.iterations + other.iterations,
            augmentations=self.augmentations + other.augmentations,
            pushes=self.pushes + other.pushes,
            relabels=self.relabels + other.relabels,
            potential_updates=self.potential_updates + other.potential_updates,
            negative_cycles_canceled=(
                self.negative_cycles_canceled + other.negative_cycles_canceled
            ),
            arcs_scanned=self.arcs_scanned + other.arcs_scanned,
            epsilon_phases=self.epsilon_phases + other.epsilon_phases,
            warm_start=self.warm_start or other.warm_start,
            arcs_patched=self.arcs_patched + other.arcs_patched,
            nodes_touched=self.nodes_touched + other.nodes_touched,
            price_refine_seconds=self.price_refine_seconds
            + other.price_refine_seconds,
            price_refine_passes=self.price_refine_passes
            + other.price_refine_passes,
            relaxation_tree_nodes=self.relaxation_tree_nodes
            + other.relaxation_tree_nodes,
            dual_ascents=self.dual_ascents + other.dual_ascents,
            snapshot_ships=self.snapshot_ships + other.snapshot_ships,
            delta_ships=self.delta_ships + other.delta_ships,
            graph_update_seconds=self.graph_update_seconds
            + other.graph_update_seconds,
            deadline_hits=self.deadline_hits + other.deadline_hits,
            degraded_round=max(self.degraded_round, other.degraded_round),
            worker_respawns=self.worker_respawns + other.worker_respawns,
            breaker_open=max(self.breaker_open, other.breaker_open),
            cells_solved=self.cells_solved + other.cells_solved,
            # The slower side's cell keeps the straggler attribution.
            straggler_cell=(
                self.straggler_cell
                if self.straggler_seconds >= other.straggler_seconds
                else other.straggler_cell
            ),
            straggler_seconds=max(self.straggler_seconds, other.straggler_seconds),
            cross_cell_migrations=(
                self.cross_cell_migrations + other.cross_cell_migrations
            ),
        )


@dataclass
class SolverResult:
    """Outcome of a solver run.

    Attributes:
        algorithm: Name of the algorithm that produced the solution.
        total_cost: Cost of the computed min-cost flow.
        flows: Sparse ``{(src, dst): flow}`` mapping of non-zero arc flows.
        potentials: Node potentials (dual variables) keyed by node id.
        runtime_seconds: Wall-clock algorithm runtime.
        statistics: Low-level operation counters.
        optimal: Whether the solution is optimal (False only when a solver
            was deliberately terminated early, Section 5.1).
    """

    algorithm: str
    total_cost: int
    flows: Dict[Tuple[int, int], int]
    potentials: Dict[int, int]
    runtime_seconds: float
    statistics: SolverStatistics = field(default_factory=SolverStatistics)
    optimal: bool = True

    @property
    def total_flow_out_of_sources(self) -> int:
        """Return total flow leaving source nodes (for sanity checks)."""
        return sum(self.flows.values())


class Solver(abc.ABC):
    """Abstract base class for min-cost max-flow solvers."""

    #: Human-readable algorithm name; overridden by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def solve(self, network: FlowNetwork) -> SolverResult:
        """Compute a min-cost max-flow and assign it to ``network``'s arcs."""

    def _timed(self, start_time: float) -> float:
        """Return elapsed wall-clock seconds since ``start_time``."""
        return time.perf_counter() - start_time


class SolverError(RuntimeError):
    """Raised when a solver cannot produce a feasible solution."""


class InfeasibleProblemError(SolverError):
    """Raised when the network admits no feasible flow routing all supply."""


class RoundDeadlineExceeded(SolverError):
    """Raised when a round's latency budget expired with no usable result.

    Soft deadline expiry degrades gracefully (cost scaling stops its
    epsilon ladder at the current coarser epsilon, relaxation caps its
    ascents); this error is the last resort — the hard deadline passed and
    *no* solver produced a feasible flow, so the scheduler must reuse the
    previous round's placements and record a degraded round rather than
    stall (ROADMAP item 5's latency-budget half, fig10's approximation
    claim applied to latency).
    """


#: Floor for the deadline watchdog period: the granularity at which
#: cooperative checks are expected to observe an expired budget.
DEFAULT_WATCHDOG_PERIOD = 0.05


class RoundDeadline:
    """Wall-clock budget for one scheduling round, with a grace watchdog.

    ``expired()`` is the *soft* deadline: cooperative ``deadline_check``
    hooks poll it to stop doing optional work (finish the current epsilon
    phase, skip the polish).  ``hard_expired()`` adds one watchdog period
    of grace and is wired into the existing ``abort_check`` machinery to
    cancel a solver outright — so no round overruns its budget by more
    than the watchdog period plus one cooperative-check interval.

    Args:
        budget_seconds: The round's latency budget (> 0).
        watchdog_period: Grace period between the soft and hard deadlines;
            defaults to ``max(DEFAULT_WATCHDOG_PERIOD, 0.25 * budget)``.
        clock: Monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        budget_seconds: float,
        watchdog_period: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if budget_seconds <= 0:
            raise ValueError("budget_seconds must be > 0")
        self.budget_seconds = float(budget_seconds)
        if watchdog_period is None:
            watchdog_period = max(DEFAULT_WATCHDOG_PERIOD, 0.25 * self.budget_seconds)
        if watchdog_period < 0:
            raise ValueError("watchdog_period must be >= 0")
        self.watchdog_period = float(watchdog_period)
        self._clock = clock
        self.started_at = clock()

    def elapsed(self) -> float:
        return self._clock() - self.started_at

    def remaining(self) -> float:
        """Seconds left until the soft deadline (negative once expired)."""
        return self.budget_seconds - self.elapsed()

    def expired(self) -> bool:
        return self.elapsed() >= self.budget_seconds

    def hard_expired(self) -> bool:
        return self.elapsed() >= self.budget_seconds + self.watchdog_period

    def __call__(self) -> bool:
        """Alias for :meth:`expired`, so a deadline is a ``deadline_check``."""
        return self.expired()


class SolveAborted(Exception):
    """Raised when a cooperative abort check cancelled a solver run.

    The speculative parallel executor (Section 6.1 deployed for real,
    :mod:`repro.solvers.parallel_executor`) installs an abort check on the
    parent-side cost scaling run; when the relaxation worker subprocess
    delivers its solution first, the check fires and the losing run is
    cancelled mid-flight instead of finishing pointless work.  A solver
    whose run was aborted makes no guarantee about its internal state;
    stateful wrappers must discard or re-seed their warm state.
    """


#: Table 1 of the paper: worst-case time complexities.  ``N`` is the number of
#: nodes, ``M`` the number of arcs, ``C`` the largest arc cost and ``U`` the
#: largest arc capacity.  In scheduling graphs ``M > N > C > U``.
COMPLEXITY_TABLE: Dict[str, str] = {
    "relaxation": "O(M^3 * C * U^2)",
    "cycle_canceling": "O(N * M^2 * C * U)",
    "cost_scaling": "O(N^2 * M * log(N * C))",
    "successive_shortest_path": "O(N^2 * U * log(N))",
}

#: Table 2 of the paper: invariants each algorithm maintains before every
#: internal iteration.  Cost scaling requires both feasibility and
#: epsilon-optimality, which is what makes it hard to incrementalize.
PRECONDITION_TABLE: Dict[str, Dict[str, bool]] = {
    "relaxation": {
        "feasibility": False,
        "reduced_cost_optimality": True,
        "epsilon_optimality": False,
    },
    "cycle_canceling": {
        "feasibility": True,
        "reduced_cost_optimality": False,
        "epsilon_optimality": False,
    },
    "cost_scaling": {
        "feasibility": True,
        "reduced_cost_optimality": False,
        "epsilon_optimality": True,
    },
    "successive_shortest_path": {
        "feasibility": False,
        "reduced_cost_optimality": True,
        "epsilon_optimality": False,
    },
}


def expected_total_supply(network: FlowNetwork) -> int:
    """Return the total positive supply that a feasible solution must route."""
    return sum(node.supply for node in network.nodes() if node.supply > 0)
