"""Top-level argument parsing for the ``firmament-repro`` command."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.cli import serve_command, simulate_command, solve_command, trace_command
from repro.solvers.base import SolverError


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level parser with all subcommands registered."""
    parser = argparse.ArgumentParser(
        prog="firmament-repro",
        description=(
            "Reproduction of Firmament (OSDI 2016): solve scheduling flow "
            "networks, simulate cluster scheduling, and inspect synthetic traces."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command")
    solve_command.register(subparsers)
    simulate_command.register(subparsers)
    trace_command.register(subparsers)
    serve_command.register(subparsers)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI and return a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except (ValueError, OSError, SolverError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - direct module execution
    sys.exit(main())
