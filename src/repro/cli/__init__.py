"""Command-line interface for the Firmament reproduction.

The ``firmament-repro`` entry point groups four subcommands:

* ``solve`` -- read a flow network in DIMACS min-cost-flow format and solve
  it with any of the implemented MCMF algorithms
  (:mod:`repro.cli.solve_command`).
* ``simulate`` -- run a synthetic Google-like trace against the Firmament
  scheduler or one of the baseline schedulers and print the metrics the
  paper's figures report (:mod:`repro.cli.simulate_command`).
* ``trace`` -- generate a synthetic trace and print or export its workload
  statistics (:mod:`repro.cli.trace_command`).
* ``serve`` -- run the scheduler as a service: concurrent clients submit
  jobs over a JSON-lines TCP protocol and stream placement notifications
  back (:mod:`repro.cli.serve_command`).

Every subcommand is importable and callable with an argument list, so the
test suite exercises the CLI without spawning processes.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
