"""``firmament-repro trace``: generate and inspect synthetic workload traces."""

from __future__ import annotations

import argparse
import csv
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.analysis.stats import percentile
from repro.cluster.task import JobType
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig


def register(subparsers) -> None:
    """Register the ``trace`` subcommand."""
    parser = subparsers.add_parser(
        "trace",
        help="generate a synthetic Google-like trace and print its statistics",
        description=(
            "Generate the synthetic Google-like workload used by the "
            "simulations, print summary statistics (job sizes, durations, "
            "batch/service split), and optionally export the tasks as CSV."
        ),
    )
    parser.add_argument("--machines", type=int, default=100, help="cluster size the trace targets")
    parser.add_argument("--duration", type=float, default=600.0, help="trace duration in seconds")
    parser.add_argument("--utilization", type=float, default=0.5, help="target slot utilization")
    parser.add_argument("--speedup", type=float, default=1.0, help="trace speedup factor")
    parser.add_argument("--seed", type=int, default=42, help="trace seed")
    parser.add_argument("--csv", default=None, help="write one row per task to this CSV file")
    parser.set_defaults(handler=run)


def run(args: argparse.Namespace) -> int:
    """Execute the ``trace`` subcommand."""
    config = TraceConfig(
        num_machines=args.machines,
        target_utilization=args.utilization,
        duration=args.duration,
        speedup=args.speedup,
        seed=args.seed,
    )
    generator = GoogleTraceGenerator(config)
    jobs = generator.generate()

    job_sizes = [job.num_tasks for job in jobs]
    batch_jobs = [job for job in jobs if job.job_type is JobType.BATCH]
    service_jobs = [job for job in jobs if job.job_type is JobType.SERVICE]
    batch_durations = [
        task.duration
        for job in batch_jobs
        for task in job.tasks
        if task.duration is not None
    ]
    input_sizes = [
        task.input_size_gb for job in batch_jobs for task in job.tasks if task.input_size_gb > 0
    ]

    total_tasks = sum(job_sizes)
    print(f"jobs: {len(jobs)} ({len(batch_jobs)} batch, {len(service_jobs)} service)")
    print(f"tasks: {total_tasks}")
    rows = [
        ["job size [tasks]", _fmt(percentile(job_sizes, 50)), _fmt(percentile(job_sizes, 90)),
         _fmt(percentile(job_sizes, 99)), _fmt(max(job_sizes) if job_sizes else 0)],
        ["batch task duration [s]", _fmt(percentile(batch_durations, 50)),
         _fmt(percentile(batch_durations, 90)), _fmt(percentile(batch_durations, 99)),
         _fmt(max(batch_durations) if batch_durations else 0)],
        ["batch input size [GB]", _fmt(percentile(input_sizes, 50)),
         _fmt(percentile(input_sizes, 90)), _fmt(percentile(input_sizes, 99)),
         _fmt(max(input_sizes) if input_sizes else 0)],
    ]
    print(format_table(["metric", "p50", "p90", "p99", "max"], rows))

    if args.csv:
        _write_csv(args.csv, jobs)
        print(f"wrote per-task CSV to {args.csv}")
    return 0


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def _write_csv(path: str, jobs: List) -> None:
    with open(path, "w", encoding="utf-8", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(
            ["job_id", "job_type", "task_id", "submit_time", "duration_s",
             "cpu_request", "ram_request_gb", "network_request_mbps", "input_size_gb"]
        )
        for job in jobs:
            for task in job.tasks:
                writer.writerow(
                    [job.job_id, job.job_type.value, task.task_id,
                     f"{task.submit_time:.3f}",
                     "" if task.duration is None else f"{task.duration:.3f}",
                     task.cpu_request, task.ram_request_gb,
                     task.network_request_mbps, f"{task.input_size_gb:.3f}"]
                )
