"""``firmament-repro solve``: solve a DIMACS flow network from the shell."""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from repro.flow.dimacs import read_dimacs, write_dimacs
from repro.flow.validation import check_feasibility
from repro.solvers import EXECUTOR_POLICIES, PRICE_REFINE_MODES, make_solver

#: Algorithms whose constructor accepts a ``price_refine`` variant.
PRICE_REFINE_ALGORITHMS = frozenset(
    {
        "cost_scaling",
        "incremental_cost_scaling",
        "firmament_dual",
        "firmament_dual_parallel",
    }
)

#: Algorithms whose constructor accepts an ``executor_policy`` (the two
#: speculative dual executors).
EXECUTOR_POLICY_ALGORITHMS = frozenset(
    {"firmament_dual", "firmament_dual_parallel"}
)

#: Algorithm names accepted by ``--algorithm``.  The two ``firmament_dual``
#: entries are the speculative executors: sequential (modeled race) and
#: parallel (a real race against a relaxation worker subprocess).
ALGORITHMS = (
    "relaxation",
    "cost_scaling",
    "incremental_cost_scaling",
    "successive_shortest_path",
    "cycle_canceling",
    "firmament_dual",
    "firmament_dual_parallel",
)


def register(subparsers) -> None:
    """Register the ``solve`` subcommand."""
    parser = subparsers.add_parser(
        "solve",
        help="solve a DIMACS min-cost-flow problem with a chosen MCMF algorithm",
        description=(
            "Read a flow network in DIMACS min-cost-flow format and print the "
            "optimal flow cost, the non-zero arc flows, and solver statistics. "
            "Solves one network at a time; for cluster-scale scheduling that "
            "shards the flow problem into per-cell networks solved "
            "concurrently, see `simulate --cells`."
        ),
    )
    parser.add_argument(
        "input",
        nargs="?",
        default="-",
        help="path to the DIMACS file ('-' or omitted reads standard input)",
    )
    parser.add_argument(
        "--algorithm",
        choices=ALGORITHMS,
        default="relaxation",
        help="MCMF algorithm to use (default: relaxation)",
    )
    parser.add_argument(
        "--price-refine",
        choices=PRICE_REFINE_MODES,
        default="auto",
        help=(
            "price-refine variant for the cost-scaling based algorithms: "
            "'spfa' (deque-based sweep), 'dijkstra' (heap-based incremental "
            "repair), or 'auto' (default; per-call choice); ignored by "
            "algorithms that never run price refine"
        ),
    )
    parser.add_argument(
        "--executor-policy",
        choices=EXECUTOR_POLICIES,
        default="race",
        help=(
            "speculation policy for the firmament_dual executors: 'race' "
            "runs both algorithms every round, 'auto' lets a cost model "
            "skip the predictable loser (default: race); ignored by the "
            "single-algorithm solvers"
        ),
    )
    parser.add_argument(
        "--print-flows",
        action="store_true",
        help="print every arc that carries flow in the optimal solution",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the solved network (with flows) back out as DIMACS comments",
    )
    parser.set_defaults(handler=run)


def run(args: argparse.Namespace) -> int:
    """Execute the ``solve`` subcommand."""
    text = _read_input(args.input)
    network = read_dimacs(text)
    solver_kwargs = {}
    if args.algorithm in PRICE_REFINE_ALGORITHMS:
        solver_kwargs["price_refine"] = getattr(args, "price_refine", "auto")
    if args.algorithm in EXECUTOR_POLICY_ALGORITHMS:
        solver_kwargs["executor_policy"] = getattr(args, "executor_policy", "race")
    solver = make_solver(args.algorithm, **solver_kwargs)
    try:
        result = solver.solve(network)
    finally:
        close = getattr(solver, "close", None)
        if callable(close):
            close()

    violations = check_feasibility(network)
    print(f"algorithm:  {result.algorithm}")
    print(f"nodes:      {network.num_nodes}")
    print(f"arcs:       {network.num_arcs}")
    print(f"total cost: {result.total_cost}")
    print(f"runtime:    {result.runtime_seconds * 1000.0:.2f} ms")
    print(f"feasible:   {'yes' if not violations else 'NO: ' + violations[0]}")

    if args.print_flows:
        print("flows:")
        for (src, dst), flow in sorted(result.flows.items()):
            print(f"  {src} -> {dst}: {flow}")

    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(write_dimacs(network))
            stream.write("c solution flows\n")
            for (src, dst), flow in sorted(result.flows.items()):
                stream.write(f"c f {src} {dst} {flow}\n")
    return 0 if not violations else 1


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as stream:
        return stream.read()
