"""``firmament-repro serve``: run the scheduler as a network service.

Starts a :class:`~repro.service.server.SchedulerService` over an initially
empty cluster of ``--machines`` machines and serves the JSON-lines
protocol until ``--serve-seconds`` elapses (or forever without it, until
interrupted or a client sends ``{"op": "shutdown"}``).  On exit the
service drains gracefully and the final conservation counters are
printed; a violated conservation law (accepted != placed + pending +
rejected) fails the command, so scripted callers -- the SLO benchmark,
the CI service step -- get a hard signal.

SIGTERM and SIGINT take the same graceful path: the signal requests a
drain (void unadmitted submissions, flush notifications, print the
conservation verdict) instead of killing the process mid-round.

With ``--state-dir`` the service is crash-safe (write-ahead admission log
plus periodic snapshots; see :mod:`repro.service.durability`), and
``--recover`` restores from an existing state directory after a crash --
the only kind of death the durability layer cannot drain through, which
is exactly what ``--chaos-crash`` injects for the recovery harness.
"""

from __future__ import annotations

import argparse
import asyncio
import signal

from repro.chaos import CRASH_POINTS, CrashInjector
from repro.cli.simulate_command import POLICIES, SCHEDULERS, _make_scheduler
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_topology
from repro.service import DurabilityLayer, SchedulerService, ServiceConfig, recover
from repro.solvers import PRICE_REFINE_MODES


def register(subparsers) -> None:
    """Register the ``serve`` subcommand."""
    parser = subparsers.add_parser(
        "serve",
        help="serve the scheduler over a JSON-lines TCP API",
        description=(
            "Run the scheduler as a service: concurrent clients submit jobs "
            "and machine events over a JSON-lines TCP protocol, submissions "
            "arriving between rounds are coalesced into one admission batch, "
            "and placement/preemption notifications stream back per client. "
            "With --state-dir the service write-ahead-logs every admission "
            "and snapshots periodically, and --recover restores after a "
            "crash. Exits non-zero if the service conservation law "
            "(accepted == placed + pending + rejected) is violated at drain."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="bind port; 0 picks an ephemeral port (default: 0)",
    )
    parser.add_argument(
        "--machines", type=int, default=128, help="cluster size (default: 128)"
    )
    parser.add_argument(
        "--slots-per-machine", type=int, default=4,
        help="task slots per machine (default: 4)",
    )
    parser.add_argument(
        "--scheduler", choices=SCHEDULERS, default="firmament",
        help="scheduler to serve (default: firmament)",
    )
    parser.add_argument(
        "--policy", choices=POLICIES, default="quincy",
        help="policy for the flow-based schedulers (default: quincy)",
    )
    parser.add_argument(
        "--price-refine", choices=PRICE_REFINE_MODES, default="auto",
        help="price-refine variant for the incremental solver (default: auto)",
    )
    parser.add_argument(
        "--cells", type=int, default=0, metavar="N",
        help="shard the cluster into N cells (ShardedScheduler; default: off)",
    )
    parser.add_argument(
        "--cell-workers", action="store_true",
        help="with --cells, solve each cell in a worker subprocess",
    )
    parser.add_argument(
        "--round-deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "per-round wall-clock budget (same plumbing as simulate "
            "--round-deadline); degraded rounds are counted in the final "
            "stats (default: no deadline)"
        ),
    )
    parser.add_argument(
        "--round-interval", type=float, default=0.05, metavar="SECONDS",
        help=(
            "minimum seconds between scheduling rounds; submissions "
            "arriving in the gap are coalesced (default: 0.05)"
        ),
    )
    parser.add_argument(
        "--time-scale", type=float, default=1.0, metavar="FACTOR",
        help=(
            "wall seconds per submitted duration second; small values make "
            "finite tasks free their slots faster (default: 1.0)"
        ),
    )
    parser.add_argument(
        "--client-queue-limit", type=int, default=1024, metavar="EVENTS",
        help=(
            "notification events buffered per client before a non-reading "
            "client is evicted (default: 1024)"
        ),
    )
    parser.add_argument(
        "--serve-seconds", type=float, default=None, metavar="SECONDS",
        help="drain and exit after this long (default: serve until shutdown)",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help=(
            "durable state directory (write-ahead log + snapshots); the "
            "service refuses a non-empty directory without --recover "
            "(default: no durability)"
        ),
    )
    parser.add_argument(
        "--recover", action="store_true",
        help=(
            "restore from the newest valid snapshot in --state-dir and "
            "replay the log tail before serving (an empty directory is a "
            "cold start)"
        ),
    )
    parser.add_argument(
        "--snapshot-interval-rounds", type=int, default=64, metavar="N",
        help="snapshot after N logged rounds (default: 64)",
    )
    parser.add_argument(
        "--snapshot-max-log-bytes", type=int, default=4 * 1024 * 1024,
        metavar="BYTES",
        help="snapshot when the active log segment exceeds this (default: 4MiB)",
    )
    parser.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on log appends and snapshots (benchmarks only)",
    )
    parser.add_argument(
        "--chaos-crash", default=None, metavar="POINT:HIT[:TEAR_BYTES]",
        help=(
            "SIGKILL this process at the HITth pass of a durability crash "
            f"point ({', '.join(CRASH_POINTS)}), optionally tearing the "
            "in-flight record to TEAR_BYTES; requires --state-dir "
            "(recovery-harness fault injection)"
        ),
    )
    parser.set_defaults(handler=run)


def run(args: argparse.Namespace) -> int:
    """Run the service until shutdown; return the process exit code."""
    if args.machines <= 0:
        raise ValueError("cluster must have at least one machine")
    if args.chaos_crash and not args.state_dir:
        raise ValueError("--chaos-crash requires --state-dir")
    if args.recover and not args.state_dir:
        raise ValueError("--recover requires --state-dir")
    return asyncio.run(_serve(args))


async def _serve(args) -> int:
    durability = None
    recovered = None
    if args.state_dir:
        crash = (
            CrashInjector.parse(args.chaos_crash) if args.chaos_crash else None
        )
        durability = DurabilityLayer(
            args.state_dir,
            fsync=not args.no_fsync,
            snapshot_interval_rounds=args.snapshot_interval_rounds,
            snapshot_max_log_bytes=args.snapshot_max_log_bytes,
            crash=crash,
        )
        if durability.has_prior_state():
            if not args.recover:
                print(
                    f"error: state dir {args.state_dir} holds prior state; "
                    "pass --recover to restore it",
                    flush=True,
                )
                return 2
            recovered = recover(args.state_dir)
            torn = "dropped" if recovered.torn_tail_dropped else "absent"
            print(
                f"recovered from snapshot epoch {recovered.snapshot_epoch}: "
                f"{recovered.replayed_records} records replayed, "
                f"{recovered.duplicates_dropped} duplicates dropped, "
                f"torn tail {torn}",
                flush=True,
            )

    if recovered is not None:
        # The cluster (machines included) comes from the durable state,
        # not from --machines.
        state = recovered.state
    else:
        topology = build_topology(
            args.machines, slots_per_machine=args.slots_per_machine
        )
        state = ClusterState(topology)
    scheduler = _make_scheduler(
        args.scheduler, args.policy,
        price_refine=args.price_refine,
        cells=args.cells,
        cell_workers=args.cell_workers,
        round_deadline_seconds=args.round_deadline,
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        round_interval=args.round_interval,
        time_scale=args.time_scale,
        client_queue_limit=args.client_queue_limit,
    )
    service = SchedulerService(
        state, scheduler, config, durability=durability, recovered=recovered
    )
    # SIGTERM/SIGINT request the same graceful drain a client shutdown op
    # does: void unadmitted submissions, flush notifications, report the
    # conservation verdict -- never die mid-round.  Installed before the
    # handshake prints, so a driver that signals immediately after reading
    # it cannot race the default (killing) handlers.
    loop = asyncio.get_running_loop()
    signalled = []

    def _request_drain(signame: str) -> None:
        signalled.append(signame)
        service._draining = True
        service._wake.set()

    installed = []
    for signame in ("SIGTERM", "SIGINT"):
        try:
            loop.add_signal_handler(
                getattr(signal, signame), _request_drain, signame
            )
            installed.append(signame)
        except (NotImplementedError, RuntimeError):
            # Platforms without loop signal support keep the default
            # handlers; the drain path is still reachable via shutdown.
            pass

    await service.start()
    # The parseable handshake line scripted drivers wait for.
    print(f"serving on {args.host}:{service.port}", flush=True)

    # The round loop only completes when a drain was requested (a client's
    # shutdown op, a signal); otherwise serve until --serve-seconds.
    try:
        if args.serve_seconds is not None:
            await asyncio.wait_for(
                asyncio.shield(service._round_task),
                timeout=args.serve_seconds,
            )
        else:
            await asyncio.shield(service._round_task)
    except asyncio.TimeoutError:
        pass
    finally:
        for signame in installed:
            loop.remove_signal_handler(getattr(signal, signame))
    snapshot = await service.stop()

    if signalled:
        print(f"draining on {signalled[0]}")
    print("service drained")
    for key in ("accepted", "placed", "pending", "rejected", "rounds",
                "degraded_rounds", "preemptions", "completions",
                "evicted_clients"):
        print(f"  {key}: {snapshot[key]}")
    if not snapshot["conserved"]:
        print("  CONSERVATION VIOLATED: accepted != placed+pending+rejected")
        return 1
    print("  conservation: accepted == placed + pending + rejected")
    return 0
