"""``firmament-repro serve``: run the scheduler as a network service.

Starts a :class:`~repro.service.server.SchedulerService` over an initially
empty cluster of ``--machines`` machines and serves the JSON-lines
protocol until ``--serve-seconds`` elapses (or forever without it, until
interrupted or a client sends ``{"op": "shutdown"}``).  On exit the
service drains gracefully and the final conservation counters are
printed; a violated conservation law (accepted != placed + pending +
rejected) fails the command, so scripted callers -- the SLO benchmark,
the CI service step -- get a hard signal.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.cli.simulate_command import POLICIES, SCHEDULERS, _make_scheduler
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_topology
from repro.service import SchedulerService, ServiceConfig
from repro.solvers import PRICE_REFINE_MODES


def register(subparsers) -> None:
    """Register the ``serve`` subcommand."""
    parser = subparsers.add_parser(
        "serve",
        help="serve the scheduler over a JSON-lines TCP API",
        description=(
            "Run the scheduler as a service: concurrent clients submit jobs "
            "and machine events over a JSON-lines TCP protocol, submissions "
            "arriving between rounds are coalesced into one admission batch, "
            "and placement/preemption notifications stream back per client. "
            "Exits non-zero if the service conservation law (accepted == "
            "placed + pending + rejected) is violated at drain."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=0,
        help="bind port; 0 picks an ephemeral port (default: 0)",
    )
    parser.add_argument(
        "--machines", type=int, default=128, help="cluster size (default: 128)"
    )
    parser.add_argument(
        "--slots-per-machine", type=int, default=4,
        help="task slots per machine (default: 4)",
    )
    parser.add_argument(
        "--scheduler", choices=SCHEDULERS, default="firmament",
        help="scheduler to serve (default: firmament)",
    )
    parser.add_argument(
        "--policy", choices=POLICIES, default="quincy",
        help="policy for the flow-based schedulers (default: quincy)",
    )
    parser.add_argument(
        "--price-refine", choices=PRICE_REFINE_MODES, default="auto",
        help="price-refine variant for the incremental solver (default: auto)",
    )
    parser.add_argument(
        "--cells", type=int, default=0, metavar="N",
        help="shard the cluster into N cells (ShardedScheduler; default: off)",
    )
    parser.add_argument(
        "--cell-workers", action="store_true",
        help="with --cells, solve each cell in a worker subprocess",
    )
    parser.add_argument(
        "--round-deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "per-round wall-clock budget (same plumbing as simulate "
            "--round-deadline); degraded rounds are counted in the final "
            "stats (default: no deadline)"
        ),
    )
    parser.add_argument(
        "--round-interval", type=float, default=0.05, metavar="SECONDS",
        help=(
            "minimum seconds between scheduling rounds; submissions "
            "arriving in the gap are coalesced (default: 0.05)"
        ),
    )
    parser.add_argument(
        "--time-scale", type=float, default=1.0, metavar="FACTOR",
        help=(
            "wall seconds per submitted duration second; small values make "
            "finite tasks free their slots faster (default: 1.0)"
        ),
    )
    parser.add_argument(
        "--client-queue-limit", type=int, default=1024, metavar="EVENTS",
        help=(
            "notification events buffered per client before a non-reading "
            "client is evicted (default: 1024)"
        ),
    )
    parser.add_argument(
        "--serve-seconds", type=float, default=None, metavar="SECONDS",
        help="drain and exit after this long (default: serve until shutdown)",
    )
    parser.set_defaults(handler=run)


def run(args: argparse.Namespace) -> int:
    """Run the service until shutdown; return the process exit code."""
    if args.machines <= 0:
        raise ValueError("cluster must have at least one machine")
    return asyncio.run(_serve(args))


async def _serve(args) -> int:
    topology = build_topology(
        args.machines, slots_per_machine=args.slots_per_machine
    )
    state = ClusterState(topology)
    scheduler = _make_scheduler(
        args.scheduler, args.policy,
        price_refine=args.price_refine,
        cells=args.cells,
        cell_workers=args.cell_workers,
        round_deadline_seconds=args.round_deadline,
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        round_interval=args.round_interval,
        time_scale=args.time_scale,
        client_queue_limit=args.client_queue_limit,
    )
    service = SchedulerService(state, scheduler, config)
    await service.start()
    # The parseable handshake line scripted drivers wait for.
    print(f"serving on {args.host}:{service.port}", flush=True)

    # The round loop only completes when a drain was requested (a client's
    # shutdown op); otherwise serve until the --serve-seconds timer.
    try:
        if args.serve_seconds is not None:
            await asyncio.wait_for(
                asyncio.shield(service._round_task),
                timeout=args.serve_seconds,
            )
        else:
            await asyncio.shield(service._round_task)
    except asyncio.TimeoutError:
        pass
    snapshot = await service.stop()

    print("service drained")
    for key in ("accepted", "placed", "pending", "rejected", "rounds",
                "degraded_rounds", "preemptions", "completions",
                "evicted_clients"):
        print(f"  {key}: {snapshot[key]}")
    if not snapshot["conserved"]:
        print("  CONSERVATION VIOLATED: accepted != placed+pending+rejected")
        return 1
    print("  conservation: accepted == placed + pending + rejected")
    return 0
