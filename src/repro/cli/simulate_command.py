"""``firmament-repro simulate``: trace-driven scheduling simulation."""

from __future__ import annotations

import argparse
from typing import Optional

from repro.analysis.reporting import format_table
from repro.baselines import (
    KubernetesScheduler,
    MesosScheduler,
    SparrowScheduler,
    SwarmKitScheduler,
    make_quincy_scheduler,
)
from repro.cluster.state import ClusterState
from repro.cluster.topology import build_topology
from repro.core import FirmamentScheduler, ShardedScheduler
from repro.core.policies import (
    CpuMemoryPolicy,
    LoadSpreadingPolicy,
    NetworkAwarePolicy,
    QuincyPolicy,
    RandomPlacementPolicy,
    ShortestJobFirstPolicy,
)
from repro.simulation.failures import FailureInjector
from repro.simulation.ingest import SCHEMAS, read_trace
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from repro.solvers import EXECUTOR_POLICIES, EXECUTORS, PRICE_REFINE_MODES

#: Scheduler names accepted by ``--scheduler``.
SCHEDULERS = ("firmament", "quincy", "sparrow", "swarmkit", "kubernetes", "mesos")

#: Policy names accepted by ``--policy`` (Firmament and Quincy only).
POLICIES = (
    "quincy",
    "load_spreading",
    "network_aware",
    "cpu_memory",
    "shortest_job_first",
    "random",
)


def register(subparsers) -> None:
    """Register the ``simulate`` subcommand."""
    parser = subparsers.add_parser(
        "simulate",
        help="replay a synthetic Google-like trace against a scheduler",
        description=(
            "Generate a synthetic Google-like workload, replay it against the "
            "chosen scheduler, and print placement latency, response time, and "
            "algorithm runtime summaries."
        ),
    )
    parser.add_argument("--machines", type=int, default=32, help="cluster size (default: 32)")
    parser.add_argument(
        "--slots-per-machine", type=int, default=4, help="task slots per machine (default: 4)"
    )
    parser.add_argument(
        "--duration", type=float, default=300.0, help="trace duration in virtual seconds"
    )
    parser.add_argument(
        "--utilization", type=float, default=0.6, help="target slot utilization (default: 0.6)"
    )
    parser.add_argument(
        "--speedup", type=float, default=1.0, help="trace speedup factor (Figure 18)"
    )
    parser.add_argument(
        "--scheduler",
        choices=SCHEDULERS,
        default="firmament",
        help="scheduler to drive (default: firmament)",
    )
    parser.add_argument(
        "--policy",
        choices=POLICIES,
        default="quincy",
        help="scheduling policy for the flow-based schedulers (default: quincy)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="sequential",
        help=(
            "firmament's dual-algorithm execution strategy: 'sequential' runs "
            "relaxation and incremental cost scaling back to back and models "
            "the race, 'parallel' races them for real (relaxation in a worker "
            "subprocess) so each round costs one solver's wall clock "
            "(default: sequential)"
        ),
    )
    parser.add_argument(
        "--price-refine",
        choices=PRICE_REFINE_MODES,
        default="auto",
        help=(
            "price-refine variant for firmament's incremental cost scaling: "
            "'spfa' is the deque-based label-correcting sweep, 'dijkstra' "
            "the heap-based incremental repair seeded from the previous "
            "round's potentials, 'auto' uses the seeded repair when the "
            "violation count is small relative to the graph and the sweep "
            "otherwise (default: auto)"
        ),
    )
    parser.add_argument(
        "--executor-policy",
        choices=EXECUTOR_POLICIES,
        default="race",
        help=(
            "firmament's speculation policy: 'race' runs both algorithms "
            "every round exactly as the paper deploys, 'auto' lets a cost "
            "model fed by recent solver statistics pick per round between "
            "solo relaxation, solo incremental cost scaling, and the full "
            "race (default: race)"
        ),
    )
    parser.add_argument(
        "--cells",
        type=int,
        default=0,
        help=(
            "shard the cluster into this many scheduling cells (racks map "
            "to cells round-robin) and run one incremental solver per cell "
            "with cross-cell balancing, so round wall clock tracks the "
            "slowest cell instead of the whole cluster; firmament only, "
            "0 keeps the monolithic scheduler (default: 0)"
        ),
    )
    parser.add_argument(
        "--cell-workers",
        action="store_true",
        help=(
            "with --cells, solve each cell in a persistent worker "
            "subprocess instead of inline (real process parallelism)"
        ),
    )
    parser.add_argument(
        "--round-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-round wall-clock budget for the flow-based schedulers "
            "(PR 6 plumbing): the solver degrades at the budget (epsilon-"
            "ladder truncation, relaxation abort) and a round where no "
            "solver finished reuses the previous feasible placements "
            "instead of stalling; degraded-round counts are reported in "
            "the summary (firmament only, default: no deadline)"
        ),
    )
    parser.add_argument(
        "--constant-service-load",
        action="store_true",
        help=(
            "pin long-running service jobs to a fixed t=0 allotment instead "
            "of scaling their arrivals with --speedup (keeps slots available "
            "for batch work in accelerated replays, Figure 18)"
        ),
    )
    parser.add_argument(
        "--trace-csv",
        default=None,
        help=(
            "replay a CSV cluster trace instead of generating a synthetic "
            "workload (streamed; jobs must be row-contiguous and sorted by "
            "arrival time)"
        ),
    )
    parser.add_argument(
        "--trace-schema",
        choices=sorted(SCHEMAS),
        default="generic",
        help="column schema of --trace-csv (default: generic)",
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--failure-mtbf",
        type=float,
        default=0.0,
        help="inject machine failures with this cluster-wide MTBF in seconds (0 disables)",
    )
    parser.add_argument(
        "--failure-mttr",
        type=float,
        default=120.0,
        help="mean machine repair time in seconds when failures are injected",
    )
    parser.set_defaults(handler=run)


def run(args: argparse.Namespace) -> int:
    """Execute the ``simulate`` subcommand."""
    if args.machines <= 0:
        raise ValueError("--machines must be positive")
    if not 0.0 < args.utilization <= 1.0:
        raise ValueError("--utilization must be in (0, 1]")

    topology = build_topology(args.machines, slots_per_machine=args.slots_per_machine)
    state = ClusterState(topology)
    scheduler = _make_scheduler(
        args.scheduler, args.policy, args.executor,
        price_refine=getattr(args, "price_refine", "auto"),
        executor_policy=getattr(args, "executor_policy", "race"),
        cells=getattr(args, "cells", 0),
        cell_workers=getattr(args, "cell_workers", False),
        round_deadline_seconds=getattr(args, "round_deadline", None),
    )

    simulator = ClusterSimulator(
        state, scheduler, SimulationConfig(max_time=args.duration)
    )
    trace_csv = getattr(args, "trace_csv", None)
    if trace_csv is not None:
        simulator.submit_job_stream(read_trace(trace_csv, SCHEMAS[args.trace_schema]))
    else:
        trace_config = TraceConfig(
            num_machines=args.machines,
            slots_per_machine=args.slots_per_machine,
            target_utilization=args.utilization,
            duration=args.duration,
            speedup=args.speedup,
            seed=args.seed,
            constant_service_load=args.constant_service_load,
        )
        generator = GoogleTraceGenerator(trace_config, topology)
        simulator.submit_job_stream(generator.iter_jobs())

    schedule = None
    if args.failure_mtbf > 0:
        injector = FailureInjector(
            mean_time_between_failures=args.failure_mtbf,
            mean_time_to_repair=args.failure_mttr,
            seed=args.seed,
        )
        schedule = injector.inject(simulator, horizon=args.duration)

    try:
        result = simulator.run()
    finally:
        simulator.close()
    metrics = result.metrics

    executor_note = f", executor: {args.executor}" if args.scheduler == "firmament" else ""
    cells = getattr(args, "cells", 0)
    if args.scheduler == "firmament" and cells > 0:
        executor_note = f", cells: {cells}" + (
            " (worker subprocesses)" if getattr(args, "cell_workers", False) else " (inline)"
        )
    print(f"scheduler: {args.scheduler} (policy: {args.policy}{executor_note})")
    print(f"jobs submitted: {len(state.jobs)}, tasks placed: {metrics.tasks_placed}, "
          f"tasks completed: {metrics.tasks_completed}")
    print(f"scheduler rounds: {len(result.schedule_records)} "
          f"(voided: {result.rounds_voided}, placements applied: "
          f"{result.placements_applied}, drift-dropped: {result.placements_dropped})")
    if schedule is not None:
        print(f"machine failures injected: {schedule.num_failures}")
    if getattr(args, "round_deadline", None) is not None:
        # Degraded rounds are the price of the budget: epsilon-truncated
        # rounds plus rounds that reused the previous feasible placements.
        stats = getattr(scheduler, "statistics", None)
        abandoned = getattr(stats, "deadline_abandoned_rounds", 0)
        print(
            f"round deadline: {args.round_deadline:.3f}s, degraded rounds: "
            f"{metrics.degraded_round_count()} "
            f"(previous placements reused: {abandoned})"
        )
    rows = [
        ["placement latency [s]",
         f"{metrics.placement_latency_percentile(50):.3f}",
         f"{metrics.placement_latency_percentile(90):.3f}",
         f"{metrics.placement_latency_percentile(99):.3f}"],
        ["task response time [s]",
         f"{metrics.response_time_percentile(50):.3f}",
         f"{metrics.response_time_percentile(90):.3f}",
         f"{metrics.response_time_percentile(99):.3f}"],
        ["algorithm runtime [s]",
         f"{metrics.algorithm_runtime_percentile(50):.3f}",
         f"{metrics.algorithm_runtime_percentile(90):.3f}",
         f"{metrics.algorithm_runtime_percentile(99):.3f}"],
    ]
    print(format_table(["metric", "p50", "p90", "p99"], rows))
    print(f"input data locality: {100 * metrics.data_locality:.1f}%")
    if metrics.cells_solved:
        stragglers = metrics.straggler_attribution()
        attribution = ", ".join(
            f"cell {cell}: {count}" for cell, count in sorted(stragglers.items())
        )
        print(
            f"cross-cell migrations: {metrics.total_cross_cell_migrations()}, "
            f"straggler rounds by cell: {attribution or 'none'}"
        )
    return 0


def _make_policy(name: str):
    if name == "quincy":
        return QuincyPolicy()
    if name == "load_spreading":
        return LoadSpreadingPolicy()
    if name == "network_aware":
        return NetworkAwarePolicy()
    if name == "cpu_memory":
        return CpuMemoryPolicy()
    if name == "shortest_job_first":
        return ShortestJobFirstPolicy()
    if name == "random":
        return RandomPlacementPolicy()
    raise ValueError(f"unknown policy {name!r}")


def _make_scheduler(
    scheduler_name: str,
    policy_name: str,
    executor: str = "sequential",
    price_refine: str = "auto",
    executor_policy: str = "race",
    cells: int = 0,
    cell_workers: bool = False,
    round_deadline_seconds: Optional[float] = None,
):
    """Build the scheduler a CLI invocation asked for.

    Knob combinations that cannot take effect are rejected loudly instead
    of silently ignored: ``cells`` only applies to the firmament scheduler,
    the dual-executor knobs (``executor``, ``executor_policy``) do not
    exist in the sharded scheduler (each cell runs one incremental solver,
    there is no race to configure), and ``round_deadline_seconds`` needs a
    flow-based scheduler with deadline support.  ``price_refine`` *is* a
    per-cell solver knob and is forwarded to the sharded scheduler's
    inline and worker solvers alike.
    """
    if cells > 0 and scheduler_name != "firmament":
        raise ValueError(
            f"--cells only applies to the firmament scheduler, not "
            f"{scheduler_name!r}"
        )
    if round_deadline_seconds is not None and scheduler_name != "firmament":
        raise ValueError(
            f"--round-deadline only applies to the firmament scheduler, not "
            f"{scheduler_name!r} (the queue-based baselines have no round "
            "budget to enforce)"
        )
    if scheduler_name == "firmament":
        if cells > 0:
            if executor != "sequential":
                raise ValueError(
                    f"--executor {executor!r} cannot combine with --cells: "
                    "the sharded scheduler runs one incremental solver per "
                    "cell (use --cell-workers for real process parallelism)"
                )
            if executor_policy != "race":
                raise ValueError(
                    f"--executor-policy {executor_policy!r} cannot combine "
                    "with --cells: the sharded scheduler has no dual-"
                    "algorithm race to steer"
                )
            return ShardedScheduler(
                lambda: _make_policy(policy_name),
                num_cells=cells,
                workers=cell_workers,
                price_refine=price_refine,
                round_deadline_seconds=round_deadline_seconds,
            )
        if cell_workers:
            raise ValueError("--cell-workers requires --cells")
        return FirmamentScheduler(
            _make_policy(policy_name), executor=executor,
            price_refine=price_refine, executor_policy=executor_policy,
            round_deadline_seconds=round_deadline_seconds,
        )
    if cell_workers:
        raise ValueError("--cell-workers requires --cells")
    if scheduler_name == "quincy":
        return make_quincy_scheduler()
    if scheduler_name == "sparrow":
        return SparrowScheduler()
    if scheduler_name == "swarmkit":
        return SwarmKitScheduler()
    if scheduler_name == "kubernetes":
        return KubernetesScheduler()
    if scheduler_name == "mesos":
        return MesosScheduler()
    raise ValueError(f"unknown scheduler {scheduler_name!r}")
