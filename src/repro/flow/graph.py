"""Directed flow-network representation for flow-based scheduling.

The scheduler (Quincy / Firmament) expresses the cluster scheduling problem
as a min-cost max-flow optimization over a directed graph.  Task nodes are
sources of one unit of flow, the single sink node drains all flow, and the
intermediate nodes (cluster/rack/request aggregators, machines, unscheduled
aggregators) shape where that flow may go and at what cost.

The :class:`FlowNetwork` here is deliberately a plain adjacency-list graph
with explicit integer node identifiers so that solvers can convert it into a
compact residual representation (:mod:`repro.solvers.residual`) cheaply, and
so that incremental graph updates can be expressed as small deltas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class NodeType(enum.Enum):
    """Role of a node in the scheduling flow network.

    The node type is not interpreted by the MCMF solvers (they only see
    supplies, capacities, and costs), but the scheduler uses it to build the
    network, to extract placements, and to apply problem-specific heuristics
    such as the efficient task-removal handling of incremental cost scaling.
    """

    TASK = "task"
    UNSCHEDULED_AGGREGATOR = "unscheduled_aggregator"
    CLUSTER_AGGREGATOR = "cluster_aggregator"
    RACK_AGGREGATOR = "rack_aggregator"
    REQUEST_AGGREGATOR = "request_aggregator"
    MACHINE = "machine"
    SINK = "sink"
    OTHER = "other"


@dataclass
class Node:
    """A node of the flow network.

    Attributes:
        node_id: Unique integer identifier within the network.
        node_type: Semantic role (task, machine, aggregator, sink, ...).
        supply: Flow supply. Positive for sources (tasks), negative for the
            sink, zero for pass-through nodes.
        name: Optional human-readable label used in debugging output.
        ref: Optional reference to the scheduler-level entity (task id,
            machine id, job id) this node represents.
    """

    node_id: int
    node_type: NodeType = NodeType.OTHER
    supply: int = 0
    name: str = ""
    ref: Optional[object] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or str(self.ref) if (self.name or self.ref) else ""
        return f"Node({self.node_id}, {self.node_type.value}, supply={self.supply}, {label})"


@dataclass
class Arc:
    """A directed arc of the flow network.

    Attributes:
        src: Source node identifier.
        dst: Destination node identifier.
        capacity: Maximum flow the arc may carry (``u_ij`` in the paper).
        cost: Per-unit cost of routing flow over the arc (``c_ij``).
        min_flow: Lower bound on flow (always zero for scheduling graphs but
            kept for generality).
        flow: Flow currently assigned by a solver; zero before solving.
    """

    src: int
    dst: int
    capacity: int
    cost: int
    min_flow: int = 0
    flow: int = 0

    @property
    def residual_capacity(self) -> int:
        """Remaining capacity of the arc given its current flow."""
        return self.capacity - self.flow

    def key(self) -> Tuple[int, int]:
        """Return the ``(src, dst)`` pair identifying this arc."""
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Arc({self.src}->{self.dst}, cap={self.capacity}, "
            f"cost={self.cost}, flow={self.flow})"
        )


class FlowNetwork:
    """Mutable directed graph with supplies, capacities, and costs.

    The network is a multigraph-free directed graph: at most one arc may
    exist between an ordered pair of nodes.  Scheduling policies never need
    parallel arcs, and the restriction keeps incremental change bookkeeping
    simple (an arc is identified by its endpoints).
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._arcs: Dict[Tuple[int, int], Arc] = {}
        # Adjacency as insertion-ordered dicts keyed by the opposite
        # endpoint, so arc removal is O(1) instead of an O(degree) list scan
        # (change batches drive frequent single-arc removals).
        self._out: Dict[int, Dict[int, Arc]] = {}
        self._in: Dict[int, Dict[int, Arc]] = {}
        self._next_node_id = 0
        #: Monotonic snapshot identifier assigned by the graph manager; lets
        #: consumers of change batches verify a patch applies to the network
        #: revision their derived state mirrors.
        self.revision: int = 0

    # ------------------------------------------------------------------ #
    # Node management
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_type: NodeType = NodeType.OTHER,
        supply: int = 0,
        name: str = "",
        ref: Optional[object] = None,
        node_id: Optional[int] = None,
    ) -> Node:
        """Add a node and return it.

        When ``node_id`` is not given, a fresh identifier is allocated.
        """
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already exists")
        self._next_node_id = max(self._next_node_id, node_id + 1)
        node = Node(node_id=node_id, node_type=node_type, supply=supply, name=name, ref=ref)
        self._nodes[node_id] = node
        self._out[node_id] = {}
        self._in[node_id] = {}
        return node

    def remove_node(self, node_id: int) -> None:
        """Remove a node and all arcs incident to it."""
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id} does not exist")
        for arc in list(self._out[node_id].values()):
            self.remove_arc(arc.src, arc.dst)
        for arc in list(self._in[node_id].values()):
            self.remove_arc(arc.src, arc.dst)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]

    def node(self, node_id: int) -> Node:
        """Return the node with the given identifier."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        """Return whether a node with the given identifier exists."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node identifiers."""
        return iter(self._nodes.keys())

    def nodes_of_type(self, node_type: NodeType) -> List[Node]:
        """Return all nodes of the requested type."""
        return [n for n in self._nodes.values() if n.node_type is node_type]

    def set_supply(self, node_id: int, supply: int) -> None:
        """Set the supply of a node."""
        self._nodes[node_id].supply = supply

    # ------------------------------------------------------------------ #
    # Arc management
    # ------------------------------------------------------------------ #
    def add_arc(self, src: int, dst: int, capacity: int, cost: int) -> Arc:
        """Add an arc between two existing nodes and return it."""
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError(f"both endpoints of arc {src}->{dst} must exist")
        key = (src, dst)
        if key in self._arcs:
            raise ValueError(f"arc {src}->{dst} already exists")
        if capacity < 0:
            raise ValueError("arc capacity must be non-negative")
        arc = Arc(src=src, dst=dst, capacity=capacity, cost=cost)
        self._arcs[key] = arc
        self._out[src][dst] = arc
        self._in[dst][src] = arc
        return arc

    def remove_arc(self, src: int, dst: int) -> None:
        """Remove the arc between the two nodes (O(1))."""
        self._arcs.pop((src, dst))
        del self._out[src][dst]
        del self._in[dst][src]

    def arc(self, src: int, dst: int) -> Arc:
        """Return the arc between the two nodes."""
        return self._arcs[(src, dst)]

    def find_arc(self, src: int, dst: int) -> Optional[Arc]:
        """Return the arc between the two nodes, or ``None`` (one lookup)."""
        return self._arcs.get((src, dst))

    def has_arc(self, src: int, dst: int) -> bool:
        """Return whether an arc exists between the two nodes."""
        return (src, dst) in self._arcs

    def arcs(self) -> Iterator[Arc]:
        """Iterate over all arcs."""
        return iter(self._arcs.values())

    def outgoing(self, node_id: int) -> List[Arc]:
        """Return the outgoing arcs of a node (in insertion order)."""
        return list(self._out[node_id].values())

    def incoming(self, node_id: int) -> List[Arc]:
        """Return the incoming arcs of a node (in insertion order)."""
        return list(self._in[node_id].values())

    def set_arc_capacity(self, src: int, dst: int, capacity: int) -> None:
        """Update an arc's capacity."""
        if capacity < 0:
            raise ValueError("arc capacity must be non-negative")
        self._arcs[(src, dst)].capacity = capacity

    def set_arc_cost(self, src: int, dst: int, cost: int) -> None:
        """Update an arc's cost."""
        self._arcs[(src, dst)].cost = cost

    # ------------------------------------------------------------------ #
    # Properties and convenience views
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network."""
        return len(self._nodes)

    @property
    def num_arcs(self) -> int:
        """Number of arcs in the network."""
        return len(self._arcs)

    def total_supply(self) -> int:
        """Sum of all (positive and negative) node supplies."""
        return sum(n.supply for n in self._nodes.values())

    def source_nodes(self) -> List[Node]:
        """Return nodes with positive supply."""
        return [n for n in self._nodes.values() if n.supply > 0]

    def sink_nodes(self) -> List[Node]:
        """Return nodes with negative supply."""
        return [n for n in self._nodes.values() if n.supply < 0]

    def max_arc_cost(self) -> int:
        """Return the largest absolute arc cost, or zero on an empty graph."""
        if not self._arcs:
            return 0
        return max(abs(a.cost) for a in self._arcs.values())

    def max_arc_capacity(self) -> int:
        """Return the largest arc capacity, or zero on an empty graph."""
        if not self._arcs:
            return 0
        return max(a.capacity for a in self._arcs.values())

    def clear_flow(self) -> None:
        """Reset the flow on every arc to zero."""
        for arc in self._arcs.values():
            arc.flow = 0

    def set_flows(self, flows: Dict[Tuple[int, int], int]) -> None:
        """Assign flow values to arcs from a ``{(src, dst): flow}`` mapping.

        Arcs not present in ``flows`` are reset to zero flow.
        """
        for arc in self._arcs.values():
            arc.flow = flows.get(arc.key(), 0)

    def flows(self) -> Dict[Tuple[int, int], int]:
        """Return a ``{(src, dst): flow}`` mapping of the current flow."""
        return {a.key(): a.flow for a in self._arcs.values() if a.flow != 0}

    def copy(self) -> "FlowNetwork":
        """Return a deep copy of the network (nodes, arcs, flows)."""
        clone = FlowNetwork()
        for node in self._nodes.values():
            clone.add_node(
                node_type=node.node_type,
                supply=node.supply,
                name=node.name,
                ref=node.ref,
                node_id=node.node_id,
            )
        for arc in self._arcs.values():
            new_arc = clone.add_arc(arc.src, arc.dst, arc.capacity, arc.cost)
            new_arc.flow = arc.flow
        clone._next_node_id = self._next_node_id
        clone.revision = self.revision
        return clone

    def structurally_equal(self, other: "FlowNetwork") -> List[str]:
        """Compare two networks structurally, returning the differences.

        Flow values are ignored -- node identity/type/supply and arc
        capacity/cost are what solvers consume.  Returns an empty list when
        the networks are equivalent; otherwise human-readable difference
        descriptions (used by the graph manager's cross-check mode and the
        incremental-construction equivalence tests).
        """
        differences: List[str] = []
        mine = {n.node_id: n for n in self.nodes()}
        theirs = {n.node_id: n for n in other.nodes()}
        for node_id in sorted(mine.keys() - theirs.keys()):
            differences.append(f"node {node_id} only in left network")
        for node_id in sorted(theirs.keys() - mine.keys()):
            differences.append(f"node {node_id} only in right network")
        for node_id in sorted(mine.keys() & theirs.keys()):
            a, b = mine[node_id], theirs[node_id]
            if a.node_type is not b.node_type or a.supply != b.supply:
                differences.append(
                    f"node {node_id}: ({a.node_type.value}, supply={a.supply}) "
                    f"vs ({b.node_type.value}, supply={b.supply})"
                )
        my_arcs = {a.key(): (a.capacity, a.cost) for a in self.arcs()}
        their_arcs = {a.key(): (a.capacity, a.cost) for a in other.arcs()}
        for key in sorted(my_arcs.keys() - their_arcs.keys()):
            differences.append(f"arc {key[0]}->{key[1]} only in left network")
        for key in sorted(their_arcs.keys() - my_arcs.keys()):
            differences.append(f"arc {key[0]}->{key[1]} only in right network")
        for key in sorted(my_arcs.keys() & their_arcs.keys()):
            if my_arcs[key] != their_arcs[key]:
                differences.append(
                    f"arc {key[0]}->{key[1]}: (cap, cost) {my_arcs[key]} "
                    f"vs {their_arcs[key]}"
                )
        return differences

    # ------------------------------------------------------------------ #
    # Interoperability
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Convert the network to a :class:`networkx.DiGraph`.

        The produced graph uses the node attribute ``demand`` (negative of
        supply, following networkx's convention) and arc attributes
        ``capacity`` and ``weight`` so that it can be fed directly to
        :func:`networkx.min_cost_flow`.  Used as the correctness oracle in
        tests; the production solvers never go through networkx.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(node.node_id, demand=-node.supply)
        for arc in self._arcs.values():
            graph.add_edge(arc.src, arc.dst, capacity=arc.capacity, weight=arc.cost)
        return graph

    def validate_structure(self) -> List[str]:
        """Return a list of structural problems (empty when valid).

        Checks that supplies balance, that arcs reference existing nodes, and
        that capacities are non-negative.  Used by the graph manager before
        submitting a network to the solver.
        """
        problems: List[str] = []
        if self.total_supply() != 0:
            problems.append(
                f"total supply is {self.total_supply()}, expected 0 "
                "(sink supply must balance sources)"
            )
        for arc in self._arcs.values():
            if arc.src not in self._nodes or arc.dst not in self._nodes:
                problems.append(f"arc {arc.src}->{arc.dst} references a missing node")
            if arc.capacity < 0:
                problems.append(f"arc {arc.src}->{arc.dst} has negative capacity")
            if arc.src == arc.dst:
                problems.append(f"self-loop arc on node {arc.src}")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowNetwork(nodes={self.num_nodes}, arcs={self.num_arcs})"
