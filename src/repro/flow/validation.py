"""Feasibility and optimality checkers for flows on a :class:`FlowNetwork`.

The solvers in :mod:`repro.solvers` maintain different invariants during
their iterations (Table 2 of the paper): cycle canceling and cost scaling
keep the flow feasible while improving optimality, whereas successive
shortest path and relaxation keep reduced-cost optimality while improving
feasibility.  These checkers express the three optimality conditions from
Section 4 of the paper and are used throughout the test suite and by the
incremental solvers to validate warm-start state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.flow.graph import Arc, FlowNetwork


def flow_cost(network: FlowNetwork) -> int:
    """Return the total cost of the flow currently assigned to the network."""
    return sum(arc.cost * arc.flow for arc in network.arcs())


def check_feasibility(network: FlowNetwork) -> List[str]:
    """Check mass balance and capacity constraints of the assigned flow.

    Returns a list of human-readable violations; an empty list means the
    flow is feasible (Eq. 2 and Eq. 3 in the paper).
    """
    problems: List[str] = []
    balance: Dict[int, int] = {node.node_id: node.supply for node in network.nodes()}
    for arc in network.arcs():
        if arc.flow < 0:
            problems.append(f"arc {arc.src}->{arc.dst} carries negative flow {arc.flow}")
        if arc.flow > arc.capacity:
            problems.append(
                f"arc {arc.src}->{arc.dst} exceeds capacity: {arc.flow} > {arc.capacity}"
            )
        balance[arc.src] -= arc.flow
        balance[arc.dst] += arc.flow
    for node_id, residual in balance.items():
        if residual != 0:
            problems.append(f"node {node_id} violates mass balance by {residual}")
    return problems


def is_feasible(network: FlowNetwork) -> bool:
    """Return True when the assigned flow satisfies all feasibility constraints."""
    return not check_feasibility(network)


def reduced_cost(arc: Arc, potentials: Mapping[int, int]) -> int:
    """Return the reduced cost ``c_ij - pi(i) + pi(j)`` of an arc."""
    return arc.cost - potentials.get(arc.src, 0) + potentials.get(arc.dst, 0)


def _residual_arcs(network: FlowNetwork) -> Iterable[Tuple[int, int, int, int]]:
    """Yield residual arcs as ``(src, dst, residual_capacity, cost)`` tuples."""
    for arc in network.arcs():
        forward_residual = arc.capacity - arc.flow
        if forward_residual > 0:
            yield (arc.src, arc.dst, forward_residual, arc.cost)
        if arc.flow > 0:
            yield (arc.dst, arc.src, arc.flow, -arc.cost)


def check_reduced_cost_optimality(
    network: FlowNetwork, potentials: Mapping[int, int]
) -> List[str]:
    """Check the reduced-cost optimality condition.

    A feasible flow is optimal iff there exist node potentials such that no
    residual arc has negative reduced cost (condition 2 in Section 4 of the
    paper).  Returns the list of violating residual arcs.
    """
    problems: List[str] = []
    for src, dst, _, cost in _residual_arcs(network):
        rc = cost - potentials.get(src, 0) + potentials.get(dst, 0)
        if rc < 0:
            problems.append(
                f"residual arc {src}->{dst} has negative reduced cost {rc}"
            )
    return problems


def check_epsilon_optimality(
    network: FlowNetwork, potentials: Mapping[int, int], epsilon: float
) -> List[str]:
    """Check the relaxed complementary-slackness (epsilon-optimality) condition.

    A flow is epsilon-optimal when no residual arc has reduced cost below
    ``-epsilon``.  Cost scaling maintains this invariant, tightening epsilon
    until it reaches ``1/n``, which implies full optimality for integer costs.
    """
    problems: List[str] = []
    for src, dst, _, cost in _residual_arcs(network):
        rc = cost - potentials.get(src, 0) + potentials.get(dst, 0)
        if rc < -epsilon:
            problems.append(
                f"residual arc {src}->{dst} has reduced cost {rc} < -epsilon ({-epsilon})"
            )
    return problems


def check_residual_epsilon_optimality(residual, epsilon: float) -> List[str]:
    """Check epsilon-optimality directly on a solver residual network.

    The solvers operate on the array-based
    :class:`~repro.solvers.residual.ResidualNetwork` rather than on a
    :class:`FlowNetwork`, and their invariant lives in the residual's own
    (possibly scaled) cost units: a state is epsilon-optimal when no
    residual arc with remaining capacity has reduced cost below
    ``-epsilon`` under the stored potentials.  This checker reads the
    residual's public parallel arrays (duck-typed, so no import cycle with
    the solvers package) and returns every violating arc; the invariant
    harness asserts it after every refine / price-refine / repair step.

    Args:
        residual: A :class:`~repro.solvers.residual.ResidualNetwork` (or
            anything exposing ``arc_residual`` / ``arc_cost`` / ``arc_from``
            / ``arc_to`` / ``potential`` / ``node_ids``).
        epsilon: The bound, in the residual's *stored* cost units (scaled
            units for a persistent cost-scaling residual).
    """
    problems: List[str] = []
    arc_residual = residual.arc_residual
    arc_cost = residual.arc_cost
    arc_from = residual.arc_from
    arc_to = residual.arc_to
    potential = residual.potential
    node_ids = residual.node_ids
    for arc_index in range(len(arc_residual)):
        if arc_residual[arc_index] <= 0:
            continue
        u = arc_from[arc_index]
        v = arc_to[arc_index]
        rc = arc_cost[arc_index] - potential[u] + potential[v]
        if rc < -epsilon:
            problems.append(
                f"residual arc {node_ids[u]}->{node_ids[v]} (index {arc_index}) "
                f"has reduced cost {rc} < -epsilon ({-epsilon})"
            )
    return problems


def assert_epsilon_optimal(residual, epsilon: float) -> None:
    """Raise ``AssertionError`` unless a residual network is epsilon-optimal.

    The convenience form of :func:`check_residual_epsilon_optimality` used
    by the fuzzed invariant suite: ``assert_epsilon_optimal(residual, 0)``
    pins the 0-optimality contract a persistent residual must satisfy
    before it may be handed back to delta solving.
    """
    problems = check_residual_epsilon_optimality(residual, epsilon)
    if problems:
        raise AssertionError(
            f"residual network is not {epsilon}-optimal: "
            + "; ".join(problems[:10])
            + (f" (+{len(problems) - 10} more)" if len(problems) > 10 else "")
        )


def check_complementary_slackness(
    network: FlowNetwork, potentials: Mapping[int, int]
) -> List[str]:
    """Check the complementary slackness optimality condition.

    Flow on arcs with positive reduced cost must be zero, and arcs with
    negative reduced cost must be saturated (condition 3 in Section 4).
    """
    problems: List[str] = []
    for arc in network.arcs():
        rc = reduced_cost(arc, potentials)
        if rc > 0 and arc.flow != 0:
            problems.append(
                f"arc {arc.src}->{arc.dst} has positive reduced cost {rc} but flow {arc.flow}"
            )
        if rc < 0 and arc.flow != arc.capacity:
            problems.append(
                f"arc {arc.src}->{arc.dst} has negative reduced cost {rc} "
                f"but is not saturated ({arc.flow}/{arc.capacity})"
            )
    return problems


def has_negative_cycle(network: FlowNetwork) -> bool:
    """Detect a negative-cost directed cycle in the residual network.

    Implements the negative-cycle optimality condition check (condition 1 in
    Section 4) with a Bellman-Ford sweep over the residual graph.  Used in
    tests to confirm solver output optimality independently of potentials.
    """
    node_ids = list(network.node_ids())
    index = {node_id: i for i, node_id in enumerate(node_ids)}
    n = len(node_ids)
    if n == 0:
        return False
    dist = [0] * n
    residual = list(_residual_arcs(network))
    for _ in range(n):
        changed = False
        for src, dst, _, cost in residual:
            u, v = index[src], index[dst]
            if dist[u] + cost < dist[v]:
                dist[v] = dist[u] + cost
                changed = True
        if not changed:
            return False
    # A relaxation succeeded on the n-th pass: a negative cycle exists.
    return True


def assert_optimal(
    network: FlowNetwork, potentials: Optional[Mapping[int, int]] = None
) -> None:
    """Raise ``AssertionError`` unless the assigned flow is feasible and optimal.

    Optimality is verified via the negative-cycle condition, which does not
    require potentials; when potentials are supplied the reduced-cost
    condition is additionally checked.
    """
    feasibility_problems = check_feasibility(network)
    if feasibility_problems:
        raise AssertionError("infeasible flow: " + "; ".join(feasibility_problems))
    if has_negative_cycle(network):
        raise AssertionError("flow is not optimal: residual negative cycle exists")
    if potentials is not None:
        rc_problems = check_reduced_cost_optimality(network, potentials)
        if rc_problems:
            raise AssertionError(
                "flow violates reduced cost optimality: " + "; ".join(rc_problems)
            )
