"""Flow-network substrate used by the Firmament scheduler.

This package contains the data structures shared by the scheduler and the
min-cost max-flow solvers:

* :mod:`repro.flow.graph` -- the directed flow network (nodes, arcs,
  capacities, costs, supplies) that scheduling policies build and solvers
  consume.
* :mod:`repro.flow.changes` -- typed graph-change records (supply, capacity,
  and cost changes) and the Table-3 classification of which changes break
  feasibility or optimality of an existing solution.
* :mod:`repro.flow.validation` -- checkers for flow feasibility,
  reduced-cost optimality, and epsilon-optimality used in tests and by the
  incremental solvers.
* :mod:`repro.flow.dimacs` -- DIMACS min-cost-flow serialization plus the
  incremental-change text format used towards an out-of-process solver.
"""

from repro.flow.graph import Arc, FlowNetwork, Node, NodeType
from repro.flow.changes import (
    ArcAddition,
    ArcCapacityChange,
    ArcCostChange,
    ArcRemoval,
    ChangeBatch,
    ChangeEffect,
    GraphChange,
    NodeAddition,
    NodeRemoval,
    SupplyChange,
    apply_changes,
    classify_arc_change,
)
from repro.flow.dimacs import (
    DimacsFormatError,
    read_dimacs,
    read_incremental,
    write_dimacs,
    write_incremental,
)
from repro.flow.validation import (
    check_epsilon_optimality,
    check_feasibility,
    check_reduced_cost_optimality,
    flow_cost,
)

__all__ = [
    "Arc",
    "FlowNetwork",
    "Node",
    "NodeType",
    "ArcAddition",
    "ArcCapacityChange",
    "ArcCostChange",
    "ArcRemoval",
    "ChangeBatch",
    "ChangeEffect",
    "GraphChange",
    "NodeAddition",
    "NodeRemoval",
    "SupplyChange",
    "apply_changes",
    "classify_arc_change",
    "DimacsFormatError",
    "read_dimacs",
    "read_incremental",
    "write_dimacs",
    "write_incremental",
    "check_epsilon_optimality",
    "check_feasibility",
    "check_reduced_cost_optimality",
    "flow_cost",
]
