"""Typed graph changes and their effect on an existing MCMF solution.

All cluster events (task submissions, completions, machine failures, cost
updates from monitoring data) ultimately reduce to three kinds of change to
the flow network (paper, Section 5.2):

1. **Supply changes** at nodes -- task submission adds a source, task
   completion/removal removes one.
2. **Capacity changes** on arcs -- machines failing or (re)joining the
   cluster; arc addition/removal is a capacity change from/to zero.
3. **Cost changes** on arcs -- the desirability of a route changed.

Table 3 of the paper classifies which arc changes invalidate feasibility or
optimality of the previously computed flow.  :func:`classify_arc_change`
implements that classification so the incremental solvers can decide how much
repair work a batch of changes requires.

:class:`ChangeBatch` groups one scheduling round's changes into a typed
batch.  The graph manager emits one per rebuild (by diffing consecutive
networks, :meth:`ChangeBatch.diff`), and the incremental cost-scaling
solver consumes it to patch its persistent residual network in place
(:meth:`repro.solvers.residual.ResidualNetwork.apply_changes`) instead of
reconstructing the residual from the flow-network object graph -- the key
to per-round solver work proportional to the change, not the graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.flow.graph import FlowNetwork, NodeType


class ChangeEffect(enum.Enum):
    """Effect of a graph change on an existing optimal, feasible solution."""

    NONE = "none"
    BREAKS_OPTIMALITY = "breaks_optimality"
    BREAKS_FEASIBILITY = "breaks_feasibility"


@dataclass
class GraphChange:
    """Base class for all graph changes applied between scheduling runs."""

    def apply(self, network: FlowNetwork) -> None:
        """Apply the change to the network in place."""
        raise NotImplementedError


@dataclass
class SupplyChange(GraphChange):
    """Change the supply of an existing node by ``delta``."""

    node_id: int
    delta: int

    def apply(self, network: FlowNetwork) -> None:
        node = network.node(self.node_id)
        network.set_supply(self.node_id, node.supply + self.delta)


@dataclass
class NodeAddition(GraphChange):
    """Add a node (typically a task node with unit supply) and its arcs.

    Attributes:
        node_type: Type of the node to create.
        supply: Supply of the new node.
        name: Human-readable label.
        ref: Scheduler-level entity reference.
        arcs_out: Sequence of ``(dst, capacity, cost)`` tuples.
        arcs_in: Sequence of ``(src, capacity, cost)`` tuples.
        node_id: Optional explicit identifier; allocated if omitted.
    """

    node_type: NodeType
    supply: int = 0
    name: str = ""
    ref: Optional[object] = None
    arcs_out: Sequence[Tuple[int, int, int]] = field(default_factory=tuple)
    arcs_in: Sequence[Tuple[int, int, int]] = field(default_factory=tuple)
    node_id: Optional[int] = None
    created_node_id: Optional[int] = None

    def apply(self, network: FlowNetwork) -> None:
        node = network.add_node(
            node_type=self.node_type,
            supply=self.supply,
            name=self.name,
            ref=self.ref,
            node_id=self.node_id,
        )
        self.created_node_id = node.node_id
        for dst, capacity, cost in self.arcs_out:
            network.add_arc(node.node_id, dst, capacity, cost)
        for src, capacity, cost in self.arcs_in:
            network.add_arc(src, node.node_id, capacity, cost)


@dataclass
class NodeRemoval(GraphChange):
    """Remove a node (typically a completed task or failed machine)."""

    node_id: int

    def apply(self, network: FlowNetwork) -> None:
        network.remove_node(self.node_id)


@dataclass
class ArcCapacityChange(GraphChange):
    """Change the capacity of an arc; capacity zero models arc removal."""

    src: int
    dst: int
    new_capacity: int

    def apply(self, network: FlowNetwork) -> None:
        network.set_arc_capacity(self.src, self.dst, self.new_capacity)


@dataclass
class ArcCostChange(GraphChange):
    """Change the cost of an arc."""

    src: int
    dst: int
    new_cost: int

    def apply(self, network: FlowNetwork) -> None:
        network.set_arc_cost(self.src, self.dst, self.new_cost)


@dataclass
class ArcAddition(GraphChange):
    """Add a new arc between existing nodes."""

    src: int
    dst: int
    capacity: int
    cost: int

    def apply(self, network: FlowNetwork) -> None:
        network.add_arc(self.src, self.dst, self.capacity, self.cost)


@dataclass
class ArcRemoval(GraphChange):
    """Remove an existing arc."""

    src: int
    dst: int

    def apply(self, network: FlowNetwork) -> None:
        network.remove_arc(self.src, self.dst)


def apply_changes(network: FlowNetwork, changes: Sequence[GraphChange]) -> None:
    """Apply a batch of graph changes to the network in order."""
    for change in changes:
        change.apply(network)


@dataclass
class ChangeBatch:
    """A typed batch of graph changes between two scheduling rounds.

    The batch carries the revision identifiers of the networks it connects
    so a consumer holding state for revision ``base_revision`` can verify a
    patch actually applies to what it has (and fall back to a rebuild when
    rounds were skipped).

    The changes are ordered so that applying them sequentially is always
    valid: arc removals first, then node removals, node additions, supply
    changes, arc additions, and finally capacity/cost patches.
    """

    changes: List[GraphChange] = field(default_factory=list)
    base_revision: Optional[int] = None
    target_revision: Optional[int] = None

    def __iter__(self):
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def __bool__(self) -> bool:
        # An empty batch is still meaningful (nothing changed), so a batch
        # object is always truthy; use len() to test for emptiness.
        return True

    def append(self, change: GraphChange) -> None:
        """Add a change to the batch."""
        self.changes.append(change)

    def apply_to(self, network: FlowNetwork) -> None:
        """Apply the batch to a flow network in order."""
        apply_changes(network, self.changes)

    def summary(self) -> Dict[str, int]:
        """Count the batch's changes by kind."""
        return summarize_changes(self.changes)

    @classmethod
    def diff(cls, old: FlowNetwork, new: FlowNetwork) -> "ChangeBatch":
        """Compute the typed change batch transforming ``old`` into ``new``.

        Flow values are ignored -- only structure (nodes, supplies, arcs,
        capacities, costs) is compared.  The diff is O(nodes + arcs) of
        dictionary lookups, negligible next to a solver run, and lets every
        consumer patch its own derived state instead of rebuilding it.
        """
        batch = cls(
            base_revision=getattr(old, "revision", None),
            target_revision=getattr(new, "revision", None),
        )
        changes = batch.changes

        old_nodes = {node.node_id: node for node in old.nodes()}
        new_nodes = {node.node_id: node for node in new.nodes()}

        # 1. Arcs that disappeared (including those of removed nodes).
        for arc in old.arcs():
            if not new.has_arc(arc.src, arc.dst):
                changes.append(ArcRemoval(src=arc.src, dst=arc.dst))
        # 2. Nodes that disappeared (their arcs are already removed above).
        for node_id in old_nodes:
            if node_id not in new_nodes:
                changes.append(NodeRemoval(node_id=node_id))
        # 3. New nodes (arcs follow as ArcAddition entries).
        for node_id, node in new_nodes.items():
            if node_id not in old_nodes:
                changes.append(
                    NodeAddition(
                        node_type=node.node_type,
                        supply=node.supply,
                        name=node.name,
                        ref=node.ref,
                        node_id=node_id,
                    )
                )
        # 4. Supply changes on surviving nodes.
        for node_id, node in new_nodes.items():
            old_node = old_nodes.get(node_id)
            if old_node is not None and old_node.supply != node.supply:
                changes.append(
                    SupplyChange(node_id=node_id, delta=node.supply - old_node.supply)
                )
        # 5. New arcs, then capacity/cost patches on surviving arcs.
        for arc in new.arcs():
            if not old.has_arc(arc.src, arc.dst):
                changes.append(
                    ArcAddition(
                        src=arc.src, dst=arc.dst, capacity=arc.capacity, cost=arc.cost
                    )
                )
                continue
            old_arc = old.arc(arc.src, arc.dst)
            if old_arc.capacity != arc.capacity:
                changes.append(
                    ArcCapacityChange(
                        src=arc.src, dst=arc.dst, new_capacity=arc.capacity
                    )
                )
            if old_arc.cost != arc.cost:
                changes.append(
                    ArcCostChange(src=arc.src, dst=arc.dst, new_cost=arc.cost)
                )
        return batch


class ChangeBatchBuilder:
    """Builds a :class:`ChangeBatch` by applying mutations to a network.

    The graph manager's incremental update path mutates its persistent
    :class:`FlowNetwork` in place; routing every mutation through this
    builder both applies it and records the corresponding typed change, so
    the round's :class:`ChangeBatch` is emitted *directly from the
    mutations* -- no second network is built and no diff pass runs.

    The builder coalesces redundant records so the finished batch matches
    what :meth:`ChangeBatch.diff` would have produced against a snapshot:

    * capacity/cost patches keep only the final value, and are dropped when
      the final value equals the round's starting value;
    * supply changes record the net delta against the starting supply;
    * an arc (or node) added and removed within the same round cancels out,
      and patches to same-round-added arcs fold into the addition record.

    :meth:`finish` orders the surviving changes the way :meth:`ChangeBatch.diff`
    does -- arc removals, node removals, node additions, supply changes,
    arc additions, capacity/cost patches -- so applying the batch
    sequentially is always valid.
    """

    def __init__(self, network: FlowNetwork, base_revision: Optional[int]) -> None:
        self.network = network
        self.base_revision = base_revision
        # Ordered dicts keyed by arc endpoints / node id; values described
        # per mutator below.
        self._removed_arcs: Dict[Tuple[int, int], ArcRemoval] = {}
        self._removed_nodes: Dict[int, NodeRemoval] = {}
        self._added_nodes: Dict[int, NodeAddition] = {}
        self._added_arcs: Dict[Tuple[int, int], ArcAddition] = {}
        # (src, dst) -> (arc, original_capacity, original_cost) at first
        # touch; holding the Arc object saves a lookup per patch at finish.
        self._patched_arcs: Dict[Tuple[int, int], Tuple[object, int, int]] = {}
        # node_id -> original supply at first touch.
        self._supply_origin: Dict[int, int] = {}
        #: Node ids whose incident arcs were removed this round plus nodes
        #: added this round -- the only candidates that can have become
        #: isolated, consumed by the graph manager's incremental prune.
        self.prune_candidates: set = set()

    # ------------------------------------------------------------------ #
    # Node mutations
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        node_type: NodeType,
        supply: int = 0,
        name: str = "",
        ref: Optional[object] = None,
        node_id: Optional[int] = None,
    ):
        """Add a node to the network and record the addition."""
        node = self.network.add_node(
            node_type=node_type, supply=supply, name=name, ref=ref, node_id=node_id
        )
        self._added_nodes[node.node_id] = NodeAddition(
            node_type=node_type,
            supply=supply,
            name=name,
            ref=ref,
            node_id=node.node_id,
        )
        self.prune_candidates.add(node.node_id)
        return node

    def remove_node(self, node_id: int) -> None:
        """Remove a node (recording removals for its live incident arcs)."""
        for arc in self.network.outgoing(node_id):
            self._record_arc_removal(arc.key())
        for arc in self.network.incoming(node_id):
            self._record_arc_removal(arc.key())
        self.network.remove_node(node_id)
        self._supply_origin.pop(node_id, None)
        if node_id in self._added_nodes:
            # Added and removed within the same round: net no-op.
            del self._added_nodes[node_id]
        else:
            self._removed_nodes[node_id] = NodeRemoval(node_id=node_id)
        self.prune_candidates.discard(node_id)

    def set_supply(self, node_id: int, supply: int) -> None:
        """Set a node's supply, recording the net change for the round."""
        node = self.network.node(node_id)
        if node.supply == supply:
            return
        if node_id in self._added_nodes:
            # Fold into the pending addition record.
            self._added_nodes[node_id].supply = supply
        else:
            self._supply_origin.setdefault(node_id, node.supply)
        self.network.set_supply(node_id, supply)

    # ------------------------------------------------------------------ #
    # Arc mutations
    # ------------------------------------------------------------------ #
    def add_arc(self, src: int, dst: int, capacity: int, cost: int) -> None:
        """Add an arc and record the addition.

        An arc removed earlier in the same round and re-added stays recorded
        as removal plus addition; removals precede additions in the finished
        batch, so the sequence applies cleanly.
        """
        self.network.add_arc(src, dst, capacity, cost)
        self._added_arcs[(src, dst)] = ArcAddition(
            src=src, dst=dst, capacity=capacity, cost=cost
        )

    def remove_arc(self, src: int, dst: int) -> None:
        """Remove an arc and record the removal."""
        self._record_arc_removal((src, dst))
        self.network.remove_arc(src, dst)

    def set_arc_capacity(self, src: int, dst: int, capacity: int) -> None:
        """Patch an arc's capacity, recording the net change."""
        arc = self.network.arc(src, dst)
        if arc.capacity == capacity:
            return
        key = (src, dst)
        if key in self._added_arcs:
            self._added_arcs[key].capacity = capacity
        else:
            self._patched_arcs.setdefault(key, (arc, arc.capacity, arc.cost))
        self.network.set_arc_capacity(src, dst, capacity)

    def set_arc_cost(self, src: int, dst: int, cost: int) -> None:
        """Patch an arc's cost, recording the net change."""
        arc = self.network.arc(src, dst)
        if arc.cost == cost:
            return
        key = (src, dst)
        if key in self._added_arcs:
            self._added_arcs[key].cost = cost
        else:
            self._patched_arcs.setdefault(key, (arc, arc.capacity, arc.cost))
        self.network.set_arc_cost(src, dst, cost)

    def patch_known_arc_cost(self, key: Tuple[int, int], arc, cost: int) -> None:
        """Hot-loop variant of :meth:`set_arc_cost`: the caller already
        resolved the arc object for ``key`` and vouches it is live.

        The graph manager's per-round waiting-cost refresh touches every
        clean task; this skips the redundant arc lookup and the
        ``network.set_arc_cost`` indirection.
        """
        if arc.cost == cost:
            return
        if key in self._added_arcs:
            self._added_arcs[key].cost = cost
        else:
            self._patched_arcs.setdefault(key, (arc, arc.capacity, arc.cost))
        arc.cost = cost

    def _record_arc_removal(self, key: Tuple[int, int]) -> None:
        self._patched_arcs.pop(key, None)
        self.prune_candidates.update(key)
        if key in self._added_arcs:
            # Added and removed within the same round: net no-op.
            del self._added_arcs[key]
            return
        self._removed_arcs[key] = ArcRemoval(src=key[0], dst=key[1])

    # ------------------------------------------------------------------ #
    # Counters and batch assembly
    # ------------------------------------------------------------------ #
    @property
    def nodes_touched(self) -> int:
        """Nodes added, removed, or whose supply changed this round."""
        return (
            len(self._added_nodes)
            + len(self._removed_nodes)
            + len(self._supply_origin)
        )

    @property
    def arcs_patched(self) -> int:
        """Arcs added, removed, or patched (capacity/cost) this round."""
        return (
            len(self._added_arcs) + len(self._removed_arcs) + len(self._patched_arcs)
        )

    def finish(self, target_revision: Optional[int]) -> ChangeBatch:
        """Assemble the recorded mutations into a canonical change batch."""
        batch = ChangeBatch(
            base_revision=self.base_revision, target_revision=target_revision
        )
        changes = batch.changes
        changes.extend(self._removed_arcs.values())
        changes.extend(self._removed_nodes.values())
        changes.extend(self._added_nodes.values())
        for node_id, original in self._supply_origin.items():
            current = self.network.node(node_id).supply
            if current != original:
                changes.append(SupplyChange(node_id=node_id, delta=current - original))
        changes.extend(self._added_arcs.values())
        for (src, dst), (arc, capacity, cost) in self._patched_arcs.items():
            if arc.capacity != capacity:
                changes.append(
                    ArcCapacityChange(src=src, dst=dst, new_capacity=arc.capacity)
                )
            if arc.cost != cost:
                changes.append(ArcCostChange(src=src, dst=dst, new_cost=arc.cost))
        return batch


def classify_arc_change(
    reduced_cost: int,
    flow: int,
    *,
    new_capacity: Optional[int] = None,
    old_capacity: Optional[int] = None,
    new_reduced_cost: Optional[int] = None,
) -> ChangeEffect:
    """Classify an arc change per Table 3 of the paper.

    Given the reduced cost ``c^pi_ij`` and the flow on the arc under the
    previous (optimal, feasible) solution, determine whether changing the
    arc's capacity or cost preserves optimality and feasibility.

    Exactly one kind of change must be described: either capacity (pass both
    ``old_capacity`` and ``new_capacity``) or cost (pass ``new_reduced_cost``,
    the reduced cost after the change under the old potentials).

    Args:
        reduced_cost: Reduced cost of the arc before the change.
        flow: Flow on the arc in the previous solution.
        new_capacity: New capacity, for a capacity change.
        old_capacity: Previous capacity, for a capacity change.
        new_reduced_cost: Reduced cost after a cost change.

    Returns:
        The :class:`ChangeEffect` of the change.

    Raises:
        ValueError: If neither or both change kinds are described.
    """
    is_capacity_change = new_capacity is not None and old_capacity is not None
    is_cost_change = new_reduced_cost is not None
    if is_capacity_change == is_cost_change:
        raise ValueError("describe exactly one of capacity change or cost change")

    if is_capacity_change:
        if new_capacity > old_capacity:
            # Increasing capacity: under complementary slackness flow on an arc
            # with negative reduced cost must saturate it, so extra capacity on
            # such an arc breaks optimality.  Zero/positive reduced cost arcs
            # are unaffected.
            if reduced_cost < 0:
                return ChangeEffect.BREAKS_OPTIMALITY
            return ChangeEffect.NONE
        if new_capacity < old_capacity:
            # Decreasing capacity below the carried flow breaks feasibility.
            if flow > new_capacity:
                return ChangeEffect.BREAKS_FEASIBILITY
            return ChangeEffect.NONE
        return ChangeEffect.NONE

    # Cost change.
    if new_reduced_cost > reduced_cost:
        # Increasing cost: if the arc carried flow and its reduced cost becomes
        # positive, complementary slackness is violated.
        if flow > 0 and new_reduced_cost > 0:
            return ChangeEffect.BREAKS_OPTIMALITY
        return ChangeEffect.NONE
    if new_reduced_cost < reduced_cost:
        # Decreasing cost: if the reduced cost becomes negative while the arc
        # has residual capacity, a cheaper route exists and optimality breaks.
        if new_reduced_cost < 0:
            return ChangeEffect.BREAKS_OPTIMALITY
        return ChangeEffect.NONE
    return ChangeEffect.NONE


def summarize_changes(changes: Sequence[GraphChange]) -> Dict[str, int]:
    """Count changes by kind.

    Used by the scheduler for logging and by the incremental solver to decide
    whether a warm start is worthwhile (a batch dominated by node additions
    and removals breaks feasibility everywhere, limiting reuse).
    """
    summary: Dict[str, int] = {}
    for change in changes:
        key = type(change).__name__
        summary[key] = summary.get(key, 0) + 1
    return summary


def changes_break_feasibility(
    network: FlowNetwork, changes: Sequence[GraphChange]
) -> bool:
    """Return True if any change in the batch can break flow feasibility.

    Node additions with non-zero supply, node removals, and capacity
    reductions below the carried flow all break feasibility of the previous
    solution; cost changes only ever break optimality (Table 3).
    """
    for change in changes:
        if isinstance(change, NodeAddition) and change.supply != 0:
            return True
        if isinstance(change, NodeRemoval):
            return True
        if isinstance(change, SupplyChange) and change.delta != 0:
            return True
        if isinstance(change, (ArcRemoval,)):
            if network.has_arc(change.src, change.dst):
                if network.arc(change.src, change.dst).flow > 0:
                    return True
        if isinstance(change, ArcCapacityChange):
            if network.has_arc(change.src, change.dst):
                if network.arc(change.src, change.dst).flow > change.new_capacity:
                    return True
    return False
