"""Firmament scheduler core: policies, graph manager, placement extraction.

The scheduler follows the architecture of Figure 4 in the paper: the
scheduling policy turns cluster state and monitoring data into a flow
network (via the :class:`~repro.core.graph_manager.GraphManager`), an MCMF
solver computes the optimal flow, and the placements implied by that flow
are extracted with the Listing-1 traversal and applied to the cluster.
"""

from repro.core.graph_manager import (
    GraphConsistencyError,
    GraphManager,
    GraphUpdateStats,
)
from repro.core.placement import extract_placements
from repro.core.scheduler import FirmamentScheduler, SchedulingDecision, SchedulerStatistics
from repro.core.sharding import (
    CellPartition,
    CellStateView,
    CellTopologyView,
    CrossCellBalancer,
    ShardedScheduler,
)
from repro.core.policies import (
    CpuMemoryPolicy,
    LoadSpreadingPolicy,
    NetworkAwarePolicy,
    QuincyPolicy,
    RandomPlacementPolicy,
    SchedulingPolicy,
    ShortestJobFirstPolicy,
)

__all__ = [
    "GraphConsistencyError",
    "GraphManager",
    "GraphUpdateStats",
    "extract_placements",
    "FirmamentScheduler",
    "SchedulingDecision",
    "SchedulerStatistics",
    "CellPartition",
    "CellStateView",
    "CellTopologyView",
    "CrossCellBalancer",
    "ShardedScheduler",
    "CpuMemoryPolicy",
    "LoadSpreadingPolicy",
    "NetworkAwarePolicy",
    "QuincyPolicy",
    "RandomPlacementPolicy",
    "SchedulingPolicy",
    "ShortestJobFirstPolicy",
]
