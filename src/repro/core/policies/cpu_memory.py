"""Multi-dimensional (CPU/RAM) scheduling policy with request aggregators.

Section 3.2 of the paper describes policy-defined aggregators that group
"tasks with similar resource needs"; Section 7.1 notes that Firmament
supports multi-dimensional feasibility checking in the style of Borg even
though the head-to-head comparison with Quincy uses slots.  This policy
exercises that capability:

* tasks are grouped into resource-request *equivalence classes* (rounded
  CPU/RAM buckets) and connect to one request aggregator per class;
* each request aggregator has an arc to every machine on which one more
  task of that class still fits (a Borg-style multi-dimensional feasibility
  check), with a cost that grows with how full the machine already is, so
  utilization stays balanced; and
* every task keeps the usual unscheduled-aggregator arc, and running tasks
  keep a cheap continuation arc to their current machine.

The request aggregators keep the arc count at
``O(num_classes * num_machines)`` instead of ``O(num_tasks * num_machines)``,
which is exactly why the paper introduces aggregators.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.cluster.resources import ResourceVector, equivalence_class
from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.graph import NodeType


class CpuMemoryPolicy(SchedulingPolicy):
    """Multi-dimensional CPU/RAM policy using per-class request aggregators."""

    name = "cpu_memory"
    supports_incremental_build = True

    #: Cost units per percentage point of dominant-share load on a machine.
    load_cost_factor: int = 2

    def __init__(
        self,
        cpu_granularity: float = 1.0,
        ram_granularity_gb: float = 2.0,
    ) -> None:
        """Create the policy.

        Args:
            cpu_granularity: Width of the CPU-request buckets (cores) used to
                form task equivalence classes.
            ram_granularity_gb: Width of the RAM-request buckets (GB).
        """
        if cpu_granularity <= 0 or ram_granularity_gb <= 0:
            raise ValueError("equivalence-class granularities must be positive")
        self.cpu_granularity = cpu_granularity
        self.ram_granularity_gb = ram_granularity_gb

    # ------------------------------------------------------------------ #
    # Policy API
    # ------------------------------------------------------------------ #
    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add request aggregators, feasibility arcs, and fallback arcs.

        Composed from the per-entity hooks below so the full build and the
        incremental per-entity re-derivation can never diverge.
        """
        tasks = state.schedulable_tasks()
        if not tasks:
            return
        topology = state.topology

        # Machines -> sink arcs, one slot of capacity per schedulable task
        # that fits; the per-class arcs below enforce the real capacity.
        for machine in topology.healthy_machines():
            self.arcs_for_machine(state, builder, machine, now)

        jobs_seen = set()
        for task in tasks:
            jobs_seen.add(task.job_id)
            self.arcs_for_task(state, builder, task, now)

        # Class aggregator -> machine arcs where the class request fits.
        for key in sorted(self._class_members(state, builder)):
            self.refresh_aggregator(state, builder, ("class", key), now)

        for job_id in jobs_seen:
            self.refresh_aggregator(state, builder, ("job", job_id), now)

    # ------------------------------------------------------------------ #
    # Per-entity derivation hooks (incremental graph construction)
    # ------------------------------------------------------------------ #
    def arcs_for_task(
        self, state: ClusterState, builder: PolicyNetworkBuilder, task, now: float
    ) -> None:
        """Emit one task's class-aggregator, unscheduled, and continuation
        arcs."""
        key = self._class_key(task)
        aggregator = builder.aggregator(f"RA{key}", NodeType.REQUEST_AGGREGATOR)
        task_node = builder.task_node(task.task_id)
        builder.add_arc(task_node, aggregator, 1, self.placement_base_cost)
        builder.add_arc(
            task_node,
            builder.unscheduled_node(task.job_id),
            1,
            self.unscheduled_cost(task, now),
        )
        if task.is_running and task.machine_id is not None:
            builder.add_arc(
                task_node,
                builder.machine_node(task.machine_id),
                1,
                self.continuation_cost(task),
            )

    def arcs_for_machine(
        self, state: ClusterState, builder: PolicyNetworkBuilder, machine, now: float
    ) -> None:
        """Emit one healthy machine's sink arc."""
        builder.add_arc(
            builder.machine_node(machine.machine_id),
            builder.sink,
            machine.num_slots,
            0,
        )

    def refresh_aggregator(
        self, state: ClusterState, builder: PolicyNetworkBuilder, key, now: float
    ) -> None:
        """Emit the arcs of one aggregator scope.

        Scope keys: ``("class", class_key)`` re-derives a class's arcs to
        *every* machine (membership changed), ``("class_machine",
        class_key, machine_id)`` re-derives the single arc to one machine
        (that machine's load or availability changed), and ``("job",
        job_id)`` the job's unscheduled-to-sink arc.
        """
        kind = key[0]
        if kind == "job":
            job = state.jobs.get(key[1])
            if job is None:
                return
            builder.add_arc(
                builder.unscheduled_node(key[1]), builder.sink, job.num_tasks, 0
            )
            return

        class_key = key[1]
        members = self._class_members(state, builder).get(class_key, ())
        if not members:
            return
        if kind == "class_machine":
            machine = state.topology.machines.get(key[2])
            if machine is None or not machine.is_available:
                return
            machines = (machine,)
        else:
            machines = state.topology.healthy_machines()
        aggregator = builder.aggregator(f"RA{class_key}", NodeType.REQUEST_AGGREGATOR)
        request = self._class_request(class_key)
        spare, load = self._machine_statistics(state, builder)
        for machine in machines:
            machine_id = machine.machine_id
            capacity = self._fitting_count(request, spare[machine_id])
            capacity = min(capacity, state.free_slots(machine_id), len(members))
            if capacity <= 0:
                continue
            cost = self.machine_cost(load[machine_id], request, machine)
            builder.add_arc(
                aggregator,
                builder.machine_node(machine_id),
                capacity,
                cost,
            )

    def dirty_aggregators(self, state: ClusterState, dirty, now: float, builder):
        """Scopes invalidated by the round's dirty sets.

        Classes of dirty tasks re-derive fully (their membership, and hence
        the ``len(members)`` capacity cap on every machine arc, may have
        changed).  A machine whose load changed only shifts its *own* spare
        capacity and load cost, so the remaining classes re-derive just
        their arc to that machine -- O(classes x dirty machines), not
        O(classes x machines).
        """
        full_classes = set()
        for task_id in dirty.tasks:
            task = state.tasks.get(task_id)
            if task is not None:
                full_classes.add(self._class_key(task))
        keys = [("class", class_key) for class_key in sorted(full_classes)]
        dirty_machines = sorted(
            machine_id
            for machine_id in dirty.machines_load
            if machine_id in state.topology.machines
            and state.topology.machines[machine_id].is_available
        )
        if dirty_machines:
            # Shares the round cache with refresh_aggregator, so the
            # class grouping runs once per round, not once per caller.
            all_classes = set(self._class_members(state, builder))
            for class_key in sorted(all_classes - full_classes):
                for machine_id in dirty_machines:
                    keys.append(("class_machine", class_key, machine_id))
        keys.extend(("job", job_id) for job_id in sorted(dirty.jobs))
        return keys

    def owned_arcs(self, builder: PolicyNetworkBuilder, key):
        """Structural scope ownership for the request-aggregator partition."""
        network = builder.network
        kind = key[0]
        if kind == "machine":
            return network.outgoing(builder.machine_node(key[1]))  # machine -> sink
        if kind == "class":
            node_id = builder.find_aggregator(f"RA{key[1]}")
            if node_id is None or not network.has_node(node_id):
                return []
            return network.outgoing(node_id)  # RA -> machines
        if kind == "class_machine":
            node_id = builder.find_aggregator(f"RA{key[1]}")
            if node_id is None or not network.has_node(node_id):
                return []
            arc = network.find_arc(node_id, builder.machine_node(key[2]))
            return [arc] if arc is not None else []
        if kind == "job":
            unscheduled_node = builder.peek_unscheduled_node(key[1])
            if unscheduled_node is None or not network.has_node(unscheduled_node):
                return []
            return network.outgoing(unscheduled_node)  # U -> sink
        return super().owned_arcs(builder, key)

    def task_machine_dependencies(self, state: ClusterState, task):
        """Only the continuation arc depends on a specific machine."""
        if task.machine_id is not None:
            return (task.machine_id,)
        return ()

    # ------------------------------------------------------------------ #
    # Per-round derived statistics (shared across scopes via round_cache)
    # ------------------------------------------------------------------ #
    def _class_members(
        self, state: ClusterState, builder: PolicyNetworkBuilder
    ) -> Dict[Hashable, List]:
        """Group schedulable tasks by equivalence class, once per round."""
        cache = builder.round_cache
        members = cache.get("cpu_memory_class_members")
        if members is None:
            members = {}
            for task in state.schedulable_tasks():
                members.setdefault(self._class_key(task), []).append(task)
            cache["cpu_memory_class_members"] = members
        return members

    def _machine_statistics(
        self, state: ClusterState, builder: PolicyNetworkBuilder
    ) -> Tuple[Dict[int, ResourceVector], Dict[int, float]]:
        """Spare capacity and dominant-share load per machine, once per
        round."""
        cache = builder.round_cache
        stats = cache.get("cpu_memory_machine_stats")
        if stats is None:
            spare: Dict[int, ResourceVector] = {}
            load: Dict[int, float] = {}
            for machine in state.topology.healthy_machines():
                spare[machine.machine_id] = state.spare_resources(machine.machine_id)
                in_use = state.resources_in_use(machine.machine_id)
                load[machine.machine_id] = in_use.dominant_share(
                    ResourceVector.for_machine(machine)
                )
            stats = (spare, load)
            cache["cpu_memory_machine_stats"] = stats
        return stats

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def machine_cost(self, load: float, request: ResourceVector, machine) -> int:
        """Cost of placing one task of the given class on a machine.

        Grows with the machine's current dominant-share load and with how
        large the request is relative to the machine, so small tasks prefer
        lightly loaded machines and big tasks pay for the capacity they
        consume.
        """
        request_share = request.dominant_share(ResourceVector.for_machine(machine))
        return (
            self.placement_base_cost
            + int(round(100 * load)) * self.load_cost_factor
            + int(round(50 * request_share))
        )

    # ------------------------------------------------------------------ #
    # Equivalence classes
    # ------------------------------------------------------------------ #
    def _class_key(self, task) -> Tuple[int, int]:
        return equivalence_class(
            task,
            cpu_granularity=self.cpu_granularity,
            ram_granularity_gb=self.ram_granularity_gb,
        )

    def _class_request(self, key: Tuple[int, int]) -> ResourceVector:
        """Return the (conservative) per-task request of an equivalence class."""
        cpu_bucket, ram_bucket = key
        return ResourceVector(
            cpu_cores=cpu_bucket * self.cpu_granularity,
            ram_gb=ram_bucket * self.ram_granularity_gb,
        )

    def _fitting_count(self, request: ResourceVector, spare: ResourceVector) -> int:
        """Return how many tasks of the class fit into the spare capacity."""
        if request.is_zero():
            return 1_000_000
        counts = []
        for dimension in ResourceVector.DIMENSIONS:
            need = getattr(request, dimension)
            if need > 0:
                counts.append(int(getattr(spare, dimension) // need))
        return min(counts) if counts else 0
