"""Multi-dimensional (CPU/RAM) scheduling policy with request aggregators.

Section 3.2 of the paper describes policy-defined aggregators that group
"tasks with similar resource needs"; Section 7.1 notes that Firmament
supports multi-dimensional feasibility checking in the style of Borg even
though the head-to-head comparison with Quincy uses slots.  This policy
exercises that capability:

* tasks are grouped into resource-request *equivalence classes* (rounded
  CPU/RAM buckets) and connect to one request aggregator per class;
* each request aggregator has an arc to every machine on which one more
  task of that class still fits (a Borg-style multi-dimensional feasibility
  check), with a cost that grows with how full the machine already is, so
  utilization stays balanced; and
* every task keeps the usual unscheduled-aggregator arc, and running tasks
  keep a cheap continuation arc to their current machine.

The request aggregators keep the arc count at
``O(num_classes * num_machines)`` instead of ``O(num_tasks * num_machines)``,
which is exactly why the paper introduces aggregators.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.cluster.resources import ResourceVector, equivalence_class
from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.graph import NodeType


class CpuMemoryPolicy(SchedulingPolicy):
    """Multi-dimensional CPU/RAM policy using per-class request aggregators."""

    name = "cpu_memory"

    #: Cost units per percentage point of dominant-share load on a machine.
    load_cost_factor: int = 2

    def __init__(
        self,
        cpu_granularity: float = 1.0,
        ram_granularity_gb: float = 2.0,
    ) -> None:
        """Create the policy.

        Args:
            cpu_granularity: Width of the CPU-request buckets (cores) used to
                form task equivalence classes.
            ram_granularity_gb: Width of the RAM-request buckets (GB).
        """
        if cpu_granularity <= 0 or ram_granularity_gb <= 0:
            raise ValueError("equivalence-class granularities must be positive")
        self.cpu_granularity = cpu_granularity
        self.ram_granularity_gb = ram_granularity_gb

    # ------------------------------------------------------------------ #
    # Policy API
    # ------------------------------------------------------------------ #
    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add request aggregators, feasibility arcs, and fallback arcs."""
        tasks = state.schedulable_tasks()
        if not tasks:
            return
        topology = state.topology

        # Group tasks by resource-request equivalence class.
        class_members: Dict[Hashable, List] = {}
        for task in tasks:
            key = self._class_key(task)
            class_members.setdefault(key, []).append(task)

        # Machines -> sink arcs, one slot of capacity per schedulable task
        # that fits; the per-class arcs below enforce the real capacity.
        spare: Dict[int, ResourceVector] = {}
        load: Dict[int, float] = {}
        for machine in topology.healthy_machines():
            spare[machine.machine_id] = state.spare_resources(machine.machine_id)
            in_use = state.resources_in_use(machine.machine_id)
            load[machine.machine_id] = in_use.dominant_share(
                ResourceVector.for_machine(machine)
            )
            builder.add_arc(
                builder.machine_node(machine.machine_id),
                builder.sink,
                machine.num_slots,
                0,
            )

        jobs_seen = set()
        for key, members in sorted(class_members.items()):
            aggregator = builder.aggregator(
                f"RA{key}", NodeType.REQUEST_AGGREGATOR
            )
            request = self._class_request(key)

            # Task -> class aggregator arcs.
            for task in members:
                task_node = builder.task_node(task.task_id)
                jobs_seen.add(task.job_id)
                builder.add_arc(task_node, aggregator, 1, self.placement_base_cost)
                builder.add_arc(
                    task_node,
                    builder.unscheduled_node(task.job_id),
                    1,
                    self.unscheduled_cost(task, now),
                )
                if task.is_running and task.machine_id is not None:
                    builder.add_arc(
                        task_node,
                        builder.machine_node(task.machine_id),
                        1,
                        self.continuation_cost(task),
                    )

            # Class aggregator -> machine arcs where the class request fits.
            for machine in topology.healthy_machines():
                machine_id = machine.machine_id
                capacity = self._fitting_count(request, spare[machine_id])
                capacity = min(capacity, state.free_slots(machine_id), len(members))
                if capacity <= 0:
                    continue
                cost = self.machine_cost(load[machine_id], request, machine)
                builder.add_arc(
                    aggregator,
                    builder.machine_node(machine_id),
                    capacity,
                    cost,
                )

        for job_id in jobs_seen:
            job = state.jobs[job_id]
            builder.add_arc(
                builder.unscheduled_node(job_id), builder.sink, job.num_tasks, 0
            )

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def machine_cost(self, load: float, request: ResourceVector, machine) -> int:
        """Cost of placing one task of the given class on a machine.

        Grows with the machine's current dominant-share load and with how
        large the request is relative to the machine, so small tasks prefer
        lightly loaded machines and big tasks pay for the capacity they
        consume.
        """
        request_share = request.dominant_share(ResourceVector.for_machine(machine))
        return (
            self.placement_base_cost
            + int(round(100 * load)) * self.load_cost_factor
            + int(round(50 * request_share))
        )

    # ------------------------------------------------------------------ #
    # Equivalence classes
    # ------------------------------------------------------------------ #
    def _class_key(self, task) -> Tuple[int, int]:
        return equivalence_class(
            task,
            cpu_granularity=self.cpu_granularity,
            ram_granularity_gb=self.ram_granularity_gb,
        )

    def _class_request(self, key: Tuple[int, int]) -> ResourceVector:
        """Return the (conservative) per-task request of an equivalence class."""
        cpu_bucket, ram_bucket = key
        return ResourceVector(
            cpu_cores=cpu_bucket * self.cpu_granularity,
            ram_gb=ram_bucket * self.ram_granularity_gb,
        )

    def _fitting_count(self, request: ResourceVector, spare: ResourceVector) -> int:
        """Return how many tasks of the class fit into the spare capacity."""
        if request.is_zero():
            return 1_000_000
        counts = []
        for dimension in ResourceVector.DIMENSIONS:
            need = getattr(request, dimension)
            if need > 0:
                counts.append(int(getattr(spare, dimension) // need))
        return min(counts) if counts else 0
