"""Network-aware scheduling policy (Figure 6c of the paper).

Each task connects to a *request aggregator* (RA) for its network bandwidth
request; the request aggregator has arcs only to machines with enough spare
bandwidth, and the cost of those arcs is the sum of the request and the
bandwidth already in use on the machine, which steers tasks towards
lightly-loaded network links and balances utilization.  The arcs are
re-derived every scheduling run from the monitor's observed bandwidth use,
so they adapt dynamically as background traffic changes.

The paper uses this policy on the 40-machine testbed (Section 7.5), where
it reduces the tail of short batch tasks' response times by 3.4-6.2x
compared to schedulers that ignore network interference.
"""

from __future__ import annotations

from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.graph import NodeType


class NetworkAwarePolicy(SchedulingPolicy):
    """Avoid overcommitting machine network bandwidth."""

    name = "network_aware"

    def __init__(self, bandwidth_bucket_mbps: int = 250, cost_per_mbps: float = 0.01) -> None:
        """Create the policy.

        Args:
            bandwidth_bucket_mbps: Tasks are grouped into request aggregators
                by their bandwidth request rounded up to this bucket size, so
                similar requests share one aggregator node.
            cost_per_mbps: Conversion from Mb/s of (requested + used)
                bandwidth into cost units on the RA->machine arcs.
        """
        if bandwidth_bucket_mbps <= 0:
            raise ValueError("bandwidth bucket must be positive")
        self.bandwidth_bucket_mbps = bandwidth_bucket_mbps
        self.cost_per_mbps = cost_per_mbps

    def request_bucket(self, request_mbps: int) -> int:
        """Return the bucketed bandwidth request used for aggregator identity."""
        if request_mbps <= 0:
            return 0
        buckets = (request_mbps + self.bandwidth_bucket_mbps - 1) // self.bandwidth_bucket_mbps
        return buckets * self.bandwidth_bucket_mbps

    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add request aggregators and bandwidth-aware arcs."""
        tasks = state.schedulable_tasks()
        if not tasks:
            return
        topology = state.topology

        # Machines -> sink.
        for machine in topology.healthy_machines():
            builder.add_arc(
                builder.machine_node(machine.machine_id),
                builder.sink,
                machine.num_slots,
                0,
            )

        # Group tasks by bandwidth request bucket.
        buckets = {}
        jobs_seen = set()
        for task in tasks:
            bucket = self.request_bucket(task.network_request_mbps)
            buckets.setdefault(bucket, []).append(task)
            jobs_seen.add(task.job_id)

        for bucket, bucket_tasks in sorted(buckets.items()):
            aggregator = builder.aggregator(
                f"RA{bucket}", NodeType.REQUEST_AGGREGATOR
            )
            for task in bucket_tasks:
                task_node = builder.task_node(task.task_id)
                builder.add_arc(task_node, aggregator, 1, 0)
                builder.add_arc(
                    task_node,
                    builder.unscheduled_node(task.job_id),
                    1,
                    self.unscheduled_cost(task, now),
                )
                if task.is_running and task.machine_id is not None:
                    builder.add_arc(
                        task_node,
                        builder.machine_node(task.machine_id),
                        1,
                        self.continuation_cost(task),
                    )

            # Aggregator -> machines with sufficient spare bandwidth.  The
            # cost reflects request size plus current utilization.  The arc
            # capacity admits at most one *new* task with this request per
            # machine per scheduling run: because arc costs are static within
            # one MCMF run, a larger capacity would let the solver stack
            # several bandwidth-hungry tasks on one machine at the same cost
            # as spreading them; limiting the per-run capacity (the arcs are
            # re-derived every run, so subsequent runs can add more) keeps
            # the placement faithful to the policy's intent.
            for machine in topology.healthy_machines():
                spare = state.spare_network_bandwidth(machine.machine_id)
                free_slots = state.free_slots(machine.machine_id)
                if free_slots <= 0 and bucket > 0:
                    continue
                if bucket > 0:
                    if spare < bucket:
                        continue
                    capacity = 1
                else:
                    capacity = max(1, free_slots)
                used = machine.network_bandwidth_mbps - spare
                cost = (
                    int(round((bucket + used) * self.cost_per_mbps))
                    + self.placement_base_cost
                )
                builder.add_arc(aggregator, builder.machine_node(machine.machine_id), capacity, cost)

        for job_id in jobs_seen:
            job = state.jobs[job_id]
            builder.add_arc(builder.unscheduled_node(job_id), builder.sink, job.num_tasks, 0)
