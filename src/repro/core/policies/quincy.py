"""Quincy's locality-oriented scheduling policy (Figure 6b of the paper).

Tasks have low-cost *preference arcs* to machines and racks holding a large
fraction of their input data, and fall back to scheduling anywhere via the
cluster aggregator ``X`` at the cost of transferring their entire input
across the core network.  The policy trades off data locality, task waiting
time, and preemption cost -- exactly the policy Quincy proposed for batch
jobs, which the paper reuses for its head-to-head comparison.

The *preference threshold* controls how much local data a machine (or rack)
must hold before the task receives a preference arc to it.  Lowering the
threshold adds many more arcs to the graph: Section 7.2 of the paper shows
Firmament sustains a 2 % threshold (better locality, more arcs) where
Quincy's cost scaling becomes unacceptably slow (Figure 15).
"""

from __future__ import annotations

from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.graph import NodeType


class QuincyPolicy(SchedulingPolicy):
    """Data-locality policy with cluster and rack aggregators."""

    name = "quincy"
    supports_incremental_build = True

    def __init__(
        self,
        machine_preference_threshold: float = 0.14,
        rack_preference_threshold: float = 0.30,
        max_preference_arcs: int = 10,
    ) -> None:
        """Create the policy.

        Args:
            machine_preference_threshold: Minimum fraction of a task's input
                that must live on a machine for the task to get a preference
                arc to it (the paper's default corresponds to ~14 %, at most
                seven arcs; 2 % is the aggressive setting of Figure 15).
            rack_preference_threshold: Same, for rack aggregators.
            max_preference_arcs: Upper bound on preference arcs per task
                (Quincy used a maximum of ten).
        """
        if not 0.0 < machine_preference_threshold <= 1.0:
            raise ValueError("machine preference threshold must be in (0, 1]")
        self.machine_preference_threshold = machine_preference_threshold
        self.rack_preference_threshold = rack_preference_threshold
        self.max_preference_arcs = max_preference_arcs

    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add cluster/rack aggregators, preference arcs, and fallback arcs.

        Composed from the per-entity hooks below so the full build and the
        incremental per-entity re-derivation can never diverge.
        """
        tasks = state.schedulable_tasks()
        if not tasks:
            return
        topology = state.topology

        # Aggregation backbone: X -> racks -> machines -> sink.
        for rack_id in topology.racks:
            self.refresh_aggregator(state, builder, ("rack", rack_id), now)
        for machine in topology.healthy_machines():
            self.arcs_for_machine(state, builder, machine, now)

        jobs_seen = set()
        for task in tasks:
            jobs_seen.add(task.job_id)
            self.arcs_for_task(state, builder, task, now)

        for job_id in jobs_seen:
            self.refresh_aggregator(state, builder, ("job", job_id), now)

    # ------------------------------------------------------------------ #
    # Per-entity derivation hooks (incremental graph construction)
    # ------------------------------------------------------------------ #
    def arcs_for_task(
        self, state: ClusterState, builder: PolicyNetworkBuilder, task, now: float
    ) -> None:
        """Emit one task's fallback, unscheduled, continuation, and
        preference arcs."""
        task_node = builder.task_node(task.task_id)
        cluster_agg = builder.aggregator("X", NodeType.CLUSTER_AGGREGATOR)

        # Fallback: schedule anywhere via the cluster aggregator, paying
        # for transferring the entire input across the core.
        builder.add_arc(
            task_node,
            cluster_agg,
            1,
            self.transfer_cost(task, 0.0) + self.placement_base_cost,
        )

        # Unscheduled / preemption arc.
        builder.add_arc(
            task_node,
            builder.unscheduled_node(task.job_id),
            1,
            self.unscheduled_cost(task, now),
        )

        # Continuation arc for running tasks: data is already local.
        if task.is_running and task.machine_id is not None:
            builder.add_arc(
                task_node,
                builder.machine_node(task.machine_id),
                1,
                self.continuation_cost(task),
            )

        self._add_preference_arcs(state, builder, task, task_node)

    def arcs_for_machine(
        self, state: ClusterState, builder: PolicyNetworkBuilder, machine, now: float
    ) -> None:
        """Emit one healthy machine's backbone arcs (rack in, sink out)."""
        machine_node = builder.machine_node(machine.machine_id)
        rack_node = builder.rack_node(machine.rack_id)
        builder.add_arc(rack_node, machine_node, machine.num_slots, 0)
        builder.add_arc(machine_node, builder.sink, machine.num_slots, 0)

    def refresh_aggregator(
        self, state: ClusterState, builder: PolicyNetworkBuilder, key, now: float
    ) -> None:
        """Emit the arcs of a ``("rack", id)`` or ``("job", id)`` scope."""
        kind, ident = key
        topology = state.topology
        if kind == "rack":
            rack = topology.racks.get(ident)
            if rack is None:
                return
            rack_slots = sum(
                topology.machine(m).num_slots
                for m in rack.machine_ids
                if topology.machine(m).is_available
            )
            if rack_slots <= 0:
                return
            cluster_agg = builder.aggregator("X", NodeType.CLUSTER_AGGREGATOR)
            builder.add_arc(cluster_agg, builder.rack_node(ident), rack_slots, 0)
        elif kind == "job":
            job = state.jobs.get(ident)
            if job is None:
                return
            builder.add_arc(
                builder.unscheduled_node(ident), builder.sink, job.num_tasks, 0
            )

    def dirty_aggregators(self, state: ClusterState, dirty, now: float, builder):
        """Racks of availability-dirty machines, plus dirty jobs."""
        topology = state.topology
        racks = set()
        for machine_id in dirty.machines_availability:
            machine = topology.machines.get(machine_id)
            if machine is not None:
                racks.add(machine.rack_id)
            else:
                # The machine left the topology entirely; its old rack is
                # unknown, so refresh every rack (rare).
                racks.update(topology.racks)
        keys = [("rack", rack_id) for rack_id in sorted(racks)]
        keys.extend(("job", job_id) for job_id in sorted(dirty.jobs))
        return keys

    def owned_arcs(self, builder: PolicyNetworkBuilder, key):
        """Structural scope ownership for Quincy's arc partition."""
        network = builder.network
        kind, ident = key
        if kind == "machine":
            machine_node = builder.machine_node(ident)
            owned = list(network.outgoing(machine_node))  # machine -> sink
            owned.extend(
                arc
                for arc in network.incoming(machine_node)
                if network.node(arc.src).node_type is NodeType.RACK_AGGREGATOR
            )
            return owned
        if kind == "rack":
            rack_node = builder.peek_rack_node(ident)
            if rack_node is None or not network.has_node(rack_node):
                return []
            return [
                arc
                for arc in network.incoming(rack_node)
                if network.node(arc.src).node_type is NodeType.CLUSTER_AGGREGATOR
            ]
        if kind == "job":
            unscheduled_node = builder.peek_unscheduled_node(ident)
            if unscheduled_node is None or not network.has_node(unscheduled_node):
                return []
            return network.outgoing(unscheduled_node)  # U -> sink
        return super().owned_arcs(builder, key)

    def task_machine_dependencies(self, state: ClusterState, task):
        """Preference-arc machines plus the task's current machine."""
        dependencies = set(task.input_locality)
        if task.machine_id is not None:
            dependencies.add(task.machine_id)
        return dependencies

    # ------------------------------------------------------------------ #
    # Preference arcs
    # ------------------------------------------------------------------ #
    def _add_preference_arcs(
        self,
        state: ClusterState,
        builder: PolicyNetworkBuilder,
        task,
        task_node: int,
    ) -> None:
        """Add machine and rack preference arcs for one task."""
        topology = state.topology
        arcs_added = 0

        # Machine preference arcs, best locality first.
        candidates = sorted(
            task.input_locality.items(), key=lambda item: item[1], reverse=True
        )
        preferred_racks = {}
        cheapest_machine_arc = {}
        for machine_id, fraction in candidates:
            if arcs_added >= self.max_preference_arcs:
                break
            if machine_id not in topology.machines:
                continue
            machine = topology.machine(machine_id)
            if not machine.is_available:
                continue
            rack_id = machine.rack_id
            preferred_racks[rack_id] = preferred_racks.get(rack_id, 0.0) + fraction
            if fraction < self.machine_preference_threshold:
                continue
            cost = self.transfer_cost(task, fraction) + self.placement_base_cost
            builder.add_arc(task_node, builder.machine_node(machine_id), 1, cost)
            cheapest_machine_arc[rack_id] = min(
                cheapest_machine_arc.get(rack_id, cost), cost
            )
            arcs_added += 1

        # Rack preference arcs for racks that aggregate enough local data.
        # Quincy keeps the preference order machine < rack < cluster: running
        # "somewhere in the rack" cannot beat the specific machine that holds
        # the data, so the rack arc is never cheaper than the cheapest
        # machine preference arc the task has within that rack.
        for rack_id, fraction in preferred_racks.items():
            if arcs_added >= self.max_preference_arcs:
                break
            if fraction < self.rack_preference_threshold:
                continue
            cost = self.transfer_cost(task, fraction * 0.5) + self.placement_base_cost
            if rack_id in cheapest_machine_arc:
                cost = max(cost, cheapest_machine_arc[rack_id] + 1)
            builder.add_arc(task_node, builder.rack_node(rack_id), 1, cost)
            arcs_added += 1

    def count_preference_arcs(self, state: ClusterState) -> int:
        """Return how many preference arcs the current workload would create.

        Used by the locality-threshold experiment (Figure 15) to report graph
        growth without building the full network.
        """
        count = 0
        for task in state.schedulable_tasks():
            for machine_id, fraction in task.input_locality.items():
                if fraction >= self.machine_preference_threshold:
                    count += 1
        return count
