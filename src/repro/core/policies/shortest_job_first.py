"""Shortest-job-first scheduling policy driven by the knowledge base.

One of the cost models shipped with the open-source Firmament scheduler is a
shortest-job-first (SJF) model: when slots are scarce, tasks that are
expected to finish quickly should win them, because that minimizes mean
job response time.  Expected runtimes come from the
:class:`~repro.cluster.knowledge_base.KnowledgeBase`, which aggregates the
runtimes of previously completed tasks per resource equivalence class.

The policy is deliberately simple -- a single cluster aggregator like the
load-spreading policy -- so the effect of runtime-aware costs is easy to
isolate in experiments: the *relative* cost of scheduling versus waiting is
what changes, not the network structure.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.knowledge_base import KnowledgeBase
from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.graph import NodeType


class ShortestJobFirstPolicy(SchedulingPolicy):
    """Prioritize tasks with short expected runtimes when slots are scarce."""

    name = "shortest_job_first"

    #: Cost ceiling applied to the runtime-derived component of an arc cost,
    #: so a single very long task cannot dwarf every other cost in the graph.
    max_runtime_cost: int = 1_000

    #: Cost units per second of expected runtime.
    runtime_cost_per_second: float = 1.0

    def __init__(self, knowledge_base: Optional[KnowledgeBase] = None) -> None:
        """Create the policy.

        Args:
            knowledge_base: Source of runtime estimates.  A fresh, empty
                knowledge base (all tasks estimated at its default runtime)
                is used when omitted, which degrades the policy to plain
                load spreading until observations arrive.
        """
        self.knowledge_base = knowledge_base if knowledge_base is not None else KnowledgeBase()

    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add a cluster aggregator with runtime-aware task arcs."""
        tasks = state.schedulable_tasks()
        if not tasks:
            return
        topology = state.topology
        cluster_agg = builder.aggregator("SJF", NodeType.CLUSTER_AGGREGATOR)

        for machine in topology.healthy_machines():
            machine_node = builder.machine_node(machine.machine_id)
            running = state.task_count_on_machine(machine.machine_id)
            builder.add_arc(cluster_agg, machine_node, machine.num_slots, running)
            builder.add_arc(machine_node, builder.sink, machine.num_slots, 0)

        jobs_seen = set()
        for task in tasks:
            task_node = builder.task_node(task.task_id)
            jobs_seen.add(task.job_id)
            builder.add_arc(
                task_node,
                cluster_agg,
                1,
                self.scheduling_cost(task),
            )
            builder.add_arc(
                task_node,
                builder.unscheduled_node(task.job_id),
                1,
                self.unscheduled_cost(task, now),
            )
            if task.is_running and task.machine_id is not None:
                builder.add_arc(
                    task_node,
                    builder.machine_node(task.machine_id),
                    1,
                    self.continuation_cost(task),
                )

        for job_id in jobs_seen:
            job = state.jobs[job_id]
            builder.add_arc(
                builder.unscheduled_node(job_id), builder.sink, job.num_tasks, 0
            )

    def scheduling_cost(self, task) -> int:
        """Cost of scheduling a task anywhere, growing with expected runtime.

        Shorter tasks get cheaper arcs; when the cluster cannot hold every
        pending task, the min-cost solution therefore schedules the short
        ones and leaves the long ones waiting -- the SJF discipline.
        """
        estimate = self.knowledge_base.estimate_runtime(task)
        runtime_cost = min(
            self.max_runtime_cost,
            int(round(self.runtime_cost_per_second * estimate)),
        )
        return self.placement_base_cost + runtime_cost
