"""Scheduling policies: flow-network generators.

A scheduling policy decides the structure and the costs of the flow network
(Section 3.3 of the paper).  Three illustrative policies are provided,
mirroring the ones the paper uses:

* :class:`~repro.core.policies.load_spreading.LoadSpreadingPolicy` -- a
  trivial policy that balances the task count per machine through a single
  cluster aggregator (Figure 6a); used to exercise MCMF edge cases.
* :class:`~repro.core.policies.quincy.QuincyPolicy` -- Quincy's original
  data-locality policy with cluster and rack aggregators and preference arcs
  (Figure 6b); used for the head-to-head comparison with Quincy.
* :class:`~repro.core.policies.network_aware.NetworkAwarePolicy` -- avoids
  overcommitting machine network bandwidth using request aggregators and
  dynamically maintained arcs (Figure 6c); used in the testbed experiments.

Three further cost models exercise Firmament's policy API beyond the
paper's figures (the open-source scheduler ships analogous models):

* :class:`~repro.core.policies.cpu_memory.CpuMemoryPolicy` -- Borg-style
  multi-dimensional CPU/RAM feasibility checking with per-equivalence-class
  request aggregators.
* :class:`~repro.core.policies.shortest_job_first.ShortestJobFirstPolicy` --
  prices arcs by expected runtime from the knowledge base so short tasks win
  scarce slots.
* :class:`~repro.core.policies.random_placement.RandomPlacementPolicy` -- a
  seeded-random placement-quality floor and solver stress generator.
"""

from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.core.policies.load_spreading import LoadSpreadingPolicy
from repro.core.policies.quincy import QuincyPolicy
from repro.core.policies.network_aware import NetworkAwarePolicy
from repro.core.policies.cpu_memory import CpuMemoryPolicy
from repro.core.policies.shortest_job_first import ShortestJobFirstPolicy
from repro.core.policies.random_placement import RandomPlacementPolicy

__all__ = [
    "PolicyNetworkBuilder",
    "SchedulingPolicy",
    "LoadSpreadingPolicy",
    "QuincyPolicy",
    "NetworkAwarePolicy",
    "CpuMemoryPolicy",
    "ShortestJobFirstPolicy",
    "RandomPlacementPolicy",
]
