"""Random-cost scheduling policy (a deliberately unsophisticated baseline).

The open-source Firmament scheduler ships a "random" cost model that assigns
arbitrary preferences; it exists to provide a floor for placement quality
comparisons (any policy that uses real information should beat it) and to
stress the solver with unstructured graphs.  This reproduction includes it
for the same two purposes: placement-quality experiments can quote it as a
floor, and solver tests can use it to generate irregular cost surfaces that
the structured policies never produce.

The randomness is drawn from a seeded generator keyed by task identifier so
that costs are stable across scheduling runs (a task does not bounce between
machines just because the policy rerolled its preferences).
"""

from __future__ import annotations

import random
from typing import List

from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.graph import NodeType


class RandomPlacementPolicy(SchedulingPolicy):
    """Assign seeded-random placement preferences to a sample of machines."""

    name = "random_placement"

    def __init__(self, seed: int = 0, preference_arcs_per_task: int = 3, max_cost: int = 100) -> None:
        """Create the policy.

        Args:
            seed: Base seed; combined with each task id so per-task
                preferences are stable across scheduling runs.
            preference_arcs_per_task: Number of randomly chosen machines each
                task receives a direct arc to.
            max_cost: Upper bound (exclusive of the placement base cost) on
                the random per-arc cost.
        """
        if preference_arcs_per_task < 1:
            raise ValueError("each task needs at least one preference arc")
        if max_cost < 1:
            raise ValueError("max_cost must be positive")
        self.seed = seed
        self.preference_arcs_per_task = preference_arcs_per_task
        self.max_cost = max_cost

    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add random preference arcs plus a uniform cluster-aggregator fallback."""
        tasks = state.schedulable_tasks()
        if not tasks:
            return
        topology = state.topology
        machines = topology.healthy_machines()
        if not machines:
            machines = []
        cluster_agg = builder.aggregator("RANDOM", NodeType.CLUSTER_AGGREGATOR)

        for machine in machines:
            machine_node = builder.machine_node(machine.machine_id)
            builder.add_arc(cluster_agg, machine_node, machine.num_slots, self.max_cost)
            builder.add_arc(machine_node, builder.sink, machine.num_slots, 0)

        jobs_seen = set()
        for task in tasks:
            task_node = builder.task_node(task.task_id)
            jobs_seen.add(task.job_id)
            rng = random.Random(self.seed * 1_000_003 + task.task_id)

            for machine in self._sample_machines(machines, rng):
                builder.add_arc(
                    task_node,
                    builder.machine_node(machine.machine_id),
                    1,
                    self.placement_base_cost + rng.randrange(self.max_cost),
                )

            builder.add_arc(task_node, cluster_agg, 1, self.placement_base_cost + self.max_cost)
            builder.add_arc(
                task_node,
                builder.unscheduled_node(task.job_id),
                1,
                self.unscheduled_cost(task, now),
            )
            if task.is_running and task.machine_id is not None:
                builder.add_arc(
                    task_node,
                    builder.machine_node(task.machine_id),
                    1,
                    self.continuation_cost(task),
                )

        for job_id in jobs_seen:
            job = state.jobs[job_id]
            builder.add_arc(
                builder.unscheduled_node(job_id), builder.sink, job.num_tasks, 0
            )

    def _sample_machines(self, machines: List, rng: random.Random) -> List:
        """Return the task's random machine preferences (stable per task)."""
        if not machines:
            return []
        count = min(self.preference_arcs_per_task, len(machines))
        return rng.sample(machines, count)
