"""Scheduling policy API.

A policy translates cluster state and monitoring data into the arcs (and
policy-specific aggregator nodes) of the scheduling flow network.  The
:class:`~repro.core.graph_manager.GraphManager` owns node identity -- task,
machine, rack, unscheduled-aggregator and sink nodes keep stable identifiers
across scheduling runs so that incremental solvers can warm-start -- and
hands the policy a :class:`PolicyNetworkBuilder` restricted to the
operations a policy needs.

Costs are integers.  Policies express them in a common abstract unit
("cost units"); the helpers on :class:`SchedulingPolicy` convert data sizes
and waiting times into that unit so that the trade-off between waiting,
data transfer, and preemption is consistent across policies.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.cluster.state import ClusterState
from repro.cluster.task import Task
from repro.flow.graph import FlowNetwork, NodeType


class PolicyNetworkBuilder:
    """Facade handed to policies for adding aggregators and arcs.

    The builder exposes the pre-created nodes (tasks, machines, racks,
    per-job unscheduled aggregators, sink) by entity identifier and lets the
    policy create policy-specific aggregator nodes keyed by an arbitrary
    string, so their identity is also stable across scheduling runs.
    """

    def __init__(
        self,
        network: FlowNetwork,
        task_nodes: Dict[int, int],
        machine_nodes: Dict[int, int],
        rack_nodes: Dict[int, int],
        unscheduled_nodes: Dict[int, int],
        sink_node: int,
        aggregator_factory,
    ) -> None:
        self.network = network
        self._task_nodes = task_nodes
        self._machine_nodes = machine_nodes
        self._rack_nodes = rack_nodes
        self._unscheduled_nodes = unscheduled_nodes
        self._sink_node = sink_node
        self._aggregator_factory = aggregator_factory

    @property
    def sink(self) -> int:
        """Node id of the single sink."""
        return self._sink_node

    def task_node(self, task_id: int) -> int:
        """Node id of a task."""
        return self._task_nodes[task_id]

    def machine_node(self, machine_id: int) -> int:
        """Node id of a machine."""
        return self._machine_nodes[machine_id]

    def rack_node(self, rack_id: int) -> int:
        """Node id of a rack aggregator."""
        return self._rack_nodes[rack_id]

    def unscheduled_node(self, job_id: int) -> int:
        """Node id of a job's unscheduled aggregator."""
        return self._unscheduled_nodes[job_id]

    def aggregator(self, key: str, node_type: NodeType = NodeType.OTHER) -> int:
        """Return (creating on first use) a policy-specific aggregator node.

        The aggregator keeps the same node id for as long as the policy keeps
        requesting the same key, which preserves warm-start validity.
        """
        return self._aggregator_factory(key, node_type)

    def add_arc(self, src: int, dst: int, capacity: int, cost: int) -> None:
        """Add an arc; silently merges with an identical existing arc."""
        if capacity <= 0:
            return
        if self.network.has_arc(src, dst):
            arc = self.network.arc(src, dst)
            arc.capacity = max(arc.capacity, capacity)
            arc.cost = min(arc.cost, cost)
            return
        self.network.add_arc(src, dst, capacity, int(cost))


class SchedulingPolicy(abc.ABC):
    """Base class for flow-network scheduling policies."""

    #: Human-readable policy name.
    name: str = "abstract"

    #: Cost units per GB of data that must be transferred across the network.
    cost_per_gb: int = 10

    #: Cost units added per second a task has been waiting (the longer a
    #: task waits, the more attractive scheduling it anywhere becomes).
    wait_time_cost_per_second: float = 0.5

    #: Baseline cost of leaving a task unscheduled for another round.
    base_unscheduled_cost: int = 100

    #: Extra cost of preempting an already running task.
    preemption_penalty: int = 50

    #: Additional unscheduled cost per priority level.  Higher-priority tasks
    #: (e.g. service tasks, priority 10, vs batch tasks, priority 1) are more
    #: expensive to leave waiting, so under slot scarcity the min-cost flow
    #: preempts lower-priority work in their favour -- the paper's priority
    #: preemption (Section 3.3) expressed purely through costs.  The default
    #: makes the service/batch priority gap of the Google-like trace (10 vs
    #: 1) outweigh the preemption penalty, while equal-priority tasks never
    #: preempt each other.
    priority_unscheduled_weight: int = 10

    #: Constant added to every arc that would start (or move) a task on a
    #: machine, representing task startup and migration overhead.  It keeps a
    #: running task's continuation arc strictly cheaper than re-placing the
    #: task somewhere equally good, so continuous rescheduling does not
    #: migrate tasks without a real benefit.
    placement_base_cost: int = 2

    @abc.abstractmethod
    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add the policy's aggregators and arcs for the current state.

        Called once per scheduling run after the graph manager created nodes
        for every task, machine, rack, and job.  The policy must ensure every
        task node has at least one path to the sink (normally via the job's
        unscheduled aggregator), otherwise the problem becomes infeasible.
        """

    # ------------------------------------------------------------------ #
    # Cost helpers shared by the concrete policies
    # ------------------------------------------------------------------ #
    def unscheduled_cost(self, task: Task, now: float) -> int:
        """Cost of leaving a pending task unscheduled (or preempting a
        running one), growing with the task's waiting time and priority."""
        wait = max(0.0, now - task.submit_time)
        cost = self.base_unscheduled_cost + int(self.wait_time_cost_per_second * wait)
        cost += self.priority_unscheduled_weight * max(0, task.priority)
        if task.is_running:
            cost += self.preemption_penalty
        return cost

    def transfer_cost(self, task: Task, locality_fraction: float) -> int:
        """Cost of transferring the non-local part of a task's input data."""
        remote_gb = task.input_size_gb * max(0.0, 1.0 - locality_fraction)
        return int(round(remote_gb * self.cost_per_gb))

    def continuation_cost(self, task: Task) -> int:
        """Cost of keeping a running task on its current machine.

        Kept slightly above zero so that migrations with a genuinely better
        destination still win, but continuation is strongly preferred.
        """
        return 1
