"""Scheduling policy API.

A policy translates cluster state and monitoring data into the arcs (and
policy-specific aggregator nodes) of the scheduling flow network.  The
:class:`~repro.core.graph_manager.GraphManager` owns node identity -- task,
machine, rack, unscheduled-aggregator and sink nodes keep stable identifiers
across scheduling runs so that incremental solvers can warm-start -- and
hands the policy a :class:`PolicyNetworkBuilder` restricted to the
operations a policy needs.

Costs are integers.  Policies express them in a common abstract unit
("cost units"); the helpers on :class:`SchedulingPolicy` convert data sizes
and waiting times into that unit so that the trade-off between waiting,
data transfer, and preemption is consistent across policies.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.cluster.state import ClusterState
from repro.cluster.task import Task
from repro.flow.graph import Arc, FlowNetwork, NodeType


class PolicyNetworkBuilder:
    """Facade handed to policies for adding aggregators and arcs.

    The builder exposes the pre-created nodes (tasks, machines, racks,
    per-job unscheduled aggregators, sink) by entity identifier and lets the
    policy create policy-specific aggregator nodes keyed by an arbitrary
    string, so their identity is also stable across scheduling runs.
    """

    def __init__(
        self,
        network: FlowNetwork,
        task_nodes: Dict[int, int],
        machine_nodes: Dict[int, int],
        rack_nodes: Dict[int, int],
        unscheduled_nodes: Dict[int, int],
        sink_node: int,
        aggregator_factory,
        aggregator_lookup=None,
    ) -> None:
        self.network = network
        self._task_nodes = task_nodes
        self._machine_nodes = machine_nodes
        self._rack_nodes = rack_nodes
        self._unscheduled_nodes = unscheduled_nodes
        self._sink_node = sink_node
        self._aggregator_factory = aggregator_factory
        self._aggregator_lookup = aggregator_lookup
        #: Per-round scratch space shared by a policy's per-entity hooks, so
        #: a grouping or statistics pass computed for one dirty entity can be
        #: reused for the others within the same update.  Cleared by the
        #: graph manager before every update.
        self.round_cache: Dict[object, object] = {}

    @property
    def sink(self) -> int:
        """Node id of the single sink."""
        return self._sink_node

    def task_node(self, task_id: int) -> int:
        """Node id of a task."""
        return self._task_nodes[task_id]

    def machine_node(self, machine_id: int) -> int:
        """Node id of a machine."""
        return self._machine_nodes[machine_id]

    def rack_node(self, rack_id: int) -> int:
        """Node id of a rack aggregator."""
        return self._rack_nodes[rack_id]

    def unscheduled_node(self, job_id: int) -> int:
        """Node id of a job's unscheduled aggregator."""
        return self._unscheduled_nodes[job_id]

    def peek_rack_node(self, rack_id: int) -> Optional[int]:
        """Rack node id without materializing it, or ``None`` if unmapped.

        On the incremental builder the plain accessors re-add pruned nodes
        to the network; scope-ownership queries use the peek variants so
        asking "which arcs does this scope own" stays side-effect-free.
        """
        return self._rack_nodes.get(rack_id)

    def peek_unscheduled_node(self, job_id: int) -> Optional[int]:
        """Unscheduled node id without materializing it (see
        :meth:`peek_rack_node`)."""
        return self._unscheduled_nodes.get(job_id)

    def aggregator(self, key: str, node_type: NodeType = NodeType.OTHER) -> int:
        """Return (creating on first use) a policy-specific aggregator node.

        The aggregator keeps the same node id for as long as the policy keeps
        requesting the same key, which preserves warm-start validity.
        """
        return self._aggregator_factory(key, node_type)

    def find_aggregator(self, key: str) -> Optional[int]:
        """Return an aggregator's node id without creating it.

        ``None`` when the key was never requested.  Unlike
        :meth:`aggregator`, the node is *not* (re)materialized in the
        network; incremental scope enumeration uses this to ask "does this
        aggregator currently exist" without side effects.
        """
        if self._aggregator_lookup is None:
            return None
        return self._aggregator_lookup(key)

    def add_arc(self, src: int, dst: int, capacity: int, cost: int) -> None:
        """Add an arc; silently merges with an identical existing arc."""
        if capacity <= 0:
            return
        if self.network.has_arc(src, dst):
            arc = self.network.arc(src, dst)
            arc.capacity = max(arc.capacity, capacity)
            arc.cost = min(arc.cost, cost)
            return
        self.network.add_arc(src, dst, capacity, int(cost))


class SchedulingPolicy(abc.ABC):
    """Base class for flow-network scheduling policies."""

    #: Human-readable policy name.
    name: str = "abstract"

    #: Cost units per GB of data that must be transferred across the network.
    cost_per_gb: int = 10

    #: Cost units added per second a task has been waiting (the longer a
    #: task waits, the more attractive scheduling it anywhere becomes).
    wait_time_cost_per_second: float = 0.5

    #: Baseline cost of leaving a task unscheduled for another round.
    base_unscheduled_cost: int = 100

    #: Extra cost of preempting an already running task.
    preemption_penalty: int = 50

    #: Additional unscheduled cost per priority level.  Higher-priority tasks
    #: (e.g. service tasks, priority 10, vs batch tasks, priority 1) are more
    #: expensive to leave waiting, so under slot scarcity the min-cost flow
    #: preempts lower-priority work in their favour -- the paper's priority
    #: preemption (Section 3.3) expressed purely through costs.  The default
    #: makes the service/batch priority gap of the Google-like trace (10 vs
    #: 1) outweigh the preemption penalty, while equal-priority tasks never
    #: preempt each other.
    priority_unscheduled_weight: int = 10

    #: Constant added to every arc that would start (or move) a task on a
    #: machine, representing task startup and migration overhead.  It keeps a
    #: running task's continuation arc strictly cheaper than re-placing the
    #: task somewhere equally good, so continuous rescheduling does not
    #: migrate tasks without a real benefit.
    placement_base_cost: int = 2

    #: Policies that implement the per-entity hooks below set this True so
    #: the graph manager can update its persistent network incrementally
    #: from cluster dirty sets.  Policies that only implement :meth:`build`
    #: keep the full-rebuild path.
    supports_incremental_build: bool = False

    @abc.abstractmethod
    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add the policy's aggregators and arcs for the current state.

        Called once per scheduling run after the graph manager created nodes
        for every task, machine, rack, and job.  The policy must ensure every
        task node has at least one path to the sink (normally via the job's
        unscheduled aggregator), otherwise the problem becomes infeasible.
        """

    # ------------------------------------------------------------------ #
    # Per-entity derivation hooks (incremental graph construction)
    # ------------------------------------------------------------------ #
    # A policy opting into incremental construction partitions its arcs into
    # *derivation scopes*, each owned by exactly one entity: a task, a
    # machine, or a policy aggregator key.  The graph manager re-runs a
    # scope's hook only when its entity is dirty, diffs the emitted arcs
    # against the scope's current arcs (per :meth:`owned_arcs`), and patches
    # the persistent network -- so a hook must emit an arc set that matches
    # exactly what :meth:`build` would produce for that entity.  Keeping
    # :meth:`build` itself composed from these hooks makes divergence
    # structurally impossible.

    def arcs_for_task(
        self, state: ClusterState, builder: PolicyNetworkBuilder, task: Task, now: float
    ) -> None:
        """Emit every arc out of one task's node (the task's scope)."""
        raise NotImplementedError

    def arcs_for_machine(
        self, state: ClusterState, builder: PolicyNetworkBuilder, machine, now: float
    ) -> None:
        """Emit the arcs owned by one machine (aggregation backbone/sink)."""
        raise NotImplementedError

    def refresh_aggregator(
        self, state: ClusterState, builder: PolicyNetworkBuilder, key, now: float
    ) -> None:
        """Emit the arcs owned by one aggregator scope key.

        Keys are whatever :meth:`dirty_aggregators` yields; the policy
        defines their meaning (e.g. ``("rack", rack_id)`` or
        ``("class", class_key)``).
        """
        raise NotImplementedError

    def dirty_aggregators(
        self, state: ClusterState, dirty, now: float, builder: PolicyNetworkBuilder
    ) -> Iterable:
        """Return the aggregator scope keys invalidated by the dirty sets.

        ``dirty`` is the graph manager's expanded dirty view (attributes
        ``tasks``, ``jobs``, ``machines_availability``, ``machines_load``,
        all restricted/expanded to the current round's entities).
        ``builder`` is the round's builder -- its ``round_cache`` lets the
        enumeration share grouping passes with the refresh hooks.
        """
        raise NotImplementedError

    def owned_arcs(
        self, builder: PolicyNetworkBuilder, key: Tuple
    ) -> Iterable[Arc]:
        """Return the arcs currently in the network that belong to a scope.

        The default implementation handles task scopes (every arc out of the
        task's node); policies must extend it for their machine and
        aggregator scopes.  Ownership is structural -- derived from the
        network itself -- so it stays correct across full rebuilds, pruning,
        and fallback rounds without bookkeeping.
        """
        kind, ident = key
        if kind == "task":
            return builder.network.outgoing(builder.task_node(ident))
        raise NotImplementedError(f"unknown scope {key!r}")

    def task_machine_dependencies(self, state: ClusterState, task: Task) -> Iterable[int]:
        """Machine ids whose *availability* affects this task's arc set.

        When one of these machines joins or leaves the schedulable set, the
        task's scope must be re-derived even though the task itself did not
        change.  The default is conservative: every machine.
        """
        return state.topology.machines.keys()

    def unscheduled_cost_terms(self, task: Task) -> Tuple[int, float]:
        """Decompose :meth:`unscheduled_cost` into ``(static, rate)``.

        The unscheduled cost at time ``now`` is
        ``static + int(rate * max(0, now - task.submit_time))``.  Waiting
        cost grows with ``now`` even for untouched tasks, so the graph
        manager refreshes every clean task's unscheduled arc each round;
        with the cost decomposed it caches the terms at derivation time and
        the refresh is pure arithmetic (no attribute chasing, no policy
        call).  A policy that overrides :meth:`unscheduled_cost` must
        override this decomposition to match, or opt out of incremental
        construction.
        """
        static = self.base_unscheduled_cost
        static += self.priority_unscheduled_weight * max(0, task.priority)
        if task.is_running:
            static += self.preemption_penalty
        return static, self.wait_time_cost_per_second

    # ------------------------------------------------------------------ #
    # Cost helpers shared by the concrete policies
    # ------------------------------------------------------------------ #
    def unscheduled_cost(self, task: Task, now: float) -> int:
        """Cost of leaving a pending task unscheduled (or preempting a
        running one), growing with the task's waiting time and priority.

        Defined through :meth:`unscheduled_cost_terms` so the incremental
        refresh of waiting costs and the full build agree by construction.
        """
        static, rate = self.unscheduled_cost_terms(task)
        wait = max(0.0, now - task.submit_time)
        return static + int(rate * wait)

    def transfer_cost(self, task: Task, locality_fraction: float) -> int:
        """Cost of transferring the non-local part of a task's input data."""
        remote_gb = task.input_size_gb * max(0.0, 1.0 - locality_fraction)
        return int(round(remote_gb * self.cost_per_gb))

    def continuation_cost(self, task: Task) -> int:
        """Cost of keeping a running task on its current machine.

        Kept slightly above zero so that migrations with a genuinely better
        destination still win, but continuation is strongly preferred.
        """
        return 1
