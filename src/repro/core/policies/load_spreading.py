"""Load-spreading policy (Figure 6a of the paper).

All tasks connect to a single cluster-wide aggregator ``X``; the cost of
scheduling a task on a machine grows with the number of tasks already on
that machine, so machines fill up evenly (the behaviour of Docker SwarmKit's
spread strategy).  The policy neither requires nor uses the full
sophistication of flow-based scheduling -- the paper uses it to expose MCMF
edge cases, because the under-populated machines it prefers become contended
destinations for many tasks' flow (Section 4.3, Figure 9).

Because one MCMF run prices all arcs statically, the per-machine "cost grows
with occupancy" rule is expressed with *slot-level nodes*: the k-th free
slot of a machine is reachable from the aggregator through a unit-capacity
node whose arc costs ``k * cost_per_running_task``.  The solver therefore
fills cheap (low-occupancy) slots across the whole cluster before it starts
doubling up, even within a single batch -- which is also exactly what makes
the cheapest slots contended when a large job arrives (Figure 9).
"""

from __future__ import annotations

from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.graph import NodeType


class LoadSpreadingPolicy(SchedulingPolicy):
    """Balance the number of tasks per machine via a cluster aggregator."""

    name = "load_spreading"

    def __init__(self, cost_per_running_task: int = 10) -> None:
        """Create the policy.

        Args:
            cost_per_running_task: Cost added per task already occupying the
                machine a new task would be placed on.
        """
        self.cost_per_running_task = cost_per_running_task

    def build(self, state: ClusterState, builder: PolicyNetworkBuilder, now: float) -> None:
        """Add the cluster aggregator, slot-level nodes, and all policy arcs."""
        tasks = state.schedulable_tasks()
        if not tasks:
            return
        cluster_agg = builder.aggregator("X", NodeType.CLUSTER_AGGREGATOR)

        # Aggregator -> slot-level nodes -> machines: the k-th task placed on
        # a machine costs k * cost_per_running_task, so occupancy only grows
        # once every other machine has caught up.
        for machine in state.topology.healthy_machines():
            machine_node = builder.machine_node(machine.machine_id)
            running = state.task_count_on_machine(machine.machine_id)
            builder.add_arc(machine_node, builder.sink, machine.num_slots, 0)
            for level in range(running, machine.num_slots):
                level_node = builder.aggregator(
                    f"L{machine.machine_id}.{level}", NodeType.OTHER
                )
                builder.add_arc(
                    cluster_agg,
                    level_node,
                    1,
                    level * self.cost_per_running_task + self.placement_base_cost,
                )
                builder.add_arc(level_node, machine_node, 1, 0)

        # Tasks -> aggregator, current machine, and unscheduled aggregator.
        jobs_seen = set()
        for task in tasks:
            task_node = builder.task_node(task.task_id)
            builder.add_arc(task_node, cluster_agg, 1, 0)
            if task.is_running and task.machine_id is not None:
                builder.add_arc(
                    task_node,
                    builder.machine_node(task.machine_id),
                    1,
                    self.continuation_cost(task),
                )
            unsched = builder.unscheduled_node(task.job_id)
            builder.add_arc(task_node, unsched, 1, self.unscheduled_cost(task, now))
            jobs_seen.add(task.job_id)

        # Unscheduled aggregators -> sink.
        for job_id in jobs_seen:
            job = state.jobs[job_id]
            builder.add_arc(builder.unscheduled_node(job_id), builder.sink, job.num_tasks, 0)
