"""Task placement extraction from an optimal flow (Listing 1 of the paper).

After the MCMF solver returns, the flow on the network's arcs implies which
task is assigned to which machine, but -- because Firmament permits arbitrary
aggregator nodes -- a task's flow may traverse several intermediate nodes on
its way to a machine.  The extraction algorithm starts from the machine
nodes and propagates "machine tokens" backwards along flow-carrying arcs;
when a token reaches a task node, that task is assigned to the token's
machine.  Tasks whose flow drains through an unscheduled aggregator receive
no token and remain unscheduled (or are preempted if they were running).

In the common case the algorithm touches every flow-carrying arc exactly
once, i.e. it extracts all placements in a single pass over the graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.flow.graph import FlowNetwork, NodeType


def extract_placements(
    network: FlowNetwork,
    task_nodes: Dict[int, int],
    machine_nodes: Dict[int, int],
    sink_node: int,
) -> Dict[int, int]:
    """Extract task-to-machine assignments from the optimal flow.

    Args:
        network: The flow network with the solver's flow assigned to arcs.
        task_nodes: Mapping from task id to its node id.
        machine_nodes: Mapping from machine id to its node id.
        sink_node: Node id of the sink.

    Returns:
        Mapping from task id to assigned machine id.  Tasks that the optimal
        flow leaves unscheduled are absent from the mapping.
    """
    node_to_task = {node_id: task_id for task_id, node_id in task_nodes.items()}
    node_to_machine = {node_id: machine_id for machine_id, node_id in machine_nodes.items()}

    # Machine tokens available at each node, initialized at machine nodes
    # with one token per unit of flow the machine sends to the sink.
    destinations: Dict[int, List[int]] = {}
    to_visit: deque = deque()
    queued = set()
    for machine_id, node_id in machine_nodes.items():
        if not network.has_node(node_id):
            continue
        outgoing_flow = sum(
            arc.flow for arc in network.outgoing(node_id) if arc.dst == sink_node
        )
        if outgoing_flow > 0:
            destinations[node_id] = [machine_id] * outgoing_flow
            to_visit.append(node_id)
            queued.add(node_id)

    # Per-arc count of tokens already moved across it (never exceeds flow).
    moved: Dict[Tuple[int, int], int] = {}
    mappings: Dict[int, int] = {}

    while to_visit:
        node_id = to_visit.popleft()
        queued.discard(node_id)
        available = destinations.get(node_id)
        if not available:
            continue
        node = network.node(node_id)
        if node.node_type is NodeType.TASK:
            task_id = node_to_task.get(node_id)
            if task_id is not None and available:
                mappings[task_id] = available.pop()
            continue
        # Distribute tokens to the sources of incoming flow-carrying arcs.
        for arc in network.incoming(node_id):
            if not available:
                break
            already_moved = moved.get(arc.key(), 0)
            want = arc.flow - already_moved
            if want <= 0:
                continue
            take = min(want, len(available))
            if take <= 0:
                continue
            destinations.setdefault(arc.src, []).extend(
                available.pop() for _ in range(take)
            )
            moved[arc.key()] = already_moved + take
            if arc.src not in queued:
                to_visit.append(arc.src)
                queued.add(arc.src)
    return mappings


def unscheduled_tasks(
    network: FlowNetwork,
    task_nodes: Dict[int, int],
    placements: Dict[int, int],
) -> List[int]:
    """Return task ids whose flow the solver routed to an unscheduled aggregator."""
    return [task_id for task_id in task_nodes if task_id not in placements]
