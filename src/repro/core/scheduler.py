"""The Firmament scheduler: policy-driven flow scheduling with fast solvers.

One call to :meth:`FirmamentScheduler.schedule` corresponds to one iteration
of the loop in Figure 2b of the paper: update the flow network from cluster
state, run the MCMF solver (by default the speculative dual-algorithm
executor), extract task placements from the optimal flow, and compute the
difference against the current assignment (placements, migrations,
preemptions).  The caller -- the simulator, the testbed harness, or an
example program -- applies the resulting decision to the cluster state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.state import ClusterState
from repro.core.graph_manager import GraphManager
from repro.core.placement import extract_placements
from repro.core.policies.base import SchedulingPolicy
from repro.flow.graph import FlowNetwork
from repro.solvers import make_executor
from repro.solvers.base import RoundDeadlineExceeded, Solver, SolverResult


@dataclass
class SchedulingDecision:
    """Result of one scheduling iteration.

    Attributes:
        placements: Pending tasks to start, as ``{task_id: machine_id}``.
        migrations: Running tasks to move, as ``{task_id: new_machine_id}``.
        preemptions: Running tasks to stop and return to the pending state.
        unscheduled: Pending tasks left waiting this round.
        algorithm_runtime: Wall-clock seconds the winning solver needed.
        solver_result: The winning solver's full result.
        total_cost: Cost of the optimal flow (placement quality proxy).
        per_task_latency: Optional per-task scheduling delay relative to the
            start of the run; queue-based baselines fill this in because they
            place tasks one at a time, while flow-based scheduling places the
            whole batch when the solver finishes.
        degraded: True when the round could not run to full optimality:
            either the solver's epsilon ladder was truncated at the round
            deadline (``degraded_reason="epsilon_truncated"``; the flow is
            still feasible and epsilon-optimal at the coarser epsilon) or
            no solver finished in budget and the previous feasible
            placements were reused (``degraded_reason="round_deadline"``;
            running tasks stay put, pending tasks wait a round).
    """

    placements: Dict[int, int] = field(default_factory=dict)
    migrations: Dict[int, int] = field(default_factory=dict)
    preemptions: List[int] = field(default_factory=list)
    unscheduled: List[int] = field(default_factory=list)
    degraded: bool = False
    degraded_reason: str = ""
    algorithm_runtime: float = 0.0
    #: Wall-clock seconds the graph manager needed to bring the flow
    #: network up to date for this round (graph maintenance, attributed
    #: separately from the solver runtime above).
    graph_update_seconds: float = 0.0
    solver_result: Optional[SolverResult] = None
    total_cost: int = 0
    per_task_latency: Dict[int, float] = field(default_factory=dict)

    @property
    def num_assignments(self) -> int:
        """Total number of placement actions (starts plus migrations)."""
        return len(self.placements) + len(self.migrations)


@dataclass
class SchedulerStatistics:
    """Aggregate statistics over a scheduler's lifetime."""

    runs: int = 0
    total_algorithm_runtime: float = 0.0
    total_graph_update_time: float = 0.0
    total_placements: int = 0
    total_migrations: int = 0
    total_preemptions: int = 0
    #: Rounds that finished degraded (epsilon truncation or previous-
    #: placement reuse); every round is still *served* -- never a stall.
    degraded_rounds: int = 0
    #: Degraded rounds where no solver finished and the previous feasible
    #: placements were reused (a subset of ``degraded_rounds``).
    deadline_abandoned_rounds: int = 0
    #: Rounds whose decision was produced but never applied: the driver
    #: (e.g. the simulator at its ``max_time``/hard-stop boundary) voided
    #: the round via :meth:`record_void` instead of applying it, so the
    #: placement totals above stay truthful about cluster state.
    voided_rounds: int = 0
    placements_voided: int = 0
    algorithm_runtimes: List[float] = field(default_factory=list)
    graph_update_times: List[float] = field(default_factory=list)

    def record(self, decision: SchedulingDecision) -> None:
        """Account one scheduling decision."""
        self.runs += 1
        if decision.degraded:
            self.degraded_rounds += 1
            if decision.degraded_reason == "round_deadline":
                self.deadline_abandoned_rounds += 1
        self.total_algorithm_runtime += decision.algorithm_runtime
        self.total_graph_update_time += decision.graph_update_seconds
        self.total_placements += len(decision.placements)
        self.total_migrations += len(decision.migrations)
        self.total_preemptions += len(decision.preemptions)
        self.algorithm_runtimes.append(decision.algorithm_runtime)
        self.graph_update_times.append(decision.graph_update_seconds)

    def record_void(self, decision: SchedulingDecision) -> None:
        """Account a decision the driver voided instead of applying.

        :meth:`record` already counted the decision's placements when the
        scheduler produced it; a voided round backs those actions out of
        the lifetime placement totals (they never reached cluster state)
        and tallies the void itself.
        """
        self.voided_rounds += 1
        self.placements_voided += decision.num_assignments
        self.total_placements -= len(decision.placements)
        self.total_migrations -= len(decision.migrations)
        self.total_preemptions -= len(decision.preemptions)


class FirmamentScheduler:
    """Flow-based scheduler generalizing Quincy (the paper's core system)."""

    def __init__(
        self,
        policy: SchedulingPolicy,
        solver: Optional[Solver] = None,
        allow_migrations: bool = True,
        executor: Optional[str] = None,
        price_refine: Optional[str] = None,
        executor_policy: Optional[str] = None,
        round_deadline_seconds: Optional[float] = None,
        chaos=None,
    ) -> None:
        """Create a scheduler.

        Args:
            policy: Scheduling policy that shapes the flow network.
            solver: MCMF solver; defaults to the speculative dual-algorithm
                executor (relaxation plus incremental cost scaling).  Passing
                a plain cost-scaling solver reproduces Quincy's behaviour.
            allow_migrations: When False, running tasks are pinned to their
                machines and the scheduler only places pending tasks (useful
                for comparing against queue-based schedulers that never
                migrate).
            executor: Dual-executor strategy used when ``solver`` is omitted:
                ``"sequential"`` (default; runs both algorithms back to back
                and models the race) or ``"parallel"`` (races a relaxation
                worker subprocess against parent-side incremental cost
                scaling for real).  Mutually exclusive with ``solver``.
            price_refine: Price-refine variant for the default executor's
                incremental cost scaling (``"spfa"``, ``"dijkstra"``, or
                ``"auto"``); only valid when ``solver`` is omitted.
            executor_policy: Race policy for the default executor:
                ``"race"`` (default) speculates every round as the paper
                deploys, ``"auto"`` lets a cost model fed by recent solver
                statistics pick per round between solo relaxation, solo
                incremental cost scaling, and the full race.  Only valid
                when ``solver`` is omitted.
            round_deadline_seconds: Per-round wall-clock budget.  The
                solver degrades at the budget (epsilon-ladder truncation,
                relaxation abort) and a round where no solver produced a
                feasible flow reuses the previous placements instead of
                stalling; both outcomes are recorded as degraded rounds.
                Requires a solver that supports round deadlines (the dual
                executors do).
            chaos: Optional :class:`repro.chaos.ChaosPolicy` injecting
                deterministic faults into the round pipeline (tests and
                chaos benchmarks only).
        """
        if solver is not None and executor is not None:
            raise ValueError("pass either solver= or executor=, not both")
        if solver is not None and price_refine is not None:
            raise ValueError("price_refine= only applies to the default executor")
        if solver is not None and executor_policy is not None:
            raise ValueError("executor_policy= only applies to the default executor")
        self.policy = policy
        if solver is not None:
            self.solver = solver
        else:
            self.solver = make_executor(
                executor or "sequential",
                price_refine=price_refine or "auto",
                executor_policy=executor_policy or "race",
            )
        self.round_deadline_seconds = round_deadline_seconds
        if round_deadline_seconds is not None:
            if not hasattr(self.solver, "round_deadline_seconds"):
                raise ValueError(
                    "round_deadline_seconds requires a solver with deadline "
                    f"support; {type(self.solver).__name__} has none"
                )
            self.solver.round_deadline_seconds = round_deadline_seconds
        if chaos is not None and hasattr(self.solver, "chaos"):
            self.solver.chaos = chaos
        # Only pay for per-round network diffing when the solver can
        # actually consume the change batches.
        self.graph_manager = GraphManager(
            policy,
            track_changes=getattr(self.solver, "accepts_change_batches", False),
            chaos=chaos,
        )
        self.allow_migrations = allow_migrations
        self.statistics = SchedulerStatistics()
        self.last_network: Optional[FlowNetwork] = None

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, state: ClusterState, now: float = 0.0) -> SchedulingDecision:
        """Run one scheduling iteration against the given cluster state."""
        network = self.graph_manager.update(state, now)
        self.last_network = network
        graph_seconds = self.graph_manager.last_update_stats.seconds
        if not self.graph_manager.task_nodes:
            decision = SchedulingDecision(graph_update_seconds=graph_seconds)
            self.statistics.record(decision)
            return decision

        solver_start = time.perf_counter()
        changes = self.graph_manager.last_changes
        try:
            if changes is not None and getattr(
                self.solver, "accepts_change_batches", False
            ):
                # Hand the solver the typed change batch so an incremental
                # instance can patch its persistent residual network in place
                # instead of reconstructing it from the rebuilt flow network.
                result = self.solver.solve(network, changes=changes)
            else:
                result = self.solver.solve(network)
        except RoundDeadlineExceeded:
            # No solver produced a feasible flow within the round budget.
            # Degrade gracefully instead of stalling: reuse the previous
            # feasible placements (running tasks stay where they are, no
            # preemptions or migrations) and let pending tasks wait one
            # round.  The incremental solvers notice the revision gap next
            # round and rebuild warm, so nothing stale survives.
            return self._degraded_decision(
                state,
                reason="round_deadline",
                algorithm_runtime=time.perf_counter() - solver_start,
                graph_seconds=graph_seconds,
            )
        wall_runtime = time.perf_counter() - solver_start
        if getattr(self.solver, "charges_wall_clock", False):
            # The parallel executor races the algorithms physically, so the
            # measured wall clock *is* the placement latency (winner's
            # runtime plus IPC overhead); charging the winner's solo runtime
            # would hide the overhead the executor exists to measure.
            algorithm_runtime = wall_runtime
        else:
            # Use the solver-reported runtime when available: for the
            # sequential dual executor that is the *winner's* runtime -- the
            # effective placement latency of the paper's concurrent
            # deployment (the two algorithms run on separate cores; the
            # sequential executor runs them back to back, so wall-clock
            # would double-charge the loser).
            algorithm_runtime = result.runtime_seconds or wall_runtime

        assignments = extract_placements(
            network,
            self.graph_manager.task_nodes,
            self.graph_manager.machine_nodes,
            self.graph_manager.sink_node,
        )
        decision = self._diff_against_state(state, assignments)
        decision.algorithm_runtime = algorithm_runtime
        decision.graph_update_seconds = graph_seconds
        # Attribute graph maintenance alongside the solver's own counters so
        # per-round time can be split into graph vs solver work.
        result.statistics.graph_update_seconds = graph_seconds
        decision.solver_result = result
        decision.total_cost = result.total_cost
        if not result.optimal:
            # The round deadline truncated the epsilon ladder: the flow is
            # feasible and epsilon-optimal at the coarser epsilon, but not
            # the fully-scaled optimum.
            decision.degraded = True
            decision.degraded_reason = "epsilon_truncated"
        self.statistics.record(decision)
        return decision

    def _degraded_decision(
        self,
        state: ClusterState,
        reason: str,
        algorithm_runtime: float,
        graph_seconds: float,
    ) -> SchedulingDecision:
        """Build the previous-placements-reused decision for a dead round."""
        decision = SchedulingDecision(
            degraded=True,
            degraded_reason=reason,
            algorithm_runtime=algorithm_runtime,
            graph_update_seconds=graph_seconds,
        )
        for task_id in self.graph_manager.task_nodes:
            task = state.tasks.get(task_id)
            if task is not None and not task.is_running:
                decision.unscheduled.append(task_id)
        self.statistics.record(decision)
        return decision

    def apply(self, state: ClusterState, decision: SchedulingDecision, now: float) -> None:
        """Apply a scheduling decision to the cluster state.

        Preemptions are applied first so their slots are free for the new
        placements and migrations.
        """
        for task_id in decision.preemptions:
            state.preempt_task(task_id, now)
        for task_id, machine_id in decision.migrations.items():
            state.migrate_task(task_id, machine_id, now)
        for task_id, machine_id in decision.placements.items():
            state.place_task(task_id, machine_id, now)

    def schedule_and_apply(self, state: ClusterState, now: float = 0.0) -> SchedulingDecision:
        """Convenience wrapper: schedule and immediately apply the decision."""
        decision = self.schedule(state, now)
        self.apply(state, decision, now)
        return decision

    def close(self) -> None:
        """Release solver resources (e.g. the parallel executor's worker)."""
        close = getattr(self.solver, "close", None)
        if callable(close):
            close()

    # ------------------------------------------------------------------ #
    # Decision derivation
    # ------------------------------------------------------------------ #
    def _diff_against_state(
        self, state: ClusterState, assignments: Dict[int, int]
    ) -> SchedulingDecision:
        """Translate flow assignments into placements/migrations/preemptions."""
        decision = SchedulingDecision()
        for task_id, node_id in self.graph_manager.task_nodes.items():
            task = state.tasks.get(task_id)
            if task is None:
                continue
            assigned_machine = assignments.get(task_id)
            if task.is_running:
                if assigned_machine is None:
                    if self.allow_migrations:
                        decision.preemptions.append(task_id)
                elif assigned_machine != task.machine_id:
                    if self.allow_migrations:
                        decision.migrations[task_id] = assigned_machine
                # Same machine: keep running, nothing to do.
            else:
                if assigned_machine is None:
                    decision.unscheduled.append(task_id)
                else:
                    decision.placements[task_id] = assigned_machine
        return decision
