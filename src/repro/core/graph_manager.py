"""Graph manager: maintains the scheduling flow network across runs.

The graph manager owns the mapping between cluster entities (tasks,
machines, racks, jobs) and flow-network nodes.  Node identifiers are stable
for as long as the entity exists, which is what allows the incremental cost
scaling solver to reuse the previous run's flow (keyed by node-id pairs) as
a warm start even though the arcs are re-derived every run.

Updating the network for a new solver run follows the paper's two-pass
scheme (Section 6.3):

1. a *statistics pass* starting from the nodes adjacent to the sink
   (machines) gathers per-entity statistics -- here, machine load, spare
   bandwidth, and slot occupancy, collected from the cluster state and the
   monitor -- and
2. a *policy pass* starting from the task nodes lets the scheduling policy
   add aggregators and arcs using those statistics.

Because the Python policies read statistics directly from
:class:`~repro.cluster.state.ClusterState`, the first pass materializes as
the cheap bookkeeping the state object performs; the structure (and cost) of
the update is nevertheless the same: two linear passes over the graph,
negligible next to the solver runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.changes import ChangeBatch
from repro.flow.graph import FlowNetwork, NodeType


class GraphManager:
    """Builds and maintains the flow network for a scheduling policy."""

    def __init__(self, policy: SchedulingPolicy, track_changes: bool = True) -> None:
        """Create the manager.

        Args:
            policy: Scheduling policy that shapes the flow network.
            track_changes: Emit a typed :class:`ChangeBatch` per rebuild
                (:attr:`last_changes`), diffed against the previous round's
                network, so an incremental solver can patch its persistent
                residual instead of rebuilding it.
        """
        self.policy = policy
        self.track_changes = track_changes
        self._next_node_id = 0
        self._sink_node: Optional[int] = None
        self._task_nodes: Dict[int, int] = {}
        self._machine_nodes: Dict[int, int] = {}
        self._rack_nodes: Dict[int, int] = {}
        self._unscheduled_nodes: Dict[int, int] = {}
        self._aggregator_nodes: Dict[str, Tuple[int, NodeType]] = {}
        self.network: Optional[FlowNetwork] = None
        self._revision = 0
        #: Change batch transforming the previous :meth:`update`'s network
        #: into the latest one; ``None`` until the second update.
        self.last_changes: Optional[ChangeBatch] = None

    # ------------------------------------------------------------------ #
    # Node identity management
    # ------------------------------------------------------------------ #
    def _allocate(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def _node_for_task(self, task_id: int) -> int:
        if task_id not in self._task_nodes:
            self._task_nodes[task_id] = self._allocate()
        return self._task_nodes[task_id]

    def _node_for_machine(self, machine_id: int) -> int:
        if machine_id not in self._machine_nodes:
            self._machine_nodes[machine_id] = self._allocate()
        return self._machine_nodes[machine_id]

    def _node_for_rack(self, rack_id: int) -> int:
        if rack_id not in self._rack_nodes:
            self._rack_nodes[rack_id] = self._allocate()
        return self._rack_nodes[rack_id]

    def _node_for_job(self, job_id: int) -> int:
        if job_id not in self._unscheduled_nodes:
            self._unscheduled_nodes[job_id] = self._allocate()
        return self._unscheduled_nodes[job_id]

    def _node_for_sink(self) -> int:
        if self._sink_node is None:
            self._sink_node = self._allocate()
        return self._sink_node

    def _node_for_aggregator(self, key: str, node_type: NodeType) -> int:
        if key not in self._aggregator_nodes:
            self._aggregator_nodes[key] = (self._allocate(), node_type)
        node_id, stored_type = self._aggregator_nodes[key]
        if self.network is not None and not self.network.has_node(node_id):
            self.network.add_node(
                node_type=stored_type, supply=0, name=key, node_id=node_id
            )
        return node_id

    # ------------------------------------------------------------------ #
    # Mappings needed by placement extraction and the scheduler
    # ------------------------------------------------------------------ #
    @property
    def task_nodes(self) -> Dict[int, int]:
        """Mapping from task id to flow-network node id."""
        return dict(self._task_nodes)

    @property
    def machine_nodes(self) -> Dict[int, int]:
        """Mapping from machine id to flow-network node id."""
        return dict(self._machine_nodes)

    @property
    def sink_node(self) -> Optional[int]:
        """Node id of the sink, once the first network has been built."""
        return self._sink_node

    # ------------------------------------------------------------------ #
    # Network construction
    # ------------------------------------------------------------------ #
    def update(self, state: ClusterState, now: float = 0.0) -> FlowNetwork:
        """Build the flow network reflecting the current cluster state.

        Entities that disappeared since the previous run lose their nodes
        (their identifiers are retired, never reused); new entities receive
        fresh nodes.  The scheduling policy then adds aggregators and arcs.

        Alongside the rebuilt network, the manager emits the typed change
        batch between the previous and the new network (:attr:`last_changes`,
        when change tracking is enabled).  The batch carries the two
        networks' revision numbers so a consumer can verify its derived
        state matches the batch's base before patching.
        """
        previous = self.network
        tasks = state.schedulable_tasks()
        task_ids = {t.task_id for t in tasks}
        machine_ids = {
            m.machine_id for m in state.topology.healthy_machines()
        }
        rack_ids = set(state.topology.racks)
        job_ids = {t.job_id for t in tasks}

        # Retire nodes of entities that no longer exist.
        self._task_nodes = {t: n for t, n in self._task_nodes.items() if t in task_ids}
        self._machine_nodes = {
            m: n for m, n in self._machine_nodes.items() if m in machine_ids
        }
        self._rack_nodes = {r: n for r, n in self._rack_nodes.items() if r in rack_ids}
        self._unscheduled_nodes = {
            j: n for j, n in self._unscheduled_nodes.items() if j in job_ids
        }

        network = FlowNetwork()
        self.network = network

        sink = self._node_for_sink()
        network.add_node(
            node_type=NodeType.SINK, supply=-len(tasks), name="S", node_id=sink
        )

        for machine_id in sorted(machine_ids):
            network.add_node(
                node_type=NodeType.MACHINE,
                supply=0,
                name=f"M{machine_id}",
                ref=machine_id,
                node_id=self._node_for_machine(machine_id),
            )
        for rack_id in sorted(rack_ids):
            network.add_node(
                node_type=NodeType.RACK_AGGREGATOR,
                supply=0,
                name=f"R{rack_id}",
                ref=rack_id,
                node_id=self._node_for_rack(rack_id),
            )
        for job_id in sorted(job_ids):
            network.add_node(
                node_type=NodeType.UNSCHEDULED_AGGREGATOR,
                supply=0,
                name=f"U{job_id}",
                ref=job_id,
                node_id=self._node_for_job(job_id),
            )
        for task in tasks:
            network.add_node(
                node_type=NodeType.TASK,
                supply=1,
                name=f"T{task.job_id},{task.task_id}",
                ref=task.task_id,
                node_id=self._node_for_task(task.task_id),
            )

        builder = PolicyNetworkBuilder(
            network=network,
            task_nodes=self._task_nodes,
            machine_nodes=self._machine_nodes,
            rack_nodes=self._rack_nodes,
            unscheduled_nodes=self._unscheduled_nodes,
            sink_node=sink,
            aggregator_factory=self._node_for_aggregator,
        )
        self.policy.build(state, builder, now)
        self._prune_isolated_nodes(network)

        self._revision += 1
        network.revision = self._revision
        if self.track_changes and previous is not None:
            self.last_changes = ChangeBatch.diff(previous, network)
        else:
            self.last_changes = None
        return network

    def _prune_isolated_nodes(self, network: FlowNetwork) -> None:
        """Drop zero-supply nodes with no arcs (unused racks or aggregators).

        Keeping them would be harmless for correctness but would make the
        solvers iterate over dead nodes.
        """
        isolated = [
            node.node_id
            for node in network.nodes()
            if node.supply == 0
            and not network.outgoing(node.node_id)
            and not network.incoming(node.node_id)
        ]
        for node_id in isolated:
            network.remove_node(node_id)
