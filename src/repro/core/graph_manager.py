"""Graph manager: maintains the scheduling flow network across runs.

The graph manager owns the mapping between cluster entities (tasks,
machines, racks, jobs) and flow-network nodes.  Node identifiers are stable
for as long as the entity exists, which is what allows the incremental cost
scaling solver to reuse the previous run's flow (keyed by node-id pairs) as
a warm start.

Updating the network for a new solver run follows the paper's two-pass
scheme (Section 6.3), *driven by cluster change events*:

1. a *statistics pass* gathers the per-entity statistics the policy needs
   (machine load, spare capacity, slot occupancy -- materialized as the
   cheap bookkeeping :class:`~repro.cluster.state.ClusterState` performs),
   and
2. a *policy pass* re-derives arcs -- but only for the entities the cluster
   dirty sets (:class:`~repro.cluster.events.DirtyTracker`) name as
   changed.

For policies implementing the per-entity hooks
(:meth:`~repro.core.policies.base.SchedulingPolicy.arcs_for_task`,
:meth:`~repro.core.policies.base.SchedulingPolicy.arcs_for_machine`,
:meth:`~repro.core.policies.base.SchedulingPolicy.refresh_aggregator`), the
manager keeps **one persistent :class:`FlowNetwork` mutated in place**: the
dirty entities' scopes are re-derived, the resulting mutations are applied
through a :class:`~repro.flow.changes.ChangeBatchBuilder` that emits the
round's :class:`~repro.flow.changes.ChangeBatch` directly -- no second
network is built and no diff pass runs -- and isolated-node pruning is
restricted to the endpoints of removed arcs.  Per-round update cost is
O(|changes| + |affected arcs| + |tasks|) (the last term is the pure
arithmetic of refreshing time-varying waiting costs), independent of
cluster size on low-churn rounds.

Policies without the hooks, the first round, rounds where the dirty-event
chain broke (another consumer drained the tracker, or the workload emptied),
and explicit ``incremental=False`` all use the original full-rebuild path,
diffing consecutive networks with :meth:`ChangeBatch.diff`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cluster.state import ClusterState
from repro.core.policies.base import PolicyNetworkBuilder, SchedulingPolicy
from repro.flow.changes import ChangeBatch, ChangeBatchBuilder
from repro.flow.graph import FlowNetwork, NodeType


class GraphConsistencyError(AssertionError):
    """The incremental network diverged from the full rebuild (cross-check)."""


@dataclass
class GraphUpdateStats:
    """Observability record for one :meth:`GraphManager.update` round."""

    mode: str = "full"  #: ``"full"`` or ``"incremental"``.
    seconds: float = 0.0  #: Wall-clock time of the update.
    nodes_touched: int = 0  #: Nodes added, removed, or supply-changed.
    arcs_patched: int = 0  #: Arcs added, removed, or capacity/cost-patched.
    dirty_tasks: int = 0  #: Task scopes re-derived this round.
    dirty_machines: int = 0  #: Machine scopes re-derived this round.


@dataclass
class _DirtyView:
    """Dirty sets expanded/restricted to the current round's entities.

    Handed to :meth:`SchedulingPolicy.dirty_aggregators`; all sets refer to
    entities that exist this round (plus availability-dirty machines that
    just left).
    """

    tasks: Set[int]
    jobs: Set[int]
    machines_availability: Set[int]
    machines_load: Set[int]


class _IncrementalFallback(Exception):
    """Internal: this round cannot be applied incrementally."""


class _IncrementalBuilder(PolicyNetworkBuilder):
    """Policy builder for incremental re-derivation.

    Arc emission inside a scope is *collected* (with the same merge
    semantics as :meth:`PolicyNetworkBuilder.add_arc`) instead of applied,
    so the manager can diff the scope's desired arcs against its current
    arcs; node accessors re-materialize pruned nodes through the change
    recorder; cost patches route through the recorder.
    """

    def __init__(self, manager: "GraphManager", recorder: ChangeBatchBuilder) -> None:
        super().__init__(
            network=manager.network,
            task_nodes=manager._task_nodes,
            machine_nodes=manager._machine_nodes,
            rack_nodes=manager._rack_nodes,
            unscheduled_nodes=manager._unscheduled_nodes,
            sink_node=manager._node_for_sink(),
            aggregator_factory=manager._recording_aggregator_factory,
            aggregator_lookup=manager._aggregator_node_id,
        )
        self._manager = manager
        self.recorder = recorder
        self._desired: Optional[Dict[Tuple[int, int], Tuple[int, int]]] = None

    # ------------------------------------------------------------------ #
    # Ensure-on-access node accessors (pruned nodes come back recorded)
    # ------------------------------------------------------------------ #
    def machine_node(self, machine_id: int) -> int:
        node_id = self._machine_nodes[machine_id]
        self._manager._ensure_node(
            self.recorder, node_id, NodeType.MACHINE, f"M{machine_id}", machine_id
        )
        return node_id

    def rack_node(self, rack_id: int) -> int:
        node_id = self._manager._node_for_rack(rack_id)
        self._manager._ensure_node(
            self.recorder, node_id, NodeType.RACK_AGGREGATOR, f"R{rack_id}", rack_id
        )
        return node_id

    def unscheduled_node(self, job_id: int) -> int:
        node_id = self._unscheduled_nodes[job_id]
        self._manager._ensure_node(
            self.recorder,
            node_id,
            NodeType.UNSCHEDULED_AGGREGATOR,
            f"U{job_id}",
            job_id,
        )
        return node_id

    # ------------------------------------------------------------------ #
    # Scope collection
    # ------------------------------------------------------------------ #
    def add_arc(self, src: int, dst: int, capacity: int, cost: int) -> None:
        if capacity <= 0:
            return
        if self._desired is None:
            raise RuntimeError("incremental add_arc outside a derivation scope")
        existing = self._desired.get((src, dst))
        if existing is not None:
            # Same merge rule as the full-build path: widest capacity,
            # cheapest cost.
            capacity = max(existing[0], capacity)
            cost = min(existing[1], int(cost))
        self._desired[(src, dst)] = (capacity, int(cost))

    def collect(self, derive) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Run a scope's derivation hook and return its desired arc set."""
        self._desired = {}
        try:
            derive(self)
            return self._desired
        finally:
            self._desired = None


class GraphManager:
    """Builds and maintains the flow network for a scheduling policy."""

    def __init__(
        self,
        policy: SchedulingPolicy,
        track_changes: bool = True,
        incremental: bool = True,
        verify_changes: bool = False,
        chaos=None,
    ) -> None:
        """Create the manager.

        Args:
            policy: Scheduling policy that shapes the flow network.
            track_changes: Emit a typed :class:`ChangeBatch` per update
                (:attr:`last_changes`) so an incremental solver can patch
                its persistent residual instead of rebuilding it.
            incremental: Update the persistent network in place from the
                cluster dirty sets when the policy implements the
                per-entity hooks; ``False`` forces the full-rebuild path
                every round (used by benchmarks as the comparison baseline).
            verify_changes: Cross-check mode: after every incremental
                update, run the old full-rebuild path in parallel and
                assert the persistent network matches the rebuild and the
                directly-emitted batch replays the previous network into
                it.  Used by the equivalence tests; adds two O(graph)
                passes per round, so it is off by default.
            chaos: Optional :class:`repro.chaos.ChaosPolicy`; its
                ``chain_break`` fault drops the round's emitted change
                batch, forcing downstream consumers onto their
                broken-revision-chain recovery paths (tests only).
        """
        self.policy = policy
        self.track_changes = track_changes
        self.incremental = incremental
        self.verify_changes = verify_changes
        self.chaos = chaos
        self._chaos_round = 0
        #: Change batches dropped by injected ``chain_break`` faults.
        self.chain_breaks_injected = 0
        self._next_node_id = 0
        self._sink_node: Optional[int] = None
        self._task_nodes: Dict[int, int] = {}
        self._machine_nodes: Dict[int, int] = {}
        self._rack_nodes: Dict[int, int] = {}
        self._unscheduled_nodes: Dict[int, int] = {}
        self._aggregator_nodes: Dict[str, Tuple[int, NodeType]] = {}
        self.network: Optional[FlowNetwork] = None
        self._revision = 0
        #: Change batch transforming the previous :meth:`update`'s network
        #: into the latest one; ``None`` until the second update.
        self.last_changes: Optional[ChangeBatch] = None
        #: Observability record of the most recent update.
        self.last_update_stats = GraphUpdateStats()
        #: Rounds served by the incremental path / the full-rebuild path.
        self.incremental_updates = 0
        self.full_updates = 0

        # Incremental bookkeeping: previous round's entity sets, the dirty
        # epoch chain, and the machine -> dependent-tasks reverse index.
        self._prev_task_ids: Set[int] = set()
        self._prev_machine_ids: Set[int] = set()
        self._prev_rack_ids: Set[int] = set()
        self._prev_job_ids: Set[int] = set()
        self._dirty_epoch: Optional[int] = None
        self._state_id: Optional[int] = None
        self._task_dependencies: Dict[int, Set[int]] = {}
        self._machine_dependents: Dict[int, Set[int]] = {}
        # task_id -> (static_cost, rate, submit_time, unscheduled_arc_key):
        # the decomposed unscheduled cost cached at derivation time, so the
        # per-round waiting-cost refresh of clean tasks is pure arithmetic.
        self._task_cost_terms: Dict[int, Tuple[int, float, float, Tuple[int, int]]] = {}
        self._verify_snapshot: Optional[FlowNetwork] = None
        self._recorder: Optional[ChangeBatchBuilder] = None

    # ------------------------------------------------------------------ #
    # Node identity management
    # ------------------------------------------------------------------ #
    def _allocate(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def _node_for_task(self, task_id: int) -> int:
        if task_id not in self._task_nodes:
            self._task_nodes[task_id] = self._allocate()
        return self._task_nodes[task_id]

    def _node_for_machine(self, machine_id: int) -> int:
        if machine_id not in self._machine_nodes:
            self._machine_nodes[machine_id] = self._allocate()
        return self._machine_nodes[machine_id]

    def _node_for_rack(self, rack_id: int) -> int:
        if rack_id not in self._rack_nodes:
            self._rack_nodes[rack_id] = self._allocate()
        return self._rack_nodes[rack_id]

    def _node_for_job(self, job_id: int) -> int:
        if job_id not in self._unscheduled_nodes:
            self._unscheduled_nodes[job_id] = self._allocate()
        return self._unscheduled_nodes[job_id]

    def _node_for_sink(self) -> int:
        if self._sink_node is None:
            self._sink_node = self._allocate()
        return self._sink_node

    def _node_for_aggregator(self, key: str, node_type: NodeType) -> int:
        if key not in self._aggregator_nodes:
            self._aggregator_nodes[key] = (self._allocate(), node_type)
        node_id, stored_type = self._aggregator_nodes[key]
        if self.network is not None and not self.network.has_node(node_id):
            self.network.add_node(
                node_type=stored_type, supply=0, name=key, node_id=node_id
            )
        return node_id

    def _recording_aggregator_factory(self, key: str, node_type: NodeType) -> int:
        """Aggregator factory for the incremental path: re-adds through the
        change recorder so the materialization lands in the batch."""
        if key not in self._aggregator_nodes:
            self._aggregator_nodes[key] = (self._allocate(), node_type)
        node_id, stored_type = self._aggregator_nodes[key]
        if not self.network.has_node(node_id):
            self._recorder.add_node(
                node_type=stored_type, supply=0, name=key, node_id=node_id
            )
        return node_id

    def _aggregator_node_id(self, key: str) -> Optional[int]:
        """Non-creating aggregator lookup for scope-ownership queries."""
        entry = self._aggregator_nodes.get(key)
        return entry[0] if entry is not None else None

    def _ensure_node(
        self,
        recorder: ChangeBatchBuilder,
        node_id: int,
        node_type: NodeType,
        name: str,
        ref,
        supply: int = 0,
    ) -> None:
        if not self.network.has_node(node_id):
            recorder.add_node(
                node_type=node_type, supply=supply, name=name, ref=ref, node_id=node_id
            )

    # ------------------------------------------------------------------ #
    # Mappings needed by placement extraction and the scheduler
    # ------------------------------------------------------------------ #
    @property
    def task_nodes(self) -> Dict[int, int]:
        """Mapping from task id to flow-network node id."""
        return dict(self._task_nodes)

    @property
    def machine_nodes(self) -> Dict[int, int]:
        """Mapping from machine id to flow-network node id."""
        return dict(self._machine_nodes)

    @property
    def sink_node(self) -> Optional[int]:
        """Node id of the sink, once the first network has been built."""
        return self._sink_node

    # ------------------------------------------------------------------ #
    # Network construction
    # ------------------------------------------------------------------ #
    def update(self, state: ClusterState, now: float = 0.0) -> FlowNetwork:
        """Update the flow network to reflect the current cluster state.

        Entities that disappeared since the previous run lose their nodes
        (their identifiers are retired, never reused); new entities receive
        fresh nodes.  When the policy supports per-entity derivation, the
        persistent network is patched in place from the cluster dirty sets
        and :attr:`last_changes` is emitted directly from the mutations;
        otherwise the network is rebuilt and diffed as before.  Either way
        the batch carries the two revisions it connects so a consumer can
        verify its derived state matches the batch's base before patching.
        """
        start = time.perf_counter()
        snapshot = self._drain_dirty(state)
        tasks = state.schedulable_tasks()

        if self._can_update_incrementally(state, snapshot, tasks):
            try:
                network = self._update_incremental(state, now, snapshot, tasks)
                self.incremental_updates += 1
                self.last_update_stats.mode = "incremental"
                self.last_update_stats.seconds = time.perf_counter() - start
                if self.verify_changes:
                    self._cross_check(state, now)
                self._finish_round(state, network)
                return network
            except _IncrementalFallback:
                # Raised strictly before any mutation: rebuilding in the
                # same round is safe.
                pass
            except Exception:
                # The round died mid-mutation: the persistent network is
                # half-patched and this round's dirty events are consumed.
                # Poison both the network (next round builds from scratch,
                # with no change batch for the half-mutated state) and the
                # epoch chain, so nothing derived from the wreckage
                # survives.
                self.network = None
                self._dirty_epoch = None
                self.last_changes = None
                raise

        network = self._update_full(state, now, tasks)
        self.full_updates += 1
        self.last_update_stats.seconds = time.perf_counter() - start
        self._finish_round(state, network)
        return network

    def _finish_round(self, state: ClusterState, network: FlowNetwork) -> None:
        self._state_id = id(state)
        if self.verify_changes:
            self._verify_snapshot = network.copy()
        round_index = self._chaos_round
        self._chaos_round += 1
        if (
            self.chaos is not None
            and self.last_changes is not None
            and self.chaos.fires("chain_break", round_index)
        ):
            # Injected revision-chain break: consumers must fall back to
            # warm rebuild / full-snapshot resync and stay correct.
            self.last_changes = None
            self.chain_breaks_injected += 1

    def _drain_dirty(self, state: ClusterState):
        """Consume the state's dirty tracker when incremental updates can
        use it; non-incremental managers leave the events for others."""
        if not self.incremental or not self.policy.supports_incremental_build:
            return None
        tracker = getattr(state, "dirty", None)
        if tracker is None:
            return None
        snapshot = tracker.drain()
        chain_intact = (
            self._dirty_epoch is not None
            and snapshot.epoch == self._dirty_epoch + 1
            and self._state_id == id(state)
        )
        self._dirty_epoch = snapshot.epoch
        return snapshot if chain_intact else None

    def _can_update_incrementally(self, state, snapshot, tasks) -> bool:
        if snapshot is None or snapshot.full or self.network is None:
            return False
        # Emptiness transitions change the whole network shape (an empty
        # workload prunes everything, including the sink); rebuild instead.
        if not tasks or not self._prev_task_ids:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Full rebuild path (first round, unsupported policies, fallbacks)
    # ------------------------------------------------------------------ #
    def _update_full(self, state: ClusterState, now: float, tasks) -> FlowNetwork:
        previous = self.network
        network = self._build_full_network(state, now, tasks)
        self.network = network

        self._revision += 1
        network.revision = self._revision
        if self.track_changes and previous is not None:
            self.last_changes = ChangeBatch.diff(previous, network)
        else:
            self.last_changes = None

        self._record_round_entities(state, tasks)
        self._rebuild_dependency_index(state, tasks)
        if self.last_changes is not None:
            summary = self.last_changes.summary()
            nodes_touched = sum(
                count
                for kind, count in summary.items()
                if kind in ("NodeAddition", "NodeRemoval", "SupplyChange")
            )
            arcs_patched = sum(
                count
                for kind, count in summary.items()
                if kind
                in ("ArcAddition", "ArcRemoval", "ArcCapacityChange", "ArcCostChange")
            )
        else:
            # No batch to attribute against (first round, or change
            # tracking off): the rebuild touched the whole graph.
            nodes_touched = network.num_nodes
            arcs_patched = network.num_arcs
        self.last_update_stats = GraphUpdateStats(
            mode="full",
            nodes_touched=nodes_touched,
            arcs_patched=arcs_patched,
            dirty_tasks=len(self._prev_task_ids),
            dirty_machines=len(self._prev_machine_ids),
        )
        return network

    def _build_full_network(self, state: ClusterState, now: float, tasks) -> FlowNetwork:
        """Build a fresh network from scratch (shared with the cross-check).

        Retires node-id mappings of disappeared entities and allocates
        mappings for new ones; both operations are idempotent, so running
        this after an incremental update (which already synchronized the
        mappings) reuses the exact same identifiers.
        """
        task_ids = {t.task_id for t in tasks}
        machine_ids = {m.machine_id for m in state.topology.healthy_machines()}
        rack_ids = set(state.topology.racks)
        job_ids = {t.job_id for t in tasks}

        # Retire nodes of entities that no longer exist.
        self._task_nodes = {t: n for t, n in self._task_nodes.items() if t in task_ids}
        self._machine_nodes = {
            m: n for m, n in self._machine_nodes.items() if m in machine_ids
        }
        self._rack_nodes = {r: n for r, n in self._rack_nodes.items() if r in rack_ids}
        self._unscheduled_nodes = {
            j: n for j, n in self._unscheduled_nodes.items() if j in job_ids
        }

        saved_network = self.network
        network = FlowNetwork()
        # _node_for_aggregator consults self.network to re-materialize
        # pruned aggregators, so point it at the network under construction.
        self.network = network
        try:
            sink = self._node_for_sink()
            network.add_node(
                node_type=NodeType.SINK, supply=-len(tasks), name="S", node_id=sink
            )

            for machine_id in sorted(machine_ids):
                network.add_node(
                    node_type=NodeType.MACHINE,
                    supply=0,
                    name=f"M{machine_id}",
                    ref=machine_id,
                    node_id=self._node_for_machine(machine_id),
                )
            for rack_id in sorted(rack_ids):
                network.add_node(
                    node_type=NodeType.RACK_AGGREGATOR,
                    supply=0,
                    name=f"R{rack_id}",
                    ref=rack_id,
                    node_id=self._node_for_rack(rack_id),
                )
            for job_id in sorted(job_ids):
                network.add_node(
                    node_type=NodeType.UNSCHEDULED_AGGREGATOR,
                    supply=0,
                    name=f"U{job_id}",
                    ref=job_id,
                    node_id=self._node_for_job(job_id),
                )
            for task in tasks:
                network.add_node(
                    node_type=NodeType.TASK,
                    supply=1,
                    name=f"T{task.job_id},{task.task_id}",
                    ref=task.task_id,
                    node_id=self._node_for_task(task.task_id),
                )

            builder = PolicyNetworkBuilder(
                network=network,
                task_nodes=self._task_nodes,
                machine_nodes=self._machine_nodes,
                rack_nodes=self._rack_nodes,
                unscheduled_nodes=self._unscheduled_nodes,
                sink_node=sink,
                aggregator_factory=self._node_for_aggregator,
                aggregator_lookup=self._aggregator_node_id,
            )
            self.policy.build(state, builder, now)
            self._prune_isolated_nodes(network)
        finally:
            self.network = saved_network
        return network

    # ------------------------------------------------------------------ #
    # Incremental path (the paper's event-driven two-pass update)
    # ------------------------------------------------------------------ #
    def _update_incremental(
        self, state: ClusterState, now: float, snapshot, tasks
    ) -> FlowNetwork:
        network = self.network
        task_by_id = {t.task_id: t for t in tasks}
        task_ids = set(task_by_id)
        machine_ids = {m.machine_id for m in state.topology.healthy_machines()}
        rack_ids = set(state.topology.racks)
        job_ids = {t.job_id for t in tasks}

        removed_tasks = self._prev_task_ids - task_ids
        added_tasks = task_ids - self._prev_task_ids
        removed_machines = self._prev_machine_ids - machine_ids
        added_machines = machine_ids - self._prev_machine_ids
        removed_jobs = self._prev_job_ids - job_ids
        added_jobs = job_ids - self._prev_job_ids
        removed_racks = self._prev_rack_ids - rack_ids

        # Policies resolve dirty tasks through ``state.tasks`` (e.g. to find
        # a departed task's equivalence class); when a dirty task vanished
        # from the state entirely (job removal), that attribution is
        # impossible and the round rebuilds.
        departed_tasks = (snapshot.tasks | removed_tasks) - task_ids
        for task_id in departed_tasks:
            if task_id not in state.tasks:
                raise _IncrementalFallback(f"dirty task {task_id} unresolvable")

        dirty_machines_avail = (
            (snapshot.machines_availability | added_machines | removed_machines)
        )
        dirty_machines_load = snapshot.machines_load | dirty_machines_avail
        dirty_tasks = (snapshot.tasks & task_ids) | added_tasks
        for machine_id in dirty_machines_avail:
            dependents = self._machine_dependents.get(machine_id)
            if dependents:
                dirty_tasks |= dependents & task_ids
        dirty_jobs = (snapshot.jobs & job_ids) | added_jobs

        recorder = ChangeBatchBuilder(network, base_revision=self._revision)
        self._recorder = recorder
        try:
            # 1. Retire nodes of entities that no longer exist.
            for task_id in sorted(removed_tasks):
                recorder.remove_node(self._task_nodes.pop(task_id))
                self._drop_task_dependencies(task_id)
                self._task_cost_terms.pop(task_id, None)
            for machine_id in sorted(removed_machines):
                node_id = self._machine_nodes.pop(machine_id)
                if network.has_node(node_id):
                    recorder.remove_node(node_id)
            for job_id in sorted(removed_jobs):
                node_id = self._unscheduled_nodes.pop(job_id)
                if network.has_node(node_id):
                    recorder.remove_node(node_id)
            for rack_id in sorted(removed_racks):
                node_id = self._rack_nodes.pop(rack_id)
                if network.has_node(node_id):
                    recorder.remove_node(node_id)

            # 2. Sink supply tracks the number of schedulable tasks.
            sink = self._node_for_sink()
            self._ensure_node(
                recorder, sink, NodeType.SINK, "S", None, supply=-len(tasks)
            )
            recorder.set_supply(sink, -len(tasks))

            # 3. Nodes for new entities (racks materialize on access).
            for machine_id in sorted(added_machines):
                self._ensure_node(
                    recorder,
                    self._node_for_machine(machine_id),
                    NodeType.MACHINE,
                    f"M{machine_id}",
                    machine_id,
                )
            for job_id in sorted(added_jobs):
                self._ensure_node(
                    recorder,
                    self._node_for_job(job_id),
                    NodeType.UNSCHEDULED_AGGREGATOR,
                    f"U{job_id}",
                    job_id,
                )
            for task_id in sorted(added_tasks):
                task = task_by_id[task_id]
                self._ensure_node(
                    recorder,
                    self._node_for_task(task_id),
                    NodeType.TASK,
                    f"T{task.job_id},{task.task_id}",
                    task_id,
                    supply=1,
                )

            # 4. Re-derive the dirty scopes: machines (backbone), policy
            # aggregators, then tasks.
            builder = _IncrementalBuilder(self, recorder)
            policy = self.policy
            for machine_id in sorted(dirty_machines_avail & machine_ids):
                machine = state.topology.machine(machine_id)
                self._apply_scope(
                    builder,
                    ("machine", machine_id),
                    lambda b, m=machine: policy.arcs_for_machine(state, b, m, now),
                )
            dirty_view = _DirtyView(
                # Departed tasks are included so a policy can attribute
                # their aggregator scopes (still resolvable via state.tasks).
                tasks=dirty_tasks | departed_tasks,
                jobs=dirty_jobs,
                machines_availability=dirty_machines_avail,
                machines_load=dirty_machines_load,
            )
            for key in policy.dirty_aggregators(state, dirty_view, now, builder):
                self._apply_scope(
                    builder,
                    key,
                    lambda b, k=key: policy.refresh_aggregator(state, b, k, now),
                )
            for task_id in sorted(dirty_tasks):
                task = task_by_id[task_id]
                self._apply_scope(
                    builder,
                    ("task", task_id),
                    lambda b, t=task: policy.arcs_for_task(state, b, t, now),
                )
                self._record_task_dependencies(
                    task_id, policy.task_machine_dependencies(state, task)
                )
                self._cache_task_cost_terms(task)

            # 5. Time-varying costs (waiting time) for the clean tasks: the
            # unscheduled cost grows with ``now`` for every task, so this is
            # an O(tasks) pass -- but of pure arithmetic on cached terms,
            # not derivation.
            cost_terms = self._task_cost_terms
            find_arc = network.find_arc
            patch_cost = recorder.patch_known_arc_cost
            for task in tasks:
                task_id = task.task_id
                if task_id in dirty_tasks:
                    continue
                entry = cost_terms.get(task_id)
                if entry is None:
                    continue
                static, rate, submit_time, arc_key = entry
                wait = now - submit_time
                cost = static + int(rate * wait) if wait > 0.0 else static
                arc = find_arc(*arc_key)
                if arc is not None and arc.cost != cost:
                    patch_cost(arc_key, arc, cost)

            # 6. Incremental prune: only endpoints of removed arcs (and
            # fresh nodes) can have become isolated.
            for node_id in sorted(recorder.prune_candidates):
                if not network.has_node(node_id):
                    continue
                node = network.node(node_id)
                if (
                    node.supply == 0
                    and not network.outgoing(node_id)
                    and not network.incoming(node_id)
                ):
                    recorder.remove_node(node_id)

            self._revision += 1
            network.revision = self._revision
            batch = recorder.finish(self._revision)
            self.last_changes = batch if self.track_changes else None

            self._prev_task_ids = task_ids
            self._prev_machine_ids = machine_ids
            self._prev_rack_ids = rack_ids
            self._prev_job_ids = job_ids
            self.last_update_stats = GraphUpdateStats(
                mode="incremental",
                nodes_touched=recorder.nodes_touched,
                arcs_patched=recorder.arcs_patched,
                dirty_tasks=len(dirty_tasks),
                dirty_machines=len(dirty_machines_avail),
            )
        finally:
            self._recorder = None
        return network

    def _apply_scope(self, builder: _IncrementalBuilder, key, derive) -> None:
        """Re-derive one scope: emit its desired arcs and patch the network.

        The scope's current arcs come from the policy's structural
        ownership (:meth:`SchedulingPolicy.owned_arcs`); arcs no longer
        desired are removed, new ones added, surviving ones patched in
        place -- all through the change recorder.
        """
        desired = builder.collect(derive)
        recorder = builder.recorder
        network = self.network
        for arc in list(self.policy.owned_arcs(builder, key)):
            if arc.key() not in desired:
                recorder.remove_arc(arc.src, arc.dst)
        for (src, dst), (capacity, cost) in desired.items():
            if network.has_arc(src, dst):
                recorder.set_arc_capacity(src, dst, capacity)
                recorder.set_arc_cost(src, dst, cost)
            else:
                recorder.add_arc(src, dst, capacity, cost)

    # ------------------------------------------------------------------ #
    # Dependency bookkeeping (machine availability -> dependent tasks)
    # ------------------------------------------------------------------ #
    def _cache_task_cost_terms(self, task) -> None:
        """Cache the decomposed unscheduled cost for the waiting-cost
        refresh (see :meth:`SchedulingPolicy.unscheduled_cost_terms`)."""
        static, rate = self.policy.unscheduled_cost_terms(task)
        self._task_cost_terms[task.task_id] = (
            static,
            rate,
            task.submit_time,
            (
                self._task_nodes[task.task_id],
                self._unscheduled_nodes[task.job_id],
            ),
        )

    def _record_task_dependencies(self, task_id: int, machines: Iterable[int]) -> None:
        previous = self._task_dependencies.get(task_id)
        if previous:
            for machine_id in previous:
                dependents = self._machine_dependents.get(machine_id)
                if dependents is not None:
                    dependents.discard(task_id)
        current = set(machines)
        self._task_dependencies[task_id] = current
        for machine_id in current:
            self._machine_dependents.setdefault(machine_id, set()).add(task_id)

    def _drop_task_dependencies(self, task_id: int) -> None:
        previous = self._task_dependencies.pop(task_id, None)
        if previous:
            for machine_id in previous:
                dependents = self._machine_dependents.get(machine_id)
                if dependents is not None:
                    dependents.discard(task_id)

    def _record_round_entities(self, state: ClusterState, tasks) -> None:
        self._prev_task_ids = {t.task_id for t in tasks}
        self._prev_machine_ids = {
            m.machine_id for m in state.topology.healthy_machines()
        }
        self._prev_rack_ids = set(state.topology.racks)
        self._prev_job_ids = {t.job_id for t in tasks}

    def _rebuild_dependency_index(self, state: ClusterState, tasks) -> None:
        # The index only feeds incremental rounds; a manager that will never
        # run one (incremental=False baselines) must not pay for it.
        if not self.incremental or not self.policy.supports_incremental_build:
            return
        self._task_dependencies = {}
        self._machine_dependents = {}
        self._task_cost_terms = {}
        for task in tasks:
            self._record_task_dependencies(
                task.task_id, self.policy.task_machine_dependencies(state, task)
            )
            self._cache_task_cost_terms(task)

    # ------------------------------------------------------------------ #
    # Cross-check mode
    # ------------------------------------------------------------------ #
    def _cross_check(self, state: ClusterState, now: float) -> None:
        """Assert the incremental update matches the full-rebuild path."""
        tasks = state.schedulable_tasks()
        rebuilt = self._build_full_network(state, now, tasks)
        problems = self.network.structurally_equal(rebuilt)
        if problems:
            raise GraphConsistencyError(
                "incremental network diverged from full rebuild: "
                + "; ".join(problems[:20])
            )
        if self._verify_snapshot is not None and self.last_changes is not None:
            replayed = self._verify_snapshot.copy()
            self.last_changes.apply_to(replayed)
            problems = replayed.structurally_equal(rebuilt)
            if problems:
                raise GraphConsistencyError(
                    "directly-emitted change batch does not replay the "
                    "previous network into the rebuild: "
                    + "; ".join(problems[:20])
                )

    def _prune_isolated_nodes(self, network: FlowNetwork) -> None:
        """Drop zero-supply nodes with no arcs (unused racks or aggregators).

        Keeping them would be harmless for correctness but would make the
        solvers iterate over dead nodes.  The incremental path prunes from
        the candidate set recorded by its change builder instead of scanning
        every node.
        """
        isolated = [
            node.node_id
            for node in network.nodes()
            if node.supply == 0
            and not network.outgoing(node.node_id)
            and not network.incoming(node.node_id)
        ]
        for node_id in isolated:
            network.remove_node(node_id)
