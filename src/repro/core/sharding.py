"""Sharded multi-cell scheduling: per-cell incremental solvers + balancer.

One min-cost flow network over the whole cluster is the reproduction's hard
scaling ceiling: solver work grows superlinearly with network size, so a
single network cannot reach the paper's 12,500-machine trace no matter how
incremental the per-round work is.  Production clusters answer this by
federating into *cells* (Borg-style; the paper's Firmament deployment
schedules one cell), and this module does the same:

* :class:`CellPartition` splits the cluster into cells by **rack** -- the
  failure domain of :mod:`repro.cluster.topology` -- with a pure function
  of the rack id, so the partition is deterministic, identical across
  processes, and stable under ``add_machine`` / ``remove_machine`` (a
  machine's cell follows its rack; existing machines never move).
* :class:`CellStateView` is a persistent per-cell facade over the shared
  :class:`~repro.cluster.state.ClusterState`: a filtered topology (the
  cell's racks and machines only), the round's task bucket, and a private
  :class:`~repro.cluster.events.DirtyTracker`.  Each cell's
  :class:`~repro.core.graph_manager.GraphManager` consumes its view exactly
  as the monolithic manager consumes the full state, so the entire
  incremental graph path (typed dirty sets, in-place mutation, emitted
  :class:`~repro.flow.changes.ChangeBatch`) is reused unchanged per cell.
* :class:`ShardedScheduler` drains the global dirty tracker once per round
  and *routes* each mark to the owning cell's tracker, updates every
  cell's network, and solves the cells either **inline** (deterministic;
  the round charges the *slowest* cell's runtime, modeling concurrent
  cells the same way the sequential dual executor models the race) or in
  a pool of persistent **worker subprocesses** -- one incremental
  cost-scaling solver per cell behind the PR 2/PR 5 DIMACS transport
  (full snapshots on cold start, revision-chained deltas with
  :class:`~repro.solvers.parallel_executor.RevisionChainCache` resync
  otherwise).  All cells ship before any gathers, so the round's wall
  clock approaches the slowest cell rather than the sum.
* :class:`CrossCellBalancer` runs off the hot path, after the round's
  placements are extracted: a cell whose queued tasks exceed its free
  capacity (including a task with *no* feasible machine in its home cell)
  hands excess tasks to the cell with the most spare capacity.  A
  migration is nothing but a home-table update plus ordinary dirty marks
  in both cells' trackers, so it rides the incremental graph path like
  any other churn.

Observability: every round's merged
:class:`~repro.solvers.base.SolverStatistics` carries ``cells_solved``,
straggler-cell attribution (which cell bounded the round and by how much),
and ``cross_cell_migrations``; the simulator forwards them through
:class:`~repro.simulation.simulator.ScheduleRecord` into
:class:`~repro.simulation.metrics.MetricsSummary`.  Per-cell transport
ratios (snapshot vs delta ships, fallback rounds, respawns) are exposed by
:meth:`ShardedScheduler.cell_transport`.

Chaos: the scheduler honours the same :class:`~repro.chaos.ChaosPolicy`
faults as the parallel executor, aimed at one cell per firing round
(``round_index % num_cells``), so a ``worker_kill`` degrades exactly the
affected cell -- its round is served by the parent-side fallback solver --
while every other cell's worker keeps solving undisturbed.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.events import DirtyTracker
from repro.cluster.machine import Machine, Rack
from repro.cluster.state import ClusterState
from repro.cluster.task import Task
from repro.cluster.topology import ClusterTopology
from repro.core.graph_manager import GraphManager
from repro.core.placement import extract_placements
from repro.core.scheduler import SchedulerStatistics, SchedulingDecision
from repro.flow.changes import ChangeBatch, apply_changes
from repro.flow.dimacs import (
    read_dimacs,
    read_incremental,
    write_dimacs,
    write_incremental,
)
from repro.flow.graph import FlowNetwork
from repro.solvers.base import (
    RoundDeadlineExceeded,
    SolverResult,
    SolverStatistics,
)
from repro.solvers.incremental import IncrementalCostScalingSolver
from repro.solvers.parallel_executor import (
    RESYNC_MAX_SNAPSHOT_MULTIPLE,
    RevisionChainCache,
)

__all__ = [
    "CellPartition",
    "CellStateView",
    "CellTopologyView",
    "CrossCellBalancer",
    "ShardedScheduler",
]

#: Upper bound on cross-cell migrations per round.  The balancer runs off
#: the hot path and its migrations are ordinary dirty-set churn for *two*
#: cells each, so an unbounded storm (e.g. after a rack failure dumped a
#: whole cell's tasks into the queue) could make the next round's delta
#: work resemble a rebuild.  Rebalancing the tail over a few rounds keeps
#: every round incremental.
MAX_MIGRATIONS_PER_ROUND = 64

#: How long a worker-mode gather waits for a cell's result when no round
#: deadline is configured.  Purely a hang guard: a worker that misses it is
#: treated exactly like a dead worker (parent-side fallback serves the
#: cell, the worker is respawned), so the bound trades a pathological hang
#: for one degraded cell-round.
GATHER_TIMEOUT_SECONDS = 300.0

#: Prune interval (in rounds) for the task-home and job-cell maps, which
#: otherwise grow with workload history rather than the live set.
HOME_PRUNE_INTERVAL = 256


class CellPartition:
    """Deterministic rack-granular partition of the cluster into cells.

    A rack -- the failure domain of the topology -- maps to cell
    ``rack_id % num_cells``.  The mapping is a pure function: two processes
    (or two rounds straddling arbitrary churn) always agree, machines never
    change cells while their rack exists, and newly added machines land in
    their rack's cell without disturbing anyone else.
    """

    def __init__(self, num_cells: int) -> None:
        if num_cells < 1:
            raise ValueError("a partition needs at least one cell")
        self.num_cells = num_cells

    def cell_of_rack(self, rack_id: int) -> int:
        """Cell owning a rack."""
        return rack_id % self.num_cells

    def cell_of_machine(self, machine: Machine) -> int:
        """Cell owning a machine (via its rack)."""
        return machine.rack_id % self.num_cells

    def cell_of_job(self, job_id: int) -> int:
        """Default home cell of a job's tasks.

        Homing by *job* keeps a job's unscheduled aggregator from
        fragmenting across every cell by default; the balancer re-homes
        individual tasks only when load or feasibility demands it.
        """
        return job_id % self.num_cells

    def assignment(self, topology: ClusterTopology) -> Dict[int, int]:
        """``{machine_id: cell}`` for every machine currently in the topology."""
        return {
            machine_id: self.cell_of_machine(machine)
            for machine_id, machine in topology.machines.items()
        }


class CellTopologyView:
    """One cell's slice of the shared topology.

    Filters ``racks`` / ``machines`` to the cell (cached against
    :attr:`ClusterTopology.version`, so steady-state rounds pay a dict
    lookup, not a re-derivation) and answers ``healthy_machines`` from the
    filtered set.  Point lookups (``machine``, ``rack``, ``rack_of``,
    ``machines_in_rack``) delegate to the global topology: the partition is
    rack-granular, so every id a cell's policy or graph manager resolves is
    already in-cell.
    """

    def __init__(self, topology: ClusterTopology, partition: CellPartition, cell: int) -> None:
        self._topology = topology
        self._partition = partition
        self._cell = cell
        self._cached_version: Optional[int] = None
        self._machines: Dict[int, Machine] = {}
        self._racks: Dict[int, Rack] = {}

    def _refresh(self) -> None:
        topology = self._topology
        if self._cached_version == topology.version:
            return
        racks = {
            rack_id: rack
            for rack_id, rack in topology.racks.items()
            if self._partition.cell_of_rack(rack_id) == self._cell
        }
        machines = {}
        all_machines = topology.machines
        for rack in racks.values():
            for machine_id in rack.machine_ids:
                machine = all_machines.get(machine_id)
                if machine is not None:
                    machines[machine_id] = machine
        self._racks = racks
        self._machines = machines
        self._cached_version = topology.version

    @property
    def machines(self) -> Dict[int, Machine]:
        """The cell's machines, keyed by id."""
        self._refresh()
        return self._machines

    @property
    def racks(self) -> Dict[int, Rack]:
        """The cell's racks, keyed by id."""
        self._refresh()
        return self._racks

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def num_racks(self) -> int:
        return len(self.racks)

    @property
    def total_slots(self) -> int:
        return sum(m.num_slots for m in self.machines.values())

    @property
    def version(self) -> int:
        return self._topology.version

    def healthy_machines(self) -> List[Machine]:
        """The cell's machines that can currently accept tasks."""
        return [m for m in self.machines.values() if m.is_available]

    def machine(self, machine_id: int) -> Machine:
        return self._topology.machine(machine_id)

    def rack(self, rack_id: int) -> Rack:
        return self._topology.rack(rack_id)

    def rack_of(self, machine_id: int) -> Rack:
        return self._topology.rack_of(machine_id)

    def machines_in_rack(self, rack_id: int) -> List[Machine]:
        return self._topology.machines_in_rack(rack_id)


class CellStateView:
    """Persistent per-cell facade over the shared :class:`ClusterState`.

    The graph manager binds to ``id(state)`` and to the continuity of the
    state's dirty-epoch chain, so the view must be a long-lived object with
    its own :class:`DirtyTracker` (fed by the scheduler's routing) -- a
    per-round throwaway wrapper would force a full rebuild every round.

    Overridden surface: ``topology`` (the cell slice), ``dirty`` (the
    private tracker), and the task scans (``schedulable_tasks`` /
    ``pending_tasks``), which serve the round's pre-bucketed task list so
    per-round cost across all cells stays O(live tasks), not
    O(cells x live tasks).  Everything else -- ``tasks``, ``jobs``, slot
    and resource queries, the monitor -- delegates to the shared state:
    those queries are keyed by in-cell ids, and policies resolving a
    *departed* task need the global ``tasks`` history.
    """

    def __init__(self, state: ClusterState, partition: CellPartition, cell: int) -> None:
        self._state = state
        self.cell = cell
        self.topology = CellTopologyView(state.topology, partition, cell)
        self.dirty = DirtyTracker()
        self._round_tasks: List[Task] = []

    def set_round_tasks(self, tasks: List[Task]) -> None:
        """Install the round's task bucket (scheduler routing step)."""
        self._round_tasks = tasks

    def schedulable_tasks(self) -> List[Task]:
        """The cell's schedulable tasks, as bucketed for this round."""
        return list(self._round_tasks)

    def pending_tasks(self) -> List[Task]:
        """The cell's pending tasks, oldest submission first."""
        pending = [t for t in self._round_tasks if t.is_pending]
        pending.sort(key=lambda t: (t.submit_time, t.task_id))
        return pending

    def __getattr__(self, name: str):
        # Anything not overridden reads through to the shared state
        # (``tasks``, ``jobs``, ``free_slots``, ``spare_resources``,
        # ``monitor``, ...).
        return getattr(self._state, name)


# --------------------------------------------------------------------- #
# Worker pool: one persistent incremental solver subprocess per cell
# --------------------------------------------------------------------- #
def _cell_solver_worker(conn, solver_kwargs: Dict[str, Any]) -> None:
    """Entry point of a persistent per-cell solver subprocess.

    Protocol-compatible with the relaxation worker of
    :mod:`repro.solvers.parallel_executor` -- ``("full", round_id, text,
    revision)`` / ``("delta", round_id, text, base, target)`` requests,
    ``("result", round_id, payload)`` / ``("error", round_id, msg)``
    replies -- but holds an :class:`IncrementalCostScalingSolver` whose
    persistent residual survives across rounds, so a steady-state cell
    round costs one O(|changes|) shadow patch plus a bounded delta repair.
    """
    solver = IncrementalCostScalingSolver(**solver_kwargs)
    shadow: Optional[FlowNetwork] = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "shutdown":
            break
        if message[0] == "chaos_delay":
            time.sleep(message[1])
            continue
        kind, round_id, text = message[0], message[1], message[2]
        try:
            if kind == "full":
                shadow = read_dimacs(text)
                shadow.revision = message[3]
                # A warm solver rebuilds from its previous flows when the
                # node-id space matches (same cell manager); a cold or
                # reset solver just solves from scratch.
                result = solver.solve(shadow)
            elif shadow is None:
                raise RuntimeError("delta request but no shadow network")
            else:
                base_revision, target_revision = message[3], message[4]
                parsed = read_incremental(text)
                apply_changes(shadow, parsed)
                shadow.revision = target_revision
                batch = ChangeBatch(
                    changes=parsed,
                    base_revision=base_revision,
                    target_revision=target_revision,
                )
                result = solver.solve(shadow, changes=batch)
            stats = result.statistics
            response = (
                "result",
                round_id,
                {
                    "total_cost": result.total_cost,
                    "flows": result.flows,
                    "potentials": result.potentials,
                    "runtime_seconds": result.runtime_seconds,
                    "optimal": result.optimal,
                    "iterations": stats.iterations,
                    "pushes": stats.pushes,
                    "relabels": stats.relabels,
                    "epsilon_phases": stats.epsilon_phases,
                    "arcs_patched": stats.arcs_patched,
                    "nodes_touched": stats.nodes_touched,
                    "price_refine_seconds": stats.price_refine_seconds,
                    "price_refine_passes": stats.price_refine_passes,
                    "finished_at": time.monotonic(),
                },
            )
        except Exception as error:
            # The shadow and the solver's residual may be half-patched;
            # start clean and let the parent ship a full snapshot next.
            shadow = None
            solver = IncrementalCostScalingSolver(**solver_kwargs)
            response = ("error", round_id, f"{type(error).__name__}: {error}")
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            break
    try:
        conn.close()
    except OSError:  # pragma: no cover
        pass


class _CellWorkerClient:
    """Parent-side handle of one cell's solver subprocess.

    Owns the pipe, the revision-chain cache for delta/resync encoding, and
    the answered-up bookkeeping (the same deadlock guard as the parallel
    executor: a request is only shipped to a worker that has answered every
    previous one, so a blocking ``send`` always finds a reader).
    """

    def __init__(self, cell: int, solver_kwargs: Optional[Dict[str, Any]] = None) -> None:
        self.cell = cell
        self._solver_kwargs = dict(solver_kwargs or {})
        self._conn = None
        self._process = None
        self._unanswered: Set[int] = set()
        self._cache = RevisionChainCache()
        self._worker_revision: Optional[int] = None
        self.snapshot_ships = 0
        self.delta_ships = 0
        self.fallback_rounds = 0
        self.respawns = 0

    # -- lifecycle ----------------------------------------------------- #
    def ensure(self) -> bool:
        """Spawn the worker if needed; False when multiprocessing is broken."""
        if self._process is not None and self._process.is_alive():
            return True
        if self._process is not None:
            self._teardown()
        try:
            import multiprocessing

            context = multiprocessing.get_context()
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_cell_solver_worker,
                args=(child_conn, self._solver_kwargs),
                daemon=True,
            )
            process.start()
            child_conn.close()
        except Exception:
            return False
        self._conn = parent_conn
        self._process = process
        self._unanswered = set()
        self._worker_revision = None
        self.respawns += 1
        return True

    def kill(self) -> None:
        """Terminate the worker process (chaos hook / tests)."""
        if self._process is not None and self._process.is_alive():
            self._process.terminate()

    def _teardown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        if self._process is not None:
            self._process.join(timeout=1.0)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.kill()
                self._process.join(timeout=1.0)
        self._conn = None
        self._process = None
        self._unanswered = set()
        self._worker_revision = None

    def close(self) -> None:
        """Shut the worker down cleanly (idempotent)."""
        if self._conn is not None and not self._unanswered:
            try:
                self._conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        self._teardown()

    # -- per-round transport ------------------------------------------- #
    def record_batch(self, changes: Optional[ChangeBatch]) -> None:
        """Feed the resync cache (no-op for unrevisioned batches)."""
        if changes is not None:
            self._cache.record(changes)

    def _drain_stale(self) -> None:
        """Non-blocking drain of answers to rounds we no longer care about."""
        if self._conn is None:
            return
        try:
            while self._conn.poll(0):
                kind, round_id, _body = self._conn.recv()
                self._unanswered.discard(round_id)
                if kind == "error":
                    self._worker_revision = None
        except (EOFError, OSError):
            self._teardown()

    def ship(
        self,
        round_id: int,
        network: FlowNetwork,
        changes: Optional[ChangeBatch],
        chaos=None,
        chaos_round: int = 0,
    ) -> bool:
        """Serialize and send the round; False means 'solve this cell inline'."""
        if not self.ensure():
            return False
        self._drain_stale()
        if self._conn is None or self._unanswered:
            # A previous round never answered (slow or hung worker); do not
            # queue behind it -- the answered-up guard doubles as the
            # deadlock guard.
            return False
        message, kind = self._encode(round_id, network, changes)
        if chaos is not None:
            message = self._apply_send_chaos(chaos, chaos_round, message)
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError):
            self._teardown()
            return False
        self._unanswered.add(round_id)
        if kind == "full":
            self.snapshot_ships += 1
        else:
            self.delta_ships += 1
        if chaos is not None and chaos.fires("worker_kill", chaos_round):
            # Chaos: the cell's worker dies mid-round; the gather sees the
            # broken pipe and the parent-side fallback serves the round.
            self.kill()
        return True

    def _apply_send_chaos(self, chaos, chaos_round: int, message: tuple) -> tuple:
        if chaos.fires("pipe_break", chaos_round) and self._conn is not None:
            self._conn.close()
            return message
        if chaos.fires("corrupt_message", chaos_round):
            message = (
                message[0],
                message[1],
                message[2] + "\nthis is not DIMACS\n",
            ) + tuple(message[3:])
        if chaos.fires("worker_delay", chaos_round):
            self._conn.send(("chaos_delay", chaos.delay_seconds))
        return message

    def _encode(
        self, round_id: int, network: FlowNetwork, changes: Optional[ChangeBatch]
    ) -> Tuple[tuple, str]:
        """Delta whenever the revision chain connects; full snapshot else."""
        target = None
        if (
            changes is not None
            and changes.base_revision is not None
            and changes.target_revision is not None
        ):
            target = changes.target_revision
        if self._worker_revision is not None and target is not None:
            composed = self._cache.compose(
                self._worker_revision,
                target,
                max_changes=RESYNC_MAX_SNAPSHOT_MULTIPLE
                * (network.num_arcs + network.num_nodes),
            )
            if composed is not None:
                try:
                    text = write_incremental(
                        composed,
                        base_revision=self._worker_revision,
                        target_revision=target,
                    )
                except (ValueError, TypeError):
                    pass
                else:
                    message = (
                        "delta",
                        round_id,
                        text,
                        self._worker_revision,
                        target,
                    )
                    self._worker_revision = target
                    return message, "delta"
        text = write_dimacs(network, include_node_types=False)
        shipped_revision = getattr(network, "revision", None)
        self._worker_revision = shipped_revision
        return ("full", round_id, text, shipped_revision), "full"

    def gather(self, round_id: int, timeout: float) -> Optional[Dict[str, Any]]:
        """Wait for the round's result; None means 'fall back inline'."""
        if self._conn is None:
            return None
        deadline = time.monotonic() + timeout
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Leave the round unanswered: the answered-up guard
                    # keeps the next ship away until the worker drains it.
                    self._worker_revision = None
                    return None
                if self._conn.poll(min(remaining, 0.05)):
                    kind, answered_id, body = self._conn.recv()
                    self._unanswered.discard(answered_id)
                    if kind == "error":
                        self._worker_revision = None
                        if answered_id == round_id:
                            return None
                        continue
                    if answered_id != round_id:
                        continue  # stale answer to an abandoned round
                    return body
        except (EOFError, OSError):
            self._teardown()
            return None


# --------------------------------------------------------------------- #
# Cross-cell balancer
# --------------------------------------------------------------------- #
class CrossCellBalancer:
    """Off-hot-path task migration between cells.

    After a round's placements are known, each cell's *surplus* is its
    remaining free slots minus its queued (unscheduled) demand.  Cells in
    deficit -- including the degenerate case of a task with no feasible
    machine at all in its home cell (zero free slots) -- hand excess
    unscheduled tasks to the cell with the largest surplus.  Deterministic:
    tasks move in task-id order, ties in target choice break toward the
    lowest cell id.  Migrations are bounded per round
    (:data:`MAX_MIGRATIONS_PER_ROUND`) so the next round's delta work stays
    incremental even after a storm.
    """

    def __init__(
        self,
        partition: CellPartition,
        max_migrations_per_round: int = MAX_MIGRATIONS_PER_ROUND,
    ) -> None:
        self.partition = partition
        self.max_migrations_per_round = max_migrations_per_round
        self.total_migrations = 0

    def plan(
        self,
        state: ClusterState,
        decision: SchedulingDecision,
        home_of,
    ) -> List[Tuple[int, int, int]]:
        """Plan ``(task_id, from_cell, to_cell)`` migrations for this round.

        ``home_of(task)`` maps a task to its current home cell.  Uses the
        state's free-slot index, so the cost is O(|free machines| +
        |unscheduled| + cells) -- off the hot path by construction.
        """
        if not decision.unscheduled:
            return []
        num_cells = self.partition.num_cells
        if num_cells < 2:
            return []

        # Remaining free slots per cell once this round's planned
        # placements land.
        free = [0] * num_cells
        for machine in state.machines_with_free_slots():
            free[self.partition.cell_of_machine(machine)] += state.free_slots(
                machine.machine_id
            )
        machines = state.topology.machines
        for machine_id in decision.placements.values():
            machine = machines.get(machine_id)
            if machine is not None:
                free[self.partition.cell_of_machine(machine)] -= 1
        for task_id, machine_id in decision.migrations.items():
            machine = machines.get(machine_id)
            if machine is not None:
                free[self.partition.cell_of_machine(machine)] -= 1
            task = state.tasks.get(task_id)
            if task is not None and task.machine_id is not None:
                old = machines.get(task.machine_id)
                if old is not None:
                    free[self.partition.cell_of_machine(old)] += 1

        # Queued demand per cell, and the movable tasks behind it.
        demand = [0] * num_cells
        movable: List[Tuple[int, int]] = []  # (task_id, home_cell)
        tasks = state.tasks
        for task_id in sorted(decision.unscheduled):
            task = tasks.get(task_id)
            if task is None or task.is_running:
                continue
            home = home_of(task)
            demand[home] += 1
            movable.append((task_id, home))

        surplus = [free[c] - demand[c] for c in range(num_cells)]
        moves: List[Tuple[int, int, int]] = []
        for task_id, home in movable:
            if len(moves) >= self.max_migrations_per_round:
                break
            if surplus[home] >= 0:
                continue  # the home cell can absorb its own queue
            target = max(
                range(num_cells), key=lambda c: (surplus[c], -c)
            )
            if target == home or surplus[target] <= 0:
                continue  # nowhere better to go
            surplus[home] += 1
            surplus[target] -= 1
            moves.append((task_id, home, target))
        self.total_migrations += len(moves)
        return moves


# --------------------------------------------------------------------- #
# The sharded scheduler
# --------------------------------------------------------------------- #
class ShardedScheduler:
    """Flow scheduling over a rack-partitioned cluster, one solver per cell.

    Drop-in for :class:`~repro.core.scheduler.FirmamentScheduler` (same
    ``schedule`` / ``apply`` / ``schedule_and_apply`` / ``close`` /
    ``statistics`` surface), so the simulator, CLI, and testbed drive it
    unchanged.

    Args:
        policy_factory: Zero-argument callable producing a *fresh* policy
            per cell (each cell's graph manager derives its own network, so
            policies must not share per-network caches).  A policy class
            works directly.
        num_cells: Number of cells; racks map to cells by ``rack_id %
            num_cells``.
        workers: ``True`` solves each cell in a persistent subprocess
            (ship all, then gather: wall clock ~ slowest cell).  ``False``
            (default) solves cells inline in cell order and charges the
            *maximum* cell runtime -- fully deterministic, modeling the
            concurrent deployment exactly as the sequential dual executor
            models the race.
        solver_factory: Zero-argument callable producing each cell's
            inline/fallback solver; defaults to
            ``IncrementalCostScalingSolver()``.
        price_refine: Price-refine variant forwarded to every per-cell
            solver -- the inline/fallback solvers *and* the worker
            subprocesses (``"spfa"``, ``"dijkstra"``, or ``"auto"``; see
            :data:`repro.solvers.cost_scaling.PRICE_REFINE_MODES`).  Only
            valid with the default ``solver_factory``: a custom factory
            already controls its solvers' construction.
        allow_migrations: As in :class:`FirmamentScheduler`.
        balance: Enable the cross-cell balancer.
        round_deadline_seconds: Per-round budget, applied per cell (cells
            are concurrent, so each gets the full budget).  A cell that
            misses it degrades alone: its pending tasks wait a round while
            the other cells' placements land normally.
        chaos: Optional :class:`~repro.chaos.ChaosPolicy`; worker-directed
            faults hit cell ``round_index % num_cells`` only.
    """

    def __init__(
        self,
        policy_factory,
        num_cells: int = 4,
        workers: bool = False,
        solver_factory=None,
        price_refine: Optional[str] = None,
        allow_migrations: bool = True,
        balance: bool = True,
        round_deadline_seconds: Optional[float] = None,
        chaos=None,
    ) -> None:
        if solver_factory is not None and price_refine is not None:
            raise ValueError(
                "price_refine= only applies to the default solver_factory"
            )
        self.partition = CellPartition(num_cells)
        self.num_cells = num_cells
        self.workers = workers
        self.allow_migrations = allow_migrations
        self.round_deadline_seconds = round_deadline_seconds
        self.chaos = chaos
        self._policy_factory = policy_factory
        # The worker subprocesses construct their own solvers, so the knobs
        # must travel as kwargs; the inline/fallback factory uses the same
        # kwargs so both modes solve identically configured.
        self._solver_kwargs: Dict[str, Any] = {}
        if price_refine is not None:
            self._solver_kwargs["price_refine"] = price_refine
        if solver_factory is None and round_deadline_seconds is not None:
            self._solver_kwargs["round_deadline_seconds"] = round_deadline_seconds
        self._solver_factory = solver_factory or (
            lambda: IncrementalCostScalingSolver(**self._solver_kwargs)
        )
        self.statistics = SchedulerStatistics()
        self.balancer = CrossCellBalancer(self.partition) if balance else None

        self._state_id: Optional[int] = None
        self._views: List[CellStateView] = []
        self._managers: List[GraphManager] = []
        self._solvers: List[Any] = []
        self._clients: List[_CellWorkerClient] = []
        self._cell_had_tasks: List[bool] = []
        self._dirty_epoch: Optional[int] = None
        self._task_home: Dict[int, int] = {}
        self._job_cells: Dict[int, Set[int]] = {}
        self._round_index = 0
        #: Rounds in which each cell was the straggler (observability).
        self.straggler_rounds: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Binding and routing
    # ------------------------------------------------------------------ #
    def _bind(self, state: ClusterState) -> None:
        """(Re)attach to a cluster state: fresh views, managers, solvers."""
        self.close_cells()
        self._state_id = id(state)
        self._views = [
            CellStateView(state, self.partition, cell)
            for cell in range(self.num_cells)
        ]
        self._managers = []
        self._solvers = []
        self._clients = []
        for cell in range(self.num_cells):
            policy = self._policy_factory()
            self._managers.append(
                GraphManager(policy, track_changes=True, chaos=self.chaos)
            )
            solver = self._solver_factory()
            if self.round_deadline_seconds is not None:
                if not hasattr(solver, "round_deadline_seconds"):
                    raise ValueError(
                        "round_deadline_seconds requires a cell solver with "
                        f"deadline support; {type(solver).__name__} has none"
                    )
                solver.round_deadline_seconds = self.round_deadline_seconds
            self._solvers.append(solver)
            self._clients.append(
                _CellWorkerClient(cell, solver_kwargs=self._solver_kwargs)
            )
        self._cell_had_tasks = [False] * self.num_cells
        self._dirty_epoch = None
        self._task_home = {}
        self._job_cells = {}
        for view in self._views:
            view.dirty.mark_all()

    def _home_cell(self, task: Task) -> int:
        """Current home cell of a task.

        A running task belongs to the cell of its machine (its continuation
        arc must resolve inside that cell's network); otherwise the
        balancer's override applies, falling back to the job-hash default.
        """
        if task.is_running and task.machine_id is not None:
            machine = self._views[0]._state.topology.machines.get(task.machine_id)
            if machine is not None:
                return self.partition.cell_of_machine(machine)
        home = self._task_home.get(task.task_id)
        if home is not None:
            return home
        return self.partition.cell_of_job(task.job_id)

    def _route_dirty(self, state: ClusterState) -> None:
        """Drain the global dirty tracker once, route marks to cell trackers."""
        snapshot = state.dirty.drain()
        chain_intact = (
            self._dirty_epoch is not None
            and snapshot.epoch == self._dirty_epoch + 1
        )
        self._dirty_epoch = snapshot.epoch
        if snapshot.full or not chain_intact:
            for view in self._views:
                view.dirty.mark_all()
            return
        tasks = state.tasks
        machines = state.topology.machines
        for task_id in snapshot.tasks:
            task = tasks.get(task_id)
            if task is None:
                # The task vanished (job removal) before it ever reached a
                # cell's round bucket; the owning cell's manager detects
                # the departure from its previous task set regardless, so
                # the mark has no one left to inform.
                home = self._task_home.get(task_id)
                if home is not None:
                    self._views[home].dirty.mark_task(task_id)
                continue
            self._views[self._home_cell(task)].dirty.mark_task(task_id)
        for job_id in snapshot.jobs:
            cells = self._job_cells.get(job_id)
            if cells is None:
                for view in self._views:
                    view.dirty.mark_job(job_id)
            else:
                for cell in cells:
                    self._views[cell].dirty.mark_job(job_id)
        for machine_id in snapshot.machines_availability:
            machine = machines.get(machine_id)
            if machine is None:
                for view in self._views:
                    view.dirty.mark_machine_availability(machine_id)
            else:
                self._views[
                    self.partition.cell_of_machine(machine)
                ].dirty.mark_machine_availability(machine_id)
        for machine_id in snapshot.machines_load:
            machine = machines.get(machine_id)
            if machine is None:
                for view in self._views:
                    view.dirty.mark_machine_load(machine_id)
            else:
                self._views[
                    self.partition.cell_of_machine(machine)
                ].dirty.mark_machine_load(machine_id)

    def _bucket_tasks(self, state: ClusterState) -> List[List[Task]]:
        """Split the schedulable set into per-cell buckets (one O(live) pass)."""
        buckets: List[List[Task]] = [[] for _ in range(self.num_cells)]
        for task in state.schedulable_tasks():
            cell = self._home_cell(task)
            # Stick the task to its resolved cell so preemption does not
            # bounce it back to the job-hash default mid-flight.
            self._task_home[task.task_id] = cell
            self._job_cells.setdefault(task.job_id, set()).add(cell)
            buckets[cell].append(task)
        if self._round_index % HOME_PRUNE_INTERVAL == 0:
            live = state.tasks
            self._task_home = {
                task_id: cell
                for task_id, cell in self._task_home.items()
                if task_id in live
            }
            jobs = state.jobs
            self._job_cells = {
                job_id: cells
                for job_id, cells in self._job_cells.items()
                if job_id in jobs
            }
        return buckets

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, state: ClusterState, now: float = 0.0) -> SchedulingDecision:
        """Run one sharded scheduling iteration."""
        if self._state_id != id(state):
            self._bind(state)
        self._round_index += 1
        round_id = self._round_index
        self._route_dirty(state)
        buckets = self._bucket_tasks(state)

        # Graph maintenance: every active cell's network, in cell order.
        graph_seconds = 0.0
        prepared: List[Tuple[int, FlowNetwork, Optional[ChangeBatch]]] = []
        for cell in range(self.num_cells):
            bucket = buckets[cell]
            if not bucket and not self._cell_had_tasks[cell]:
                continue  # an idle cell's tracker just accumulates marks
            view = self._views[cell]
            view.set_round_tasks(bucket)
            manager = self._managers[cell]
            network = manager.update(view, now)
            graph_seconds += manager.last_update_stats.seconds
            self._cell_had_tasks[cell] = bool(bucket)
            if manager.task_nodes:
                prepared.append((cell, network, manager.last_changes))

        if not prepared:
            decision = SchedulingDecision(graph_update_seconds=graph_seconds)
            decision.solver_result = self._merged_result([], 0.0)
            self.statistics.record(decision)
            return decision

        wall_start = time.perf_counter()
        if self.workers:
            cell_results = self._solve_cells_workers(round_id, prepared)
        else:
            cell_results = self._solve_cells_inline(prepared)
        round_wall = time.perf_counter() - wall_start

        # Merge per-cell outcomes into one decision.
        decision = SchedulingDecision()
        straggler_cell, straggler_seconds = -1, 0.0
        results: List[SolverResult] = []
        for cell, result, runtime in cell_results:
            manager = self._managers[cell]
            if result is None:
                # The cell's round died at its deadline: previous
                # placements stand, its pending tasks wait one round.
                decision.degraded = True
                decision.degraded_reason = "round_deadline"
                for task_id in manager.task_nodes:
                    task = state.tasks.get(task_id)
                    if task is not None and not task.is_running:
                        decision.unscheduled.append(task_id)
            else:
                results.append(result)
                network = self._managers[cell].network
                assignments = extract_placements(
                    network,
                    manager.task_nodes,
                    manager.machine_nodes,
                    manager.sink_node,
                )
                self._diff_cell(state, manager, assignments, decision)
                decision.total_cost += result.total_cost
                if not result.optimal:
                    decision.degraded = True
                    decision.degraded_reason = (
                        decision.degraded_reason or "epsilon_truncated"
                    )
            if runtime >= straggler_seconds:
                straggler_cell, straggler_seconds = cell, runtime

        if self.workers:
            # The cells really ran concurrently: the measured ship+gather
            # wall clock is the round's placement latency.
            algorithm_runtime = round_wall
        else:
            # Inline cells ran back to back; charge the slowest cell, the
            # effective latency of the concurrent deployment (same modeling
            # convention as the sequential dual executor's race).
            algorithm_runtime = straggler_seconds
        decision.algorithm_runtime = algorithm_runtime
        decision.graph_update_seconds = graph_seconds

        migrations = 0
        if self.balancer is not None:
            migrations = self._apply_rebalance(state, decision)

        merged = self._merged_result(results, algorithm_runtime)
        merged.statistics.cells_solved = len(cell_results)
        merged.statistics.straggler_cell = straggler_cell
        merged.statistics.straggler_seconds = straggler_seconds
        merged.statistics.cross_cell_migrations = migrations
        merged.statistics.graph_update_seconds = graph_seconds
        if decision.degraded:
            merged.statistics.degraded_round = 1
        if straggler_cell >= 0:
            self.straggler_rounds[straggler_cell] = (
                self.straggler_rounds.get(straggler_cell, 0) + 1
            )
        decision.solver_result = merged
        self.statistics.record(decision)
        return decision

    def _solve_cells_inline(
        self, prepared: List[Tuple[int, FlowNetwork, Optional[ChangeBatch]]]
    ) -> List[Tuple[int, Optional[SolverResult], float]]:
        """Solve every cell in-process, in cell order (deterministic)."""
        outcomes: List[Tuple[int, Optional[SolverResult], float]] = []
        for cell, network, changes in prepared:
            solver = self._solvers[cell]
            start = time.perf_counter()
            try:
                if changes is not None and getattr(
                    solver, "accepts_change_batches", False
                ):
                    result = solver.solve(network, changes=changes)
                else:
                    result = solver.solve(network)
            except RoundDeadlineExceeded:
                outcomes.append((cell, None, time.perf_counter() - start))
                continue
            runtime = result.runtime_seconds or (time.perf_counter() - start)
            outcomes.append((cell, result, runtime))
        return outcomes

    def _solve_cells_workers(
        self,
        round_id: int,
        prepared: List[Tuple[int, FlowNetwork, Optional[ChangeBatch]]],
    ) -> List[Tuple[int, Optional[SolverResult], float]]:
        """Ship every cell's round, then gather: wall ~ the slowest cell."""
        chaos = self.chaos
        chaos_target = (self._round_index - 1) % self.num_cells
        shipped: List[Tuple[int, FlowNetwork, Optional[ChangeBatch], bool]] = []
        for cell, network, changes in prepared:
            client = self._clients[cell]
            client.record_batch(changes)
            cell_chaos = chaos if (chaos is not None and cell == chaos_target) else None
            ok = client.ship(
                round_id,
                network,
                changes,
                chaos=cell_chaos,
                chaos_round=self._round_index - 1,
            )
            shipped.append((cell, network, changes, ok))

        timeout = self.round_deadline_seconds or GATHER_TIMEOUT_SECONDS
        deadline = time.monotonic() + timeout
        outcomes: List[Tuple[int, Optional[SolverResult], float]] = []
        for cell, network, changes, ok in shipped:
            payload = None
            if ok:
                remaining = max(deadline - time.monotonic(), 0.01)
                payload = self._clients[cell].gather(round_id, remaining)
            if payload is None:
                # Dead, erroring, or slow worker: the parent-side solver
                # serves this cell's round so only this cell degrades to
                # fallback latency -- never to a lost round.
                self._clients[cell].fallback_rounds += 1
                inline = self._solve_cells_inline([(cell, network, changes)])
                outcomes.extend(inline)
                continue
            network.set_flows(payload["flows"])
            result = SolverResult(
                algorithm=IncrementalCostScalingSolver.name,
                total_cost=payload["total_cost"],
                flows=payload["flows"],
                potentials=payload["potentials"],
                runtime_seconds=payload["runtime_seconds"],
                statistics=SolverStatistics(
                    iterations=payload["iterations"],
                    pushes=payload["pushes"],
                    relabels=payload["relabels"],
                    epsilon_phases=payload["epsilon_phases"],
                    arcs_patched=payload["arcs_patched"],
                    nodes_touched=payload["nodes_touched"],
                    price_refine_seconds=payload["price_refine_seconds"],
                    price_refine_passes=payload["price_refine_passes"],
                ),
                optimal=payload.get("optimal", True),
            )
            outcomes.append((cell, result, payload["runtime_seconds"]))
        return outcomes

    def _diff_cell(
        self,
        state: ClusterState,
        manager: GraphManager,
        assignments: Dict[int, int],
        decision: SchedulingDecision,
    ) -> None:
        """Fold one cell's flow assignments into the merged decision."""
        for task_id in manager.task_nodes:
            task = state.tasks.get(task_id)
            if task is None:
                continue
            assigned_machine = assignments.get(task_id)
            if task.is_running:
                if assigned_machine is None:
                    if self.allow_migrations:
                        decision.preemptions.append(task_id)
                elif assigned_machine != task.machine_id:
                    if self.allow_migrations:
                        decision.migrations[task_id] = assigned_machine
            else:
                if assigned_machine is None:
                    decision.unscheduled.append(task_id)
                else:
                    decision.placements[task_id] = assigned_machine

    def _apply_rebalance(self, state: ClusterState, decision: SchedulingDecision) -> int:
        """Run the balancer; re-homes are ordinary dirty-set mutations."""
        moves = self.balancer.plan(state, decision, self._home_cell)
        tasks = state.tasks
        for task_id, source, target in moves:
            self._task_home[task_id] = target
            task = tasks.get(task_id)
            self._views[source].dirty.mark_task(task_id)
            self._views[target].dirty.mark_task(task_id)
            if task is not None:
                self._job_cells.setdefault(task.job_id, set()).add(target)
                self._views[source].dirty.mark_job(task.job_id)
                self._views[target].dirty.mark_job(task.job_id)
        return len(moves)

    def _merged_result(
        self, results: List[SolverResult], runtime: float
    ) -> SolverResult:
        """Combine per-cell solver results into the round's merged result."""
        stats = SolverStatistics()
        total_cost = 0
        optimal = True
        for result in results:
            stats = stats.merge(result.statistics)
            total_cost += result.total_cost
            optimal = optimal and result.optimal
        return SolverResult(
            algorithm=f"sharded[{self.num_cells}]",
            total_cost=total_cost,
            flows={},
            potentials={},
            runtime_seconds=runtime,
            statistics=stats,
            optimal=optimal,
        )

    # ------------------------------------------------------------------ #
    # Application and lifecycle
    # ------------------------------------------------------------------ #
    def apply(self, state: ClusterState, decision: SchedulingDecision, now: float) -> None:
        """Apply a merged decision to the shared cluster state."""
        for task_id in decision.preemptions:
            state.preempt_task(task_id, now)
        for task_id, machine_id in decision.migrations.items():
            state.migrate_task(task_id, machine_id, now)
        for task_id, machine_id in decision.placements.items():
            state.place_task(task_id, machine_id, now)

    def schedule_and_apply(self, state: ClusterState, now: float = 0.0) -> SchedulingDecision:
        """Convenience wrapper: schedule and immediately apply the decision."""
        decision = self.schedule(state, now)
        self.apply(state, decision, now)
        return decision

    def cell_transport(self) -> List[Dict[str, int]]:
        """Per-cell transport/health counters (worker mode observability).

        One dict per cell: ``snapshot_ships`` / ``delta_ships`` (the
        per-cell delta-ship ratio is ``delta / (delta + snapshot)``),
        ``fallback_rounds`` (rounds the parent served after a worker
        failure or timeout), and ``respawns``.
        """
        return [
            {
                "snapshot_ships": client.snapshot_ships,
                "delta_ships": client.delta_ships,
                "fallback_rounds": client.fallback_rounds,
                "respawns": max(client.respawns - 1, 0) if client.respawns else 0,
            }
            for client in self._clients
        ]

    def close_cells(self) -> None:
        """Release per-cell resources (workers, solver state)."""
        for client in self._clients:
            client.close()
        for solver in self._solvers:
            close = getattr(solver, "close", None)
            if callable(close):
                close()
        self._clients = []
        self._solvers = []

    def close(self) -> None:
        """Shut down every cell's worker and solver (idempotent)."""
        self.close_cells()
