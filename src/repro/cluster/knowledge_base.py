"""Knowledge base: historical task profiling statistics.

Firmament's coordinator keeps a knowledge base of past task behaviour --
runtimes, resource usage -- keyed by *task equivalence class*, so scheduling
policies can price arcs using expected runtimes (e.g. a shortest-job-first
cost model) or expected usage instead of raw requests.  The paper relies on
this machinery implicitly: the Google trace replay estimates batch input
sizes from known runtimes (Section 7.1), and the network-aware policy uses
observed bandwidth rather than requested bandwidth (Section 3.3).

The implementation keeps bounded per-class sample reservoirs plus running
aggregates, so memory stays constant regardless of how many tasks complete.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.cluster.resources import ResourceVector, equivalence_class
from repro.cluster.task import Task


@dataclass
class RuntimeStatistics:
    """Aggregated runtime observations for one task equivalence class.

    Attributes:
        count: Number of completed tasks observed.
        total_runtime: Sum of observed runtimes in seconds.
        min_runtime: Shortest observed runtime.
        max_runtime: Longest observed runtime.
        samples: Bounded reservoir of recent runtimes used for percentiles.
    """

    count: int = 0
    total_runtime: float = 0.0
    min_runtime: float = float("inf")
    max_runtime: float = 0.0
    samples: Deque[float] = field(default_factory=lambda: deque(maxlen=256))

    def record(self, runtime: float) -> None:
        """Account one completed task's runtime."""
        if runtime < 0:
            raise ValueError("task runtime must be non-negative")
        self.count += 1
        self.total_runtime += runtime
        self.min_runtime = min(self.min_runtime, runtime)
        self.max_runtime = max(self.max_runtime, runtime)
        self.samples.append(runtime)

    @property
    def mean(self) -> float:
        """Mean observed runtime (zero when nothing has been observed)."""
        if self.count == 0:
            return 0.0
        return self.total_runtime / self.count

    def percentile(self, fraction: float) -> float:
        """Return an empirical percentile over the recent sample reservoir.

        Args:
            fraction: Percentile as a fraction in ``[0, 1]``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]


@dataclass
class UsageStatistics:
    """Exponentially weighted resource-usage observations for one class."""

    #: Smoothing factor of the exponential moving average.
    alpha: float = 0.2
    count: int = 0
    average: ResourceVector = field(default_factory=ResourceVector.zero)

    def record(self, usage: ResourceVector) -> None:
        """Fold one usage observation into the moving average."""
        self.count += 1
        if self.count == 1:
            self.average = usage
            return
        self.average = ResourceVector(
            cpu_cores=self._blend(self.average.cpu_cores, usage.cpu_cores),
            ram_gb=self._blend(self.average.ram_gb, usage.ram_gb),
            network_mbps=self._blend(self.average.network_mbps, usage.network_mbps),
            disk_gb=self._blend(self.average.disk_gb, usage.disk_gb),
        )

    def _blend(self, old: float, new: float) -> float:
        return (1.0 - self.alpha) * old + self.alpha * new


class KnowledgeBase:
    """Historical statistics about task behaviour, keyed by equivalence class.

    The knowledge base answers the two questions cost models ask:

    * "how long will this task probably run?"
      (:meth:`estimate_runtime`) and
    * "how much of its request will it actually use?"
      (:meth:`estimate_usage`).

    Estimates fall back to the job-level class, then to a global default,
    when a class has not been observed yet, so policies can always obtain a
    number.
    """

    def __init__(
        self,
        default_runtime: float = 60.0,
        cpu_granularity: float = 1.0,
        ram_granularity_gb: float = 1.0,
    ) -> None:
        """Create an empty knowledge base.

        Args:
            default_runtime: Runtime estimate (seconds) returned before any
                observation exists for a class.
            cpu_granularity: CPU bucket width used to form equivalence classes.
            ram_granularity_gb: RAM bucket width used to form equivalence classes.
        """
        if default_runtime <= 0:
            raise ValueError("default runtime estimate must be positive")
        self.default_runtime = default_runtime
        self.cpu_granularity = cpu_granularity
        self.ram_granularity_gb = ram_granularity_gb
        self._runtimes: Dict[Hashable, RuntimeStatistics] = {}
        self._job_runtimes: Dict[int, RuntimeStatistics] = {}
        self._usage: Dict[Hashable, UsageStatistics] = {}

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def class_of(self, task: Task) -> Hashable:
        """Return the resource-request equivalence class of a task."""
        return equivalence_class(
            task,
            cpu_granularity=self.cpu_granularity,
            ram_granularity_gb=self.ram_granularity_gb,
        )

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_completion(self, task: Task, runtime: Optional[float] = None) -> None:
        """Record a completed task's observed runtime.

        Args:
            task: The completed task.
            runtime: Observed runtime in seconds; derived from the task's
                start and finish times when omitted.
        """
        if runtime is None:
            if task.start_time is None or task.finish_time is None:
                raise ValueError(
                    "task has no start/finish times; pass the runtime explicitly"
                )
            runtime = task.finish_time - task.start_time
        key = self.class_of(task)
        self._runtimes.setdefault(key, RuntimeStatistics()).record(runtime)
        self._job_runtimes.setdefault(task.job_id, RuntimeStatistics()).record(runtime)

    def record_usage(self, task: Task, usage: ResourceVector) -> None:
        """Record one observation of a task's actual resource usage."""
        key = self.class_of(task)
        self._usage.setdefault(key, UsageStatistics()).record(usage)

    def observe_completed_tasks(self, tasks: Iterable[Task]) -> int:
        """Record every finished task in ``tasks`` that has timing data.

        Returns the number of tasks recorded.  Convenience for simulators
        that hand the knowledge base a batch of completions per round.
        """
        recorded = 0
        for task in tasks:
            if task.is_finished and task.start_time is not None and task.finish_time is not None:
                self.record_completion(task)
                recorded += 1
        return recorded

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate_runtime(self, task: Task, percentile: Optional[float] = None) -> float:
        """Estimate how long a task will run.

        Preference order: statistics of the task's resource equivalence
        class, then statistics of its job, then the global default.

        Args:
            task: The task to estimate.
            percentile: When given, return that percentile of the class's
                recent samples instead of the mean (e.g. 0.9 for a
                conservative estimate).
        """
        stats = self._runtimes.get(self.class_of(task))
        if stats is None or stats.count == 0:
            stats = self._job_runtimes.get(task.job_id)
        if stats is None or stats.count == 0:
            return self.default_runtime
        if percentile is not None:
            return stats.percentile(percentile)
        return stats.mean

    def estimate_usage(self, task: Task) -> ResourceVector:
        """Estimate a task's actual resource usage.

        Falls back to the task's request when its class has no observations,
        which is the conservative choice (requests over-estimate usage).
        """
        stats = self._usage.get(self.class_of(task))
        if stats is None or stats.count == 0:
            return ResourceVector.for_task(task)
        return stats.average

    def runtime_statistics(self, task: Task) -> Optional[RuntimeStatistics]:
        """Return the raw runtime statistics for a task's class, if any."""
        return self._runtimes.get(self.class_of(task))

    @property
    def num_classes(self) -> int:
        """Number of equivalence classes with at least one runtime sample."""
        return len(self._runtimes)

    @property
    def num_observations(self) -> int:
        """Total number of recorded task completions."""
        return sum(stats.count for stats in self._runtimes.values())
