"""Cluster-manager substrate: machines, racks, jobs, tasks, events, monitoring.

This package models the part of a cluster manager (Borg, Kubernetes, Mesos,
YARN) that the scheduler interacts with: the physical topology (racks and
machines with slots and resources), the workload (jobs made of tasks with
resource requests, durations, and data locality), the mutable cluster state
(which task runs where), and the monitoring data (per-machine load and
network bandwidth use) that scheduling policies consume.
"""

from repro.cluster.machine import Machine, MachineState, Rack
from repro.cluster.task import Job, JobType, Task, TaskState
from repro.cluster.topology import ClusterTopology, build_topology
from repro.cluster.state import ClusterState, Placement
from repro.cluster.resources import (
    ResourceVector,
    equivalence_class,
    task_fits_on_machine,
)
from repro.cluster.knowledge_base import (
    KnowledgeBase,
    RuntimeStatistics,
    UsageStatistics,
)
from repro.cluster.events import (
    ClusterEvent,
    DirtySnapshot,
    DirtyTracker,
    MachineAdded,
    MachineFailed,
    TaskCompleted,
    TaskSubmitted,
)
from repro.cluster.monitor import MachineStatistics, ResourceMonitor

__all__ = [
    "Machine",
    "MachineState",
    "Rack",
    "Job",
    "JobType",
    "Task",
    "TaskState",
    "ClusterTopology",
    "build_topology",
    "ClusterState",
    "Placement",
    "ClusterEvent",
    "DirtySnapshot",
    "DirtyTracker",
    "MachineAdded",
    "MachineFailed",
    "TaskCompleted",
    "TaskSubmitted",
    "MachineStatistics",
    "ResourceMonitor",
    "ResourceVector",
    "equivalence_class",
    "task_fits_on_machine",
    "KnowledgeBase",
    "RuntimeStatistics",
    "UsageStatistics",
]
