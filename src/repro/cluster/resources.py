"""Multi-dimensional resource vectors and fit checking.

The paper's evaluation uses slot-based assignment to compare fairly with
Quincy (Section 7.1), but Firmament itself supports multi-dimensional
feasibility checking in the style of Borg: a task fits on a machine only if
its CPU, RAM, and network-bandwidth requests fit into the machine's spare
capacity in *every* dimension.  This module provides the resource algebra
that the multi-dimensional scheduling policy
(:class:`~repro.core.policies.cpu_memory.CpuMemoryPolicy`) and the resource
monitor build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from repro.cluster.machine import Machine
from repro.cluster.task import Task


@dataclass(frozen=True)
class ResourceVector:
    """An amount of resources in every scheduling dimension.

    Attributes:
        cpu_cores: CPU cores (fractional values allowed).
        ram_gb: Memory in gigabytes.
        network_mbps: Network bandwidth in Mb/s.
        disk_gb: Local disk space in gigabytes.
    """

    cpu_cores: float = 0.0
    ram_gb: float = 0.0
    network_mbps: float = 0.0
    disk_gb: float = 0.0

    #: Names of the dimensions, in a fixed order used by :meth:`as_tuple`.
    DIMENSIONS: Tuple[str, ...] = ("cpu_cores", "ram_gb", "network_mbps", "disk_gb")

    def __post_init__(self) -> None:
        for dimension in self.DIMENSIONS:
            if getattr(self, dimension) < 0:
                raise ValueError(f"resource dimension {dimension} must be non-negative")

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpu_cores=self.cpu_cores + other.cpu_cores,
            ram_gb=self.ram_gb + other.ram_gb,
            network_mbps=self.network_mbps + other.network_mbps,
            disk_gb=self.disk_gb + other.disk_gb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Subtract, clamping every dimension at zero.

        Spare capacity can never be negative: observed usage occasionally
        overshoots the nominal machine capacity (e.g. bursty network use),
        and the policies must treat that as "no spare capacity" rather than
        propagate negative numbers into costs.
        """
        return ResourceVector(
            cpu_cores=max(0.0, self.cpu_cores - other.cpu_cores),
            ram_gb=max(0.0, self.ram_gb - other.ram_gb),
            network_mbps=max(0.0, self.network_mbps - other.network_mbps),
            disk_gb=max(0.0, self.disk_gb - other.disk_gb),
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """Return the vector with every dimension multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scaling factor must be non-negative")
        return ResourceVector(
            cpu_cores=self.cpu_cores * factor,
            ram_gb=self.ram_gb * factor,
            network_mbps=self.network_mbps * factor,
            disk_gb=self.disk_gb * factor,
        )

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def fits_into(self, capacity: "ResourceVector") -> bool:
        """Return whether this request fits into ``capacity`` in every dimension."""
        return (
            self.cpu_cores <= capacity.cpu_cores
            and self.ram_gb <= capacity.ram_gb
            and self.network_mbps <= capacity.network_mbps
            and self.disk_gb <= capacity.disk_gb
        )

    def dominant_share(self, capacity: "ResourceVector") -> float:
        """Return the largest fraction of ``capacity`` any dimension uses.

        This is the dominant resource share of DRF; the multi-dimensional
        policy uses it as a single scalar "how big is this task relative to
        a machine" measure when pricing arcs.
        Dimensions with zero capacity are skipped (they cannot be shared).
        """
        shares = []
        for dimension in self.DIMENSIONS:
            cap = getattr(capacity, dimension)
            if cap > 0:
                shares.append(getattr(self, dimension) / cap)
        return max(shares) if shares else 0.0

    def is_zero(self) -> bool:
        """Return whether every dimension is zero."""
        return all(getattr(self, d) == 0 for d in self.DIMENSIONS)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return the dimensions as a tuple in :data:`DIMENSIONS` order."""
        return (self.cpu_cores, self.ram_gb, self.network_mbps, self.disk_gb)

    def as_dict(self) -> Mapping[str, float]:
        """Return the dimensions as a dictionary."""
        return {d: getattr(self, d) for d in self.DIMENSIONS}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zero(cls) -> "ResourceVector":
        """Return the all-zero resource vector."""
        return cls()

    @classmethod
    def for_task(cls, task: Task) -> "ResourceVector":
        """Return the resource request of a task."""
        return cls(
            cpu_cores=task.cpu_request,
            ram_gb=task.ram_request_gb,
            network_mbps=float(task.network_request_mbps),
        )

    @classmethod
    def for_machine(cls, machine: Machine) -> "ResourceVector":
        """Return the nominal capacity of a machine."""
        return cls(
            cpu_cores=float(machine.cpu_cores),
            ram_gb=float(machine.ram_gb),
            network_mbps=float(machine.network_bandwidth_mbps),
        )

    @classmethod
    def sum(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Return the element-wise sum of the given vectors."""
        total = cls.zero()
        for vector in vectors:
            total = total + vector
        return total


def task_fits_on_machine(
    task: Task, machine: Machine, in_use: ResourceVector
) -> bool:
    """Return whether a task's multi-dimensional request fits on a machine.

    Args:
        task: The task whose request is checked.
        machine: The candidate machine.
        in_use: Resources already committed to tasks running on the machine.

    Returns:
        True when the remaining capacity covers the request in every
        dimension; this is the Borg-style feasibility check the
        multi-dimensional policy applies before adding an arc.
    """
    spare = ResourceVector.for_machine(machine) - in_use
    return ResourceVector.for_task(task).fits_into(spare)


def equivalence_class(task: Task, cpu_granularity: float = 1.0, ram_granularity_gb: float = 1.0) -> Tuple[int, int]:
    """Return a coarse resource-request equivalence class for a task.

    Firmament groups tasks with similar resource needs behind shared request
    aggregators so that the flow network needs one aggregator (and one set of
    aggregator-to-machine arcs) per class rather than per task (Section 3.2).
    Rounding the request up to a granularity keeps the number of classes
    small and ensures that everything admitted through the class's arcs
    actually fits.

    Args:
        task: The task to classify.
        cpu_granularity: Width of the CPU buckets, in cores.
        ram_granularity_gb: Width of the RAM buckets, in GB.

    Returns:
        A hashable ``(cpu_bucket, ram_bucket)`` pair.
    """
    if cpu_granularity <= 0 or ram_granularity_gb <= 0:
        raise ValueError("equivalence-class granularities must be positive")
    cpu_bucket = int(-(-task.cpu_request // cpu_granularity))
    ram_bucket = int(-(-task.ram_request_gb // ram_granularity_gb))
    return (cpu_bucket, ram_bucket)
