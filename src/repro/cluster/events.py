"""Cluster events consumed by the simulator and the scheduler.

Every event carries the (virtual) time at which it occurs.  The simulator
keeps events in a priority queue ordered by time; the scheduler translates
them into flow-network graph changes (Section 5.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.task import Job, Task


@dataclass(order=True)
class ClusterEvent:
    """Base class for all cluster events, ordered by time."""

    time: float
    sequence: int = field(default=0, compare=True)

    def kind(self) -> str:
        """Return a short name for the event type (used in logs/metrics)."""
        return type(self).__name__


@dataclass(order=True)
class TaskSubmitted(ClusterEvent):
    """A job (and all its tasks) was submitted to the cluster manager."""

    job: Optional[Job] = field(default=None, compare=False)


@dataclass(order=True)
class TaskCompleted(ClusterEvent):
    """A running task finished."""

    task_id: int = field(default=-1, compare=False)


@dataclass(order=True)
class MachineFailed(ClusterEvent):
    """A machine failed; its tasks must be rescheduled."""

    machine_id: int = field(default=-1, compare=False)


@dataclass(order=True)
class MachineAdded(ClusterEvent):
    """A machine (re)joined the cluster."""

    machine_id: int = field(default=-1, compare=False)
    num_slots: int = field(default=4, compare=False)
    rack_id: int = field(default=0, compare=False)


@dataclass(order=True)
class SchedulerWakeup(ClusterEvent):
    """The scheduler should run (used when no other event triggers it)."""
