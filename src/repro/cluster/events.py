"""Cluster events consumed by the simulator and the scheduler.

Every event carries the (virtual) time at which it occurs.  The simulator
keeps events in a priority queue ordered by time; the scheduler translates
them into flow-network graph changes (Section 5.2 of the paper).

The module also hosts the **dirty-set tracker** that makes graph
construction itself event-driven: every :class:`~repro.cluster.state.ClusterState`
mutation (task submitted/placed/completed/evicted, machine
added/removed/failed/recovered, load-statistics refresh) marks the touched
entities dirty, and :meth:`repro.core.graph_manager.GraphManager.update`
consumes the accumulated :class:`DirtySnapshot` to re-derive arcs for the
dirty entities only instead of rebuilding the whole flow network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.cluster.task import Job, Task


@dataclass
class DirtySnapshot:
    """The typed dirty sets accumulated between two scheduling rounds.

    Attributes:
        epoch: Tracker epoch this snapshot closed (monotonic; consecutive
            drains return consecutive epochs, which is how a consumer
            detects that another consumer drained events it never saw).
        tasks: Tasks whose scheduling-relevant state changed (submitted,
            placed, migrated, preempted, completed, evicted).
        jobs: Jobs whose task membership changed (affects the capacity of
            the job's unscheduled-aggregator arc).
        machines_availability: Machines whose membership in the schedulable
            set changed (added, removed, failed, recovered) -- these can
            invalidate arcs of *other* entities (preference arcs, rack
            aggregation capacities).
        machines_load: Machines whose load changed (task placed/finished
            there, monitoring refresh) without an availability change.
        full: True when something happened that cannot be attributed to
            individual entities; the consumer must rebuild from scratch.
    """

    epoch: int = 0
    tasks: Set[int] = field(default_factory=set)
    jobs: Set[int] = field(default_factory=set)
    machines_availability: Set[int] = field(default_factory=set)
    machines_load: Set[int] = field(default_factory=set)
    full: bool = False

    @property
    def machines(self) -> Set[int]:
        """All dirty machines, regardless of why they are dirty."""
        return self.machines_availability | self.machines_load

    def __bool__(self) -> bool:
        return bool(
            self.full
            or self.tasks
            or self.jobs
            or self.machines_availability
            or self.machines_load
        )


class DirtyTracker:
    """Accumulates typed dirty events between scheduling rounds.

    :class:`~repro.cluster.state.ClusterState` owns one tracker and feeds it
    from every mutator.  A consumer calls :meth:`drain` once per round; the
    returned snapshot's epoch chain lets it verify no other consumer drained
    events in between (in which case its derived state is stale and it must
    fall back to a full rebuild).
    """

    #: Once this many entities are pending, the tracker collapses to a
    #: ``full`` snapshot: a consumer would rebuild rather than replay that
    #: much churn anyway, and -- crucially -- a state whose tracker is never
    #: drained (baseline schedulers, ``incremental=False`` managers) stays
    #: bounded instead of accumulating every entity id ever touched.
    MAX_PENDING = 65_536

    def __init__(self) -> None:
        self.epoch = 0
        self._pending = DirtySnapshot()

    # ------------------------------------------------------------------ #
    # Marking (called by ClusterState mutators and the resource monitor)
    # ------------------------------------------------------------------ #
    def _overflowed(self) -> bool:
        pending = self._pending
        if pending.full:
            return True
        if (
            len(pending.tasks) + len(pending.jobs) + len(pending.machines_load)
            >= self.MAX_PENDING
        ):
            self.mark_all()
            return True
        return False

    def mark_task(self, task_id: int) -> None:
        """Mark a task's scheduling state as changed."""
        if not self._overflowed():
            self._pending.tasks.add(task_id)

    def mark_job(self, job_id: int) -> None:
        """Mark a job's task membership as changed."""
        if not self._overflowed():
            self._pending.jobs.add(job_id)

    def mark_machine_availability(self, machine_id: int) -> None:
        """Mark a machine's schedulability as changed (fail/recover/add)."""
        if not self._overflowed():
            self._pending.machines_availability.add(machine_id)
            self._pending.machines_load.add(machine_id)

    def mark_machine_load(self, machine_id: int) -> None:
        """Mark a machine's load as changed (placement, completion, stats)."""
        if not self._overflowed():
            self._pending.machines_load.add(machine_id)

    def mark_all(self) -> None:
        """Request a full rebuild (untracked or wholesale mutation).

        Also clears the per-entity sets: a full snapshot supersedes them,
        so an undrained tracker stays O(1) once it has overflowed.
        """
        pending = self._pending
        pending.full = True
        pending.tasks.clear()
        pending.jobs.clear()
        pending.machines_availability.clear()
        pending.machines_load.clear()

    # ------------------------------------------------------------------ #
    # Consumption
    # ------------------------------------------------------------------ #
    def drain(self) -> DirtySnapshot:
        """Return and clear the accumulated dirty sets.

        Each drain advances the epoch by one; a consumer that remembers the
        epoch of its previous drain can detect missed events by checking the
        next snapshot's epoch is exactly one greater.
        """
        self.epoch += 1
        snapshot = self._pending
        snapshot.epoch = self.epoch
        self._pending = DirtySnapshot()
        return snapshot


@dataclass(order=True)
class ClusterEvent:
    """Base class for all cluster events, ordered by time."""

    time: float
    sequence: int = field(default=0, compare=True)

    def kind(self) -> str:
        """Return a short name for the event type (used in logs/metrics)."""
        return type(self).__name__


@dataclass(order=True)
class TaskSubmitted(ClusterEvent):
    """A job (and all its tasks) was submitted to the cluster manager."""

    job: Optional[Job] = field(default=None, compare=False)


@dataclass(order=True)
class TaskCompleted(ClusterEvent):
    """A running task finished."""

    task_id: int = field(default=-1, compare=False)


@dataclass(order=True)
class MachineFailed(ClusterEvent):
    """A machine failed; its tasks must be rescheduled."""

    machine_id: int = field(default=-1, compare=False)


@dataclass(order=True)
class MachineAdded(ClusterEvent):
    """A machine (re)joined the cluster."""

    machine_id: int = field(default=-1, compare=False)
    num_slots: int = field(default=4, compare=False)
    rack_id: int = field(default=0, compare=False)


@dataclass(order=True)
class SchedulerWakeup(ClusterEvent):
    """The scheduler should run (used when no other event triggers it)."""
