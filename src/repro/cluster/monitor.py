"""Monitoring data: per-machine load and network bandwidth observations.

Firmament's scheduling policies consume monitoring data in addition to the
static cluster topology (Figure 4): the network-aware policy, in particular,
reacts to the *observed* bandwidth use of machines, not only to reservations.
The monitor is deliberately simple -- a per-machine statistics record the
simulator or testbed model updates -- but it gives policies the same
interface a real cluster manager's monitoring pipeline would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.cluster.topology import ClusterTopology


@dataclass
class MachineStatistics:
    """Observed resource usage of one machine.

    Attributes:
        machine_id: The machine these statistics describe.
        cpu_used: CPU cores in use.
        ram_used_gb: RAM in use (GB).
        network_used_mbps: Observed NIC bandwidth use (Mb/s) from traffic the
            scheduler did not reserve (e.g., background services).
        last_update: Time of the last update.
    """

    machine_id: int
    cpu_used: float = 0.0
    ram_used_gb: float = 0.0
    network_used_mbps: int = 0
    last_update: float = 0.0


class ResourceMonitor:
    """Collects per-machine statistics for the scheduling policies."""

    def __init__(self, topology: ClusterTopology) -> None:
        self._topology = topology
        self._stats: Dict[int, MachineStatistics] = {
            machine_id: MachineStatistics(machine_id=machine_id)
            for machine_id in topology.machines
        }
        #: Optional callback invoked with the machine id whenever an
        #: observation is recorded; the cluster state hooks this into its
        #: dirty tracker so load refreshes can drive incremental graph
        #: updates.
        self.on_update = None

    def _notify(self, machine_id: int) -> None:
        if self.on_update is not None:
            self.on_update(machine_id)

    def statistics(self, machine_id: int) -> MachineStatistics:
        """Return (creating if necessary) the statistics of a machine."""
        if machine_id not in self._stats:
            self._stats[machine_id] = MachineStatistics(machine_id=machine_id)
        return self._stats[machine_id]

    def record_network_use(self, machine_id: int, used_mbps: int, now: float = 0.0) -> None:
        """Record observed network bandwidth use on a machine."""
        stats = self.statistics(machine_id)
        stats.network_used_mbps = max(0, used_mbps)
        stats.last_update = now
        self._notify(machine_id)

    def record_cpu_use(self, machine_id: int, cpu_used: float, now: float = 0.0) -> None:
        """Record observed CPU use on a machine."""
        stats = self.statistics(machine_id)
        stats.cpu_used = max(0.0, cpu_used)
        stats.last_update = now
        self._notify(machine_id)

    def record_ram_use(self, machine_id: int, ram_used_gb: float, now: float = 0.0) -> None:
        """Record observed RAM use on a machine."""
        stats = self.statistics(machine_id)
        stats.ram_used_gb = max(0.0, ram_used_gb)
        stats.last_update = now
        self._notify(machine_id)

    def all_statistics(self) -> Iterable[MachineStatistics]:
        """Iterate over the statistics of every known machine."""
        return self._stats.values()

    def reset(self) -> None:
        """Clear all observations (used between simulation runs)."""
        for stats in self._stats.values():
            stats.cpu_used = 0.0
            stats.ram_used_gb = 0.0
            stats.network_used_mbps = 0
            stats.last_update = 0.0
            self._notify(stats.machine_id)
