"""Machines and racks.

The paper's evaluation uses slot-based assignment (to compare fairly with
Quincy), so the primary capacity unit here is the *slot*; machines also
carry multi-dimensional resources (CPU, RAM, network bandwidth) used by the
network-aware policy and the testbed experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Set


class MachineState(enum.Enum):
    """Availability of a machine."""

    HEALTHY = "healthy"
    FAILED = "failed"
    DRAINED = "drained"


@dataclass
class Machine:
    """A cluster machine.

    Attributes:
        machine_id: Unique integer identifier.
        rack_id: Identifier of the rack holding the machine.
        num_slots: Number of task slots (the paper's comparison unit).
        cpu_cores: CPU core count (informational; used by baselines' scoring).
        ram_gb: RAM in gigabytes.
        network_bandwidth_mbps: NIC capacity in Mb/s (10 Gbps links on the
            paper's testbed).
        state: Health state.
        name: Human-readable name.
    """

    machine_id: int
    rack_id: int
    num_slots: int = 4
    cpu_cores: int = 12
    ram_gb: int = 64
    network_bandwidth_mbps: int = 10_000
    state: MachineState = MachineState.HEALTHY
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"machine-{self.machine_id}"
        if self.num_slots <= 0:
            raise ValueError("a machine must have at least one slot")

    @property
    def is_available(self) -> bool:
        """Return whether the machine can accept tasks."""
        return self.state is MachineState.HEALTHY

    def fail(self) -> None:
        """Mark the machine as failed."""
        self.state = MachineState.FAILED

    def recover(self) -> None:
        """Mark the machine as healthy again."""
        self.state = MachineState.HEALTHY


@dataclass
class Rack:
    """A rack grouping machines that share a top-of-rack switch.

    Attributes:
        rack_id: Unique integer identifier.
        machine_ids: Machines in the rack.
        name: Human-readable name.
    """

    rack_id: int
    machine_ids: List[int] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"rack-{self.rack_id}"

    @property
    def size(self) -> int:
        """Number of machines in the rack."""
        return len(self.machine_ids)

    def add_machine(self, machine_id: int) -> None:
        """Register a machine as belonging to this rack."""
        if machine_id not in self.machine_ids:
            self.machine_ids.append(machine_id)

    def remove_machine(self, machine_id: int) -> None:
        """Remove a machine from the rack (e.g., decommissioning)."""
        if machine_id in self.machine_ids:
            self.machine_ids.remove(machine_id)
