"""Mutable cluster state: jobs, tasks, and the current task-to-machine map.

:class:`ClusterState` is the single source of truth the scheduler consumes
(Figure 4 of the paper: "jobs and tasks", "cluster topology", "monitoring
data") and the object the simulator mutates as events occur.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.events import DirtyTracker
from repro.cluster.machine import Machine
from repro.cluster.monitor import ResourceMonitor
from repro.cluster.resources import ResourceVector
from repro.cluster.task import Job, Task, TaskState
from repro.cluster.topology import ClusterTopology


@dataclass
class Placement:
    """A task-to-machine assignment decided by a scheduler."""

    task_id: int
    machine_id: int


class ClusterState:
    """Jobs, tasks, topology, and the current placement of running tasks."""

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self.jobs: Dict[int, Job] = {}
        self.tasks: Dict[int, Task] = {}
        #: Live (non-terminated) tasks only.  ``tasks`` keeps the full
        #: history -- metrics and post-hoc analysis need completed tasks --
        #: but every per-round scan (pending / running / schedulable)
        #: iterates this index instead, so scan cost is bounded by the
        #: number of live tasks rather than growing with completed-task
        #: history over a long-running cluster's lifetime.
        self._live_tasks: Dict[int, Task] = {}
        #: Tasks currently awaiting placement (submitted or evicted).  The
        #: event-driven simulator consults "is anything pending?" after
        #: *every* event, so the answer must be O(1) rather than a scan of
        #: the live set; every mutator below keeps this index exact.
        self._pending_tasks: Dict[int, Task] = {}
        #: Typed dirty sets accumulated between scheduling rounds; every
        #: mutator below marks the entities it touches so the graph manager
        #: can update the flow network incrementally.
        self.dirty = DirtyTracker()
        self.monitor = ResourceMonitor(topology)
        # Load-statistics refreshes are graph-relevant for load-sensitive
        # policies, so they feed the dirty tracker too.
        self.monitor.on_update = self.dirty.mark_machine_load
        self._machine_tasks: Dict[int, set] = {
            machine_id: set() for machine_id in topology.machines
        }
        #: Machines that are available *and* have at least one free slot.
        #: Every mutator below that changes a machine's occupancy or
        #: availability refreshes its entry, so queue-based schedulers can
        #: enumerate feasible machines in O(|free machines|) instead of
        #: scanning the whole topology (the ROADMAP's 10k-machine headroom
        #: for the baselines).  A dict (insertion-ordered) used as a set.
        self._free_slot_index: Dict[int, None] = {
            machine_id: None
            for machine_id, machine in topology.machines.items()
            if machine.is_available and machine.num_slots > 0
        }

    def __eq__(self, other: object) -> bool:
        """Deep equality over everything the scheduler can observe.

        Compares the topology (machines with health state, racks, the
        membership version), the full job/task ledger, and every derived
        index (live/terminated split, pending index, per-machine task
        sets, free-slot index).  The dirty tracker and the monitor are
        deliberately excluded: both are process-local bookkeeping (drain
        epochs, observed load samples) that legitimately differs between
        an original and a crash-recovered state without the states being
        schedulably different.  Used by the snapshot round-trip tests and
        the recovery-equivalence harness.
        """
        if not isinstance(other, ClusterState):
            return NotImplemented
        return (
            self.topology.version == other.topology.version
            and self.topology.machines == other.topology.machines
            and self.topology.racks == other.topology.racks
            and self.jobs == other.jobs
            and self.tasks == other.tasks
            and self._machine_tasks == other._machine_tasks
            and set(self._pending_tasks) == set(other._pending_tasks)
            and set(self._live_tasks) == set(other._live_tasks)
            and set(self._free_slot_index) == set(other._free_slot_index)
        )

    __hash__ = object.__hash__

    def _refresh_free_slot_entry(self, machine_id: int) -> None:
        """Re-derive one machine's membership in the free-slot index."""
        machine = self.topology.machines.get(machine_id)
        if (
            machine is not None
            and machine.is_available
            and len(self._machine_tasks.get(machine_id, ())) < machine.num_slots
        ):
            self._free_slot_index[machine_id] = None
        else:
            self._free_slot_index.pop(machine_id, None)

    # ------------------------------------------------------------------ #
    # Workload management
    # ------------------------------------------------------------------ #
    def submit_job(self, job: Job) -> None:
        """Register a job and all of its tasks."""
        if job.job_id in self.jobs:
            raise ValueError(f"job {job.job_id} already submitted")
        self.jobs[job.job_id] = job
        for task in job.tasks:
            if task.task_id in self.tasks:
                raise ValueError(f"task {task.task_id} already submitted")
            self.tasks[task.task_id] = task
            if not task.is_finished:
                self._live_tasks[task.task_id] = task
            if task.is_pending:
                self._pending_tasks[task.task_id] = task
            self.dirty.mark_task(task.task_id)
        self.dirty.mark_job(job.job_id)

    def submit_task(self, task: Task) -> None:
        """Register a single task into an existing job."""
        job = self.jobs.get(task.job_id)
        if job is None:
            raise KeyError(f"job {task.job_id} does not exist")
        if task.task_id in self.tasks:
            raise ValueError(f"task {task.task_id} already submitted")
        job.add_task(task)
        self.tasks[task.task_id] = task
        if not task.is_finished:
            self._live_tasks[task.task_id] = task
        if task.is_pending:
            self._pending_tasks[task.task_id] = task
        self.dirty.mark_task(task.task_id)
        self.dirty.mark_job(task.job_id)

    def remove_job(self, job_id: int) -> None:
        """Remove a job and its tasks (all tasks must have terminated)."""
        job = self.jobs.pop(job_id)
        for task in job.tasks:
            if task.is_running:
                raise ValueError(f"cannot remove job {job_id}: task {task.task_id} running")
            self.tasks.pop(task.task_id, None)
            self._live_tasks.pop(task.task_id, None)
            self._pending_tasks.pop(task.task_id, None)
        self.dirty.mark_job(job_id)

    # ------------------------------------------------------------------ #
    # Placement management
    # ------------------------------------------------------------------ #
    def place_task(self, task_id: int, machine_id: int, now: float) -> None:
        """Place a pending task onto a machine and start it."""
        task = self.tasks[task_id]
        machine = self.topology.machine(machine_id)
        if not machine.is_available:
            raise ValueError(f"machine {machine_id} is not available")
        if len(self._machine_tasks[machine_id]) >= machine.num_slots:
            raise ValueError(f"machine {machine_id} has no free slots")
        if task.is_running:
            raise ValueError(f"task {task_id} is already running")
        task.state = TaskState.RUNNING
        task.machine_id = machine_id
        task.last_machine_id = machine_id
        if task.placement_time is None:
            task.placement_time = now
        task.start_time = now
        self._machine_tasks[machine_id].add(task_id)
        self._refresh_free_slot_entry(machine_id)
        self._pending_tasks.pop(task_id, None)
        self.dirty.mark_task(task_id)
        self.dirty.mark_machine_load(machine_id)

    def migrate_task(self, task_id: int, machine_id: int, now: float) -> None:
        """Move a running task to another machine (preempt + restart)."""
        task = self.tasks[task_id]
        if not task.is_running:
            raise ValueError(f"task {task_id} is not running")
        self._machine_tasks[task.machine_id].discard(task_id)
        self._refresh_free_slot_entry(task.machine_id)
        self.dirty.mark_machine_load(task.machine_id)
        task.state = TaskState.SUBMITTED
        task.machine_id = None
        self.place_task(task_id, machine_id, now)

    def preempt_task(self, task_id: int, now: float) -> None:
        """Preempt a running task; it becomes pending again."""
        task = self.tasks[task_id]
        if not task.is_running:
            raise ValueError(f"task {task_id} is not running")
        self._machine_tasks[task.machine_id].discard(task_id)
        self._refresh_free_slot_entry(task.machine_id)
        self.dirty.mark_task(task_id)
        self.dirty.mark_machine_load(task.machine_id)
        task.state = TaskState.PREEMPTED
        task.machine_id = None
        task.start_time = None
        self._pending_tasks[task_id] = task

    def complete_task(self, task_id: int, now: float) -> None:
        """Mark a running task as completed and free its slot.

        The task keeps its ``machine_id`` so post-hoc metrics (e.g. the data
        locality of the placement it ran with) remain computable.
        """
        task = self.tasks[task_id]
        if not task.is_running:
            raise ValueError(f"task {task_id} is not running")
        self._machine_tasks[task.machine_id].discard(task_id)
        self._refresh_free_slot_entry(task.machine_id)
        self.dirty.mark_task(task_id)
        self.dirty.mark_machine_load(task.machine_id)
        task.state = TaskState.COMPLETED
        task.finish_time = now
        # The task is terminal: retire it from the live index so future
        # per-round scans never revisit it (it stays in ``tasks`` for
        # metrics and post-hoc locality analysis).
        self._live_tasks.pop(task_id, None)

    def fail_machine(self, machine_id: int, now: float) -> List[int]:
        """Fail a machine; its tasks become pending again.

        Returns the identifiers of the evicted tasks.
        """
        machine = self.topology.machine(machine_id)
        machine.fail()
        self.dirty.mark_machine_availability(machine_id)
        evicted = list(self._machine_tasks[machine_id])
        for task_id in evicted:
            task = self.tasks[task_id]
            task.state = TaskState.PREEMPTED
            task.machine_id = None
            task.start_time = None
            self._pending_tasks[task_id] = task
            self.dirty.mark_task(task_id)
        self._machine_tasks[machine_id].clear()
        self._refresh_free_slot_entry(machine_id)
        return evicted

    def recover_machine(self, machine_id: int, now: float = 0.0) -> None:
        """Bring a failed machine back into the schedulable set."""
        machine = self.topology.machine(machine_id)
        machine.recover()
        self._refresh_free_slot_entry(machine_id)
        self.dirty.mark_machine_availability(machine_id)

    def add_machine(self, machine: Machine) -> None:
        """Add a machine to the topology (a machine joined the cluster)."""
        self.topology.add_machine(machine)
        self._machine_tasks.setdefault(machine.machine_id, set())
        self._refresh_free_slot_entry(machine.machine_id)
        self.dirty.mark_machine_availability(machine.machine_id)

    # ------------------------------------------------------------------ #
    # Queries used by scheduling policies
    # ------------------------------------------------------------------ #
    def pending_tasks(self) -> List[Task]:
        """Return tasks waiting to be placed, oldest submission first."""
        pending = list(self._pending_tasks.values())
        pending.sort(key=lambda t: (t.submit_time, t.task_id))
        return pending

    @property
    def num_pending_tasks(self) -> int:
        """Number of tasks awaiting placement, in O(1).

        The event-driven simulator checks this after every event to decide
        whether a scheduling round could do anything, so it must not scan.
        """
        return len(self._pending_tasks)

    def running_tasks(self) -> List[Task]:
        """Return currently running tasks."""
        return [t for t in self._live_tasks.values() if t.is_running]

    def schedulable_tasks(self) -> List[Task]:
        """Return tasks eligible for (re)scheduling: pending plus running.

        Flow-based scheduling continuously reconsiders the entire workload,
        so running tasks also appear in the flow network.  The scan covers
        the live-task index only, so its cost is bounded by the number of
        live tasks regardless of how much completed history ``tasks``
        retains.
        """
        return [
            t for t in self._live_tasks.values() if t.is_pending or t.is_running
        ]

    @property
    def num_live_tasks(self) -> int:
        """Number of non-terminated tasks (the per-round scan bound)."""
        return len(self._live_tasks)

    def live_tasks(self) -> List[Task]:
        """Return every non-terminated task (pending, running, preempted)."""
        return list(self._live_tasks.values())

    def terminated_task_count(self) -> int:
        """Number of tasks retained only as history (completed / failed)."""
        return len(self.tasks) - len(self._live_tasks)

    def tasks_on_machine(self, machine_id: int) -> List[Task]:
        """Return the tasks currently running on a machine."""
        return [self.tasks[t] for t in self._machine_tasks.get(machine_id, ())]

    def task_count_on_machine(self, machine_id: int) -> int:
        """Return how many tasks run on a machine."""
        return len(self._machine_tasks.get(machine_id, ()))

    def free_slots(self, machine_id: int) -> int:
        """Return the number of free slots on a machine."""
        machine = self.topology.machine(machine_id)
        if not machine.is_available:
            return 0
        return machine.num_slots - len(self._machine_tasks[machine_id])

    def machines_with_free_slots(self) -> List[Machine]:
        """Return available machines holding at least one free slot.

        Served from the incrementally maintained free-slot index, so the
        cost is O(|result| log |result|) -- the sort keeps candidate order
        identical to a topology scan -- rather than O(|machines|).  This is
        what lets the queue-based baselines dispatch against 10k-machine
        clusters without a per-task full scan.
        """
        machines = self.topology.machines
        return [machines[mid] for mid in sorted(self._free_slot_index)]

    def total_free_slots(self) -> int:
        """Return the number of free slots across the cluster."""
        return sum(self.free_slots(m) for m in self._free_slot_index)

    def slot_utilization(self) -> float:
        """Return the fraction of slots currently occupied."""
        total = self.topology.total_slots
        if total == 0:
            return 0.0
        used = sum(len(tasks) for tasks in self._machine_tasks.values())
        return used / total

    def resources_in_use(self, machine_id: int) -> ResourceVector:
        """Return the multi-dimensional resources reserved on a machine.

        Sums the requests of the tasks currently running there; used by the
        multi-dimensional policy's Borg-style feasibility check.
        """
        return ResourceVector.sum(
            ResourceVector.for_task(task) for task in self.tasks_on_machine(machine_id)
        )

    def spare_resources(self, machine_id: int) -> ResourceVector:
        """Return the unreserved multi-dimensional capacity of a machine.

        A failed or drained machine has no spare capacity.
        """
        machine = self.topology.machine(machine_id)
        if not machine.is_available:
            return ResourceVector.zero()
        return ResourceVector.for_machine(machine) - self.resources_in_use(machine_id)

    def task_fits(self, task: Task, machine_id: int) -> bool:
        """Return whether a task's resource request fits on a machine.

        The check ignores the task's own reservation when it already runs on
        the machine, so a running task always "fits" where it is.
        """
        spare = self.spare_resources(machine_id)
        if task.is_running and task.machine_id == machine_id:
            spare = spare + ResourceVector.for_task(task)
        return ResourceVector.for_task(task).fits_into(spare)

    def network_bandwidth_in_use(self, machine_id: int) -> int:
        """Return the bandwidth (Mb/s) reserved by tasks on a machine."""
        return sum(t.network_request_mbps for t in self.tasks_on_machine(machine_id))

    def spare_network_bandwidth(self, machine_id: int) -> int:
        """Return unreserved NIC bandwidth (Mb/s) on a machine.

        Combines static reservations with the monitor's observed background
        use, mirroring the network-aware policy's inputs (Figure 6c).
        """
        machine = self.topology.machine(machine_id)
        reserved = self.network_bandwidth_in_use(machine_id)
        observed = self.monitor.statistics(machine_id).network_used_mbps
        return max(0, machine.network_bandwidth_mbps - reserved - observed)

    def placements(self) -> List[Placement]:
        """Return the current task-to-machine assignments."""
        return [
            Placement(task_id=t.task_id, machine_id=t.machine_id)
            for t in self.running_tasks()
        ]
