"""Jobs, tasks, and their lifecycle.

The task lifecycle follows Figure 1 of the paper: a task is *submitted*,
waits until the scheduler *places* it, *starts* running on a machine, and
eventually *completes*.  The two derived quantities every experiment uses
are the task placement latency (submission to placement) and the task
response time (submission to completion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class TaskState(enum.Enum):
    """Lifecycle state of a task (Figure 1)."""

    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    PREEMPTED = "preempted"


class JobType(enum.Enum):
    """Coarse job classification used throughout the evaluation.

    The Google trace lacks explicit job types; following Omega, jobs are
    classified by priority into long-running *service* jobs and finite
    *batch* jobs.
    """

    BATCH = "batch"
    SERVICE = "service"


@dataclass
class Task:
    """A schedulable unit of work.

    Attributes:
        task_id: Unique integer identifier.
        job_id: Identifier of the owning job.
        duration: Runtime of the task in seconds once started (``None`` for
            long-running service tasks, whose response time is conceptually
            infinite).
        submit_time: Time the task entered the cluster manager.
        cpu_request: Requested CPU cores.
        ram_request_gb: Requested RAM in GB.
        network_request_mbps: Requested network bandwidth (network-aware policy).
        input_size_gb: Total input data size, used by the Quincy policy.
        input_locality: Fraction of the input stored per machine id; the
            Quincy policy turns fractions above its preference threshold into
            preference arcs.
        priority: Larger values are more important (service > batch).
        state: Current lifecycle state.
        placement_time: Time the scheduler first placed the task.
        start_time: Time the task started running.
        finish_time: Time the task completed (or failed / was preempted).
        machine_id: Machine currently running the task, if any.
        last_machine_id: Most recent machine the task ran on.  Unlike
            ``machine_id`` it survives preemption and eviction, so post-hoc
            metrics (e.g. the data locality of the placement an evicted
            task actually ran with) remain computable.
    """

    task_id: int
    job_id: int
    duration: Optional[float] = None
    submit_time: float = 0.0
    cpu_request: float = 1.0
    ram_request_gb: float = 1.0
    network_request_mbps: int = 0
    input_size_gb: float = 0.0
    input_locality: Dict[int, float] = field(default_factory=dict)
    priority: int = 0
    state: TaskState = TaskState.SUBMITTED
    placement_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    machine_id: Optional[int] = None
    last_machine_id: Optional[int] = None

    @property
    def is_running(self) -> bool:
        """Return whether the task currently occupies a machine slot."""
        return self.state is TaskState.RUNNING

    @property
    def is_pending(self) -> bool:
        """Return whether the task is waiting to be placed."""
        return self.state in (TaskState.SUBMITTED, TaskState.PREEMPTED)

    @property
    def is_finished(self) -> bool:
        """Return whether the task reached a terminal state."""
        return self.state in (TaskState.COMPLETED, TaskState.FAILED)

    def placement_latency(self) -> Optional[float]:
        """Return submission-to-placement latency, if the task was placed."""
        if self.placement_time is None:
            return None
        return self.placement_time - self.submit_time

    def response_time(self) -> Optional[float]:
        """Return submission-to-completion time, if the task completed."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    def locality_fraction(self, machine_id: int) -> float:
        """Return the fraction of this task's input stored on a machine."""
        return self.input_locality.get(machine_id, 0.0)

    def rack_locality_fraction(self, machine_ids: List[int]) -> float:
        """Return the fraction of this task's input stored within a rack."""
        return sum(self.input_locality.get(m, 0.0) for m in machine_ids)


@dataclass
class Job:
    """A job: a collection of parallel tasks submitted together.

    Attributes:
        job_id: Unique integer identifier.
        job_type: Batch or service.
        tasks: The job's tasks.
        submit_time: Submission time of the job.
        priority: Job priority (propagated to tasks).
        name: Human-readable name.
    """

    job_id: int
    job_type: JobType = JobType.BATCH
    tasks: List[Task] = field(default_factory=list)
    submit_time: float = 0.0
    priority: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"job-{self.job_id}"

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the job."""
        return len(self.tasks)

    def add_task(self, task: Task) -> None:
        """Attach a task to the job, inheriting job-level attributes."""
        task.job_id = self.job_id
        if task.priority == 0:
            task.priority = self.priority
        self.tasks.append(task)

    def pending_tasks(self) -> List[Task]:
        """Return tasks that still wait for placement."""
        return [t for t in self.tasks if t.is_pending]

    def running_tasks(self) -> List[Task]:
        """Return tasks currently running."""
        return [t for t in self.tasks if t.is_running]

    def is_complete(self) -> bool:
        """Return whether every task of the job reached a terminal state."""
        return all(t.is_finished for t in self.tasks)

    def response_time(self) -> Optional[float]:
        """Return the job response time: the maximum task response time.

        The paper uses this definition in the breaking-point experiment
        (Figure 17): a job responds only once its slowest task completes.
        """
        times = [t.response_time() for t in self.tasks]
        if any(t is None for t in times) or not times:
            return None
        return max(times)
