"""Cluster topology construction helpers.

The simulated clusters mirror the Google cluster used in the paper's
evaluation: machines grouped into racks, each machine exposing a fixed
number of task slots.  The topology object is immutable once built; dynamic
state (which task runs where) lives in :class:`~repro.cluster.state.ClusterState`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cluster.machine import Machine, Rack


@dataclass
class ClusterTopology:
    """Racks and machines of a cluster."""

    machines: Dict[int, Machine] = field(default_factory=dict)
    racks: Dict[int, Rack] = field(default_factory=dict)
    #: Membership version, bumped whenever a machine (and possibly its
    #: rack) joins or leaves the topology.  Availability flips do *not*
    #: bump it: the machine objects stay in place and readers see the flag
    #: through their existing references.  Cached filtered views (the
    #: sharding layer's per-cell topology facades) key their caches on
    #: this counter instead of re-deriving membership every access.
    version: int = 0

    @property
    def num_machines(self) -> int:
        """Number of machines in the topology."""
        return len(self.machines)

    @property
    def num_racks(self) -> int:
        """Number of racks in the topology."""
        return len(self.racks)

    @property
    def total_slots(self) -> int:
        """Total number of task slots across all machines."""
        return sum(m.num_slots for m in self.machines.values())

    def machine(self, machine_id: int) -> Machine:
        """Return a machine by identifier."""
        return self.machines[machine_id]

    def rack(self, rack_id: int) -> Rack:
        """Return a rack by identifier."""
        return self.racks[rack_id]

    def rack_of(self, machine_id: int) -> Rack:
        """Return the rack containing the given machine."""
        return self.racks[self.machines[machine_id].rack_id]

    def machines_in_rack(self, rack_id: int) -> List[Machine]:
        """Return the machines in a rack."""
        return [self.machines[m] for m in self.racks[rack_id].machine_ids]

    def healthy_machines(self) -> List[Machine]:
        """Return all machines that can currently accept tasks."""
        return [m for m in self.machines.values() if m.is_available]

    def add_machine(self, machine: Machine) -> None:
        """Add a machine, creating its rack if necessary."""
        self.machines[machine.machine_id] = machine
        rack = self.racks.get(machine.rack_id)
        if rack is None:
            rack = Rack(rack_id=machine.rack_id)
            self.racks[machine.rack_id] = rack
        rack.add_machine(machine.machine_id)
        self.version += 1

    def remove_machine(self, machine_id: int) -> None:
        """Remove a machine from the topology (e.g., permanent failure)."""
        machine = self.machines.pop(machine_id)
        self.racks[machine.rack_id].remove_machine(machine_id)
        self.version += 1


def build_topology(
    num_machines: int,
    machines_per_rack: int = 40,
    slots_per_machine: int = 4,
    cpu_cores: int = 12,
    ram_gb: int = 64,
    network_bandwidth_mbps: int = 10_000,
) -> ClusterTopology:
    """Build a homogeneous cluster topology.

    Args:
        num_machines: Total machine count.
        machines_per_rack: Rack size; the Google cluster uses racks of
            roughly 40 machines.
        slots_per_machine: Task slots per machine (slot-based assignment is
            used to compare fairly with Quincy).
        cpu_cores: Cores per machine.
        ram_gb: RAM per machine in GB.
        network_bandwidth_mbps: NIC capacity per machine in Mb/s.

    Returns:
        The constructed :class:`ClusterTopology`.
    """
    if num_machines <= 0:
        raise ValueError("cluster must have at least one machine")
    if machines_per_rack <= 0:
        raise ValueError("racks must hold at least one machine")
    topology = ClusterTopology()
    for machine_id in range(num_machines):
        rack_id = machine_id // machines_per_rack
        topology.add_machine(
            Machine(
                machine_id=machine_id,
                rack_id=rack_id,
                num_slots=slots_per_machine,
                cpu_cores=cpu_cores,
                ram_gb=ram_gb,
                network_bandwidth_mbps=network_bandwidth_mbps,
            )
        )
    return topology
