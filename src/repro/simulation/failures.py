"""Machine failure injection for simulation experiments.

The paper motivates rescheduling partly by fault tolerance (Section 1) and
models machine failures as one of the cluster events that reduce to flow
network changes (Section 5.2): a failed machine loses its arcs (capacity
changes to zero) and its evicted tasks become sources again (supply
changes).  The Google trace itself contains machine failures.

The :class:`FailureInjector` produces a deterministic, seeded schedule of
machine failures and recoveries drawn from exponential inter-failure and
repair-time distributions, and installs them into a
:class:`~repro.simulation.simulator.ClusterSimulator`.  Experiments use it
to verify that the scheduler re-places evicted work and to measure how much
placement latency and response time degrade under churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.cluster.topology import ClusterTopology
from repro.simulation.simulator import ClusterSimulator


@dataclass(frozen=True)
class FailureEvent:
    """One machine failure with its subsequent recovery.

    Attributes:
        machine_id: The machine that fails.
        fail_time: Virtual time of the failure.
        recover_time: Virtual time of the recovery; ``None`` means the
            machine never comes back within the experiment horizon.
    """

    machine_id: int
    fail_time: float
    recover_time: Optional[float]


@dataclass
class FailureSchedule:
    """A time-ordered list of failure/recovery events."""

    events: List[FailureEvent] = field(default_factory=list)

    @property
    def num_failures(self) -> int:
        """Number of machine failures in the schedule."""
        return len(self.events)

    def machines_affected(self) -> List[int]:
        """Return the distinct machines that fail at least once."""
        return sorted({event.machine_id for event in self.events})

    def install(self, simulator: ClusterSimulator) -> None:
        """Enqueue every failure and recovery into a simulator."""
        for event in self.events:
            simulator.fail_machine_at(event.machine_id, event.fail_time)
            if event.recover_time is not None:
                simulator.recover_machine_at(event.machine_id, event.recover_time)

    def merge(self, other: "FailureSchedule") -> "FailureSchedule":
        """Return a new schedule combining both event lists, time-ordered.

        Lets experiments overlay independent-failure background churn with
        correlated rack storms.  Overlapping events are kept as-is: the
        simulator already ignores a failure for a machine that is down and
        a recovery for one that is up, so a machine named by both
        schedules degrades to whichever event fires first.
        """
        merged = sorted(
            list(self.events) + list(other.events),
            key=lambda event: (event.fail_time, event.machine_id),
        )
        return FailureSchedule(events=merged)


class FailureInjector:
    """Generates seeded machine-failure schedules from MTBF/MTTR parameters."""

    def __init__(
        self,
        mean_time_between_failures: float = 3_600.0,
        mean_time_to_repair: float = 600.0,
        seed: int = 0,
    ) -> None:
        """Create an injector.

        Args:
            mean_time_between_failures: Cluster-wide MTBF in virtual seconds;
                the gap between consecutive failures is exponentially
                distributed with this mean.
            mean_time_to_repair: Mean repair time in virtual seconds; repair
                times are exponentially distributed.  Zero (or a negative
                value) means failed machines never recover.
            seed: Seed for the deterministic schedule.
        """
        if mean_time_between_failures <= 0:
            raise ValueError("mean time between failures must be positive")
        self.mean_time_between_failures = mean_time_between_failures
        self.mean_time_to_repair = mean_time_to_repair
        self.seed = seed

    def generate(
        self,
        topology: ClusterTopology,
        horizon: float,
        start_time: float = 0.0,
        eligible_machines: Optional[Sequence[int]] = None,
    ) -> FailureSchedule:
        """Generate a failure schedule for the given cluster and horizon.

        Args:
            topology: The cluster; machines are drawn uniformly from it.
            horizon: Virtual time at which the schedule ends.
            start_time: Virtual time at which failures may begin.
            eligible_machines: Restrict failures to these machines (all
                machines by default).

        Returns:
            A :class:`FailureSchedule` with events ordered by failure time.
        """
        if horizon <= start_time:
            return FailureSchedule()
        machine_ids = list(
            eligible_machines if eligible_machines is not None else topology.machines
        )
        if not machine_ids:
            return FailureSchedule()

        rng = random.Random(self.seed)
        events: List[FailureEvent] = []
        # Track when each machine is next available to fail, so a machine
        # cannot fail again while it is still down.
        next_available = {machine_id: start_time for machine_id in machine_ids}

        time = start_time
        while True:
            time += rng.expovariate(1.0 / self.mean_time_between_failures)
            if time >= horizon:
                break
            candidates = [m for m in machine_ids if next_available[m] <= time]
            if not candidates:
                continue
            machine_id = rng.choice(candidates)
            recover_time: Optional[float] = None
            if self.mean_time_to_repair > 0:
                recover_time = time + rng.expovariate(1.0 / self.mean_time_to_repair)
                next_available[machine_id] = recover_time
            else:
                next_available[machine_id] = float("inf")
            events.append(
                FailureEvent(
                    machine_id=machine_id,
                    fail_time=time,
                    recover_time=recover_time,
                )
            )
        return FailureSchedule(events=events)

    def generate_rack_storms(
        self,
        topology: ClusterTopology,
        horizon: float,
        start_time: float = 0.0,
        mean_time_between_storms: Optional[float] = None,
    ) -> FailureSchedule:
        """Generate correlated failure-domain storms: whole racks at once.

        Real clusters lose failure *domains*, not uniform random machines:
        a PDU or top-of-rack switch takes every machine in the rack down
        together.  Each storm picks one rack (drawn from the topology's
        failure domains) and fails all of its machines at the storm time;
        recoveries are per-machine, exponentially distributed around the
        injector's MTTR, so the rack comes back ragged the way real repairs
        do.  The draw stream is seeded separately from :meth:`generate`
        (``f"{seed}:storms"``), so overlaying both schedules for one
        experiment keeps each deterministic.

        Args:
            topology: The cluster; storms pick among its racks uniformly.
            horizon: Virtual time at which the schedule ends.
            start_time: Virtual time at which storms may begin.
            mean_time_between_storms: Mean exponential gap between storms;
                defaults to four times the injector's machine-level MTBF
                (storms are rarer than isolated failures).

        Returns:
            A :class:`FailureSchedule` with one event per affected machine,
            ordered by failure time.
        """
        if horizon <= start_time or not topology.racks:
            return FailureSchedule()
        mean_gap = (
            mean_time_between_storms
            if mean_time_between_storms is not None
            else 4.0 * self.mean_time_between_failures
        )
        if mean_gap <= 0:
            raise ValueError("mean time between storms must be positive")
        rng = random.Random(f"{self.seed}:storms")
        rack_ids = sorted(topology.racks)
        events: List[FailureEvent] = []
        down_until = {}
        time = start_time
        while True:
            time += rng.expovariate(1.0 / mean_gap)
            if time >= horizon:
                break
            rack_id = rng.choice(rack_ids)
            for machine_id in sorted(topology.racks[rack_id].machine_ids):
                if down_until.get(machine_id, start_time) > time:
                    continue  # still down from an earlier storm
                recover_time: Optional[float] = None
                if self.mean_time_to_repair > 0:
                    recover_time = time + rng.expovariate(
                        1.0 / self.mean_time_to_repair
                    )
                    down_until[machine_id] = recover_time
                else:
                    down_until[machine_id] = float("inf")
                events.append(
                    FailureEvent(
                        machine_id=machine_id,
                        fail_time=time,
                        recover_time=recover_time,
                    )
                )
        return FailureSchedule(events=events)

    def inject(
        self,
        simulator: ClusterSimulator,
        horizon: float,
        start_time: float = 0.0,
        eligible_machines: Optional[Iterable[int]] = None,
    ) -> FailureSchedule:
        """Generate a schedule for the simulator's cluster and install it."""
        eligible = list(eligible_machines) if eligible_machines is not None else None
        schedule = self.generate(
            simulator.state.topology,
            horizon=horizon,
            start_time=start_time,
            eligible_machines=eligible,
        )
        schedule.install(simulator)
        return schedule
