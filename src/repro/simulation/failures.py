"""Machine failure injection for simulation experiments.

The paper motivates rescheduling partly by fault tolerance (Section 1) and
models machine failures as one of the cluster events that reduce to flow
network changes (Section 5.2): a failed machine loses its arcs (capacity
changes to zero) and its evicted tasks become sources again (supply
changes).  The Google trace itself contains machine failures.

The :class:`FailureInjector` produces a deterministic, seeded schedule of
machine failures and recoveries drawn from exponential inter-failure and
repair-time distributions, and installs them into a
:class:`~repro.simulation.simulator.ClusterSimulator`.  Experiments use it
to verify that the scheduler re-places evicted work and to measure how much
placement latency and response time degrade under churn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.cluster.topology import ClusterTopology
from repro.simulation.simulator import ClusterSimulator


@dataclass(frozen=True)
class FailureEvent:
    """One machine failure with its subsequent recovery.

    Attributes:
        machine_id: The machine that fails.
        fail_time: Virtual time of the failure.
        recover_time: Virtual time of the recovery; ``None`` means the
            machine never comes back within the experiment horizon.
    """

    machine_id: int
    fail_time: float
    recover_time: Optional[float]


@dataclass
class FailureSchedule:
    """A time-ordered list of failure/recovery events."""

    events: List[FailureEvent] = field(default_factory=list)

    @property
    def num_failures(self) -> int:
        """Number of machine failures in the schedule."""
        return len(self.events)

    def machines_affected(self) -> List[int]:
        """Return the distinct machines that fail at least once."""
        return sorted({event.machine_id for event in self.events})

    def install(self, simulator: ClusterSimulator) -> None:
        """Enqueue every failure and recovery into a simulator."""
        for event in self.events:
            simulator.fail_machine_at(event.machine_id, event.fail_time)
            if event.recover_time is not None:
                simulator.recover_machine_at(event.machine_id, event.recover_time)


class FailureInjector:
    """Generates seeded machine-failure schedules from MTBF/MTTR parameters."""

    def __init__(
        self,
        mean_time_between_failures: float = 3_600.0,
        mean_time_to_repair: float = 600.0,
        seed: int = 0,
    ) -> None:
        """Create an injector.

        Args:
            mean_time_between_failures: Cluster-wide MTBF in virtual seconds;
                the gap between consecutive failures is exponentially
                distributed with this mean.
            mean_time_to_repair: Mean repair time in virtual seconds; repair
                times are exponentially distributed.  Zero (or a negative
                value) means failed machines never recover.
            seed: Seed for the deterministic schedule.
        """
        if mean_time_between_failures <= 0:
            raise ValueError("mean time between failures must be positive")
        self.mean_time_between_failures = mean_time_between_failures
        self.mean_time_to_repair = mean_time_to_repair
        self.seed = seed

    def generate(
        self,
        topology: ClusterTopology,
        horizon: float,
        start_time: float = 0.0,
        eligible_machines: Optional[Sequence[int]] = None,
    ) -> FailureSchedule:
        """Generate a failure schedule for the given cluster and horizon.

        Args:
            topology: The cluster; machines are drawn uniformly from it.
            horizon: Virtual time at which the schedule ends.
            start_time: Virtual time at which failures may begin.
            eligible_machines: Restrict failures to these machines (all
                machines by default).

        Returns:
            A :class:`FailureSchedule` with events ordered by failure time.
        """
        if horizon <= start_time:
            return FailureSchedule()
        machine_ids = list(
            eligible_machines if eligible_machines is not None else topology.machines
        )
        if not machine_ids:
            return FailureSchedule()

        rng = random.Random(self.seed)
        events: List[FailureEvent] = []
        # Track when each machine is next available to fail, so a machine
        # cannot fail again while it is still down.
        next_available = {machine_id: start_time for machine_id in machine_ids}

        time = start_time
        while True:
            time += rng.expovariate(1.0 / self.mean_time_between_failures)
            if time >= horizon:
                break
            candidates = [m for m in machine_ids if next_available[m] <= time]
            if not candidates:
                continue
            machine_id = rng.choice(candidates)
            recover_time: Optional[float] = None
            if self.mean_time_to_repair > 0:
                recover_time = time + rng.expovariate(1.0 / self.mean_time_to_repair)
                next_available[machine_id] = recover_time
            else:
                next_available[machine_id] = float("inf")
            events.append(
                FailureEvent(
                    machine_id=machine_id,
                    fail_time=time,
                    recover_time=recover_time,
                )
            )
        return FailureSchedule(events=events)

    def inject(
        self,
        simulator: ClusterSimulator,
        horizon: float,
        start_time: float = 0.0,
        eligible_machines: Optional[Iterable[int]] = None,
    ) -> FailureSchedule:
        """Generate a schedule for the simulator's cluster and install it."""
        eligible = list(eligible_machines) if eligible_machines is not None else None
        schedule = self.generate(
            simulator.state.topology,
            horizon=horizon,
            start_time=start_time,
            eligible_machines=eligible,
        )
        schedule.install(simulator)
        return schedule
