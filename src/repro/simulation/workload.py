"""Purpose-built experiment workloads.

Besides the Google-like trace, several experiments use deliberately simple
workloads: a cluster pre-filled to a target utilization (Figures 8, 14, 16),
a single very large arriving job (Figure 9), and homogeneous jobs of short
tasks arriving at a fixed rate (Figure 17, the breaking-point experiment).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.state import ClusterState
from repro.cluster.task import Job, JobType, Task


def make_single_large_job(
    num_tasks: int,
    job_id: int = 10_000,
    submit_time: float = 0.0,
    duration: float = 600.0,
    task_id_offset: int = 1_000_000,
) -> Job:
    """Build one job with ``num_tasks`` identical tasks (Figure 9's workload).

    Large arriving jobs create contention under the load-spreading policy
    because every new task wants the same under-populated machines.
    """
    job = Job(job_id=job_id, job_type=JobType.BATCH, submit_time=submit_time)
    for i in range(num_tasks):
        job.add_task(
            Task(
                task_id=task_id_offset + i,
                job_id=job_id,
                duration=duration,
                submit_time=submit_time,
            )
        )
    return job


def make_job_of_short_tasks(
    job_id: int,
    num_tasks: int,
    task_duration: float,
    submit_time: float,
    task_id_offset: int,
    network_request_mbps: int = 0,
) -> Job:
    """Build a job of ``num_tasks`` short tasks (Figure 17's workload)."""
    job = Job(job_id=job_id, job_type=JobType.BATCH, submit_time=submit_time)
    for i in range(num_tasks):
        job.add_task(
            Task(
                task_id=task_id_offset + i,
                job_id=job_id,
                duration=task_duration,
                submit_time=submit_time,
                network_request_mbps=network_request_mbps,
            )
        )
    return job


def fill_cluster_to_utilization(
    state: ClusterState,
    utilization: float,
    rng: Optional[random.Random] = None,
    task_duration: Optional[float] = None,
    job_size: int = 20,
    job_id_offset: int = 50_000,
    task_id_offset: int = 5_000_000,
    now: float = 0.0,
) -> List[Job]:
    """Submit and place tasks until the cluster reaches a slot utilization.

    Tasks are placed round-robin (the placement quality of the pre-fill does
    not matter; the experiments only need the cluster to be busy).  Returns
    the submitted jobs.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be between 0 and 1")
    rng = rng or random.Random(0)
    total_slots = state.topology.total_slots
    target_tasks = int(round(total_slots * utilization))

    machines = [m.machine_id for m in state.topology.healthy_machines()]
    jobs: List[Job] = []
    placed = 0
    job_id = job_id_offset
    task_id = task_id_offset
    while placed < target_tasks:
        size = min(job_size, target_tasks - placed)
        job = Job(job_id=job_id, job_type=JobType.BATCH, submit_time=now)
        for _ in range(size):
            job.add_task(
                Task(
                    task_id=task_id,
                    job_id=job_id,
                    duration=task_duration,
                    submit_time=now,
                )
            )
            task_id += 1
        state.submit_job(job)
        jobs.append(job)
        for task in job.tasks:
            machine_id = _next_machine_with_slot(state, machines, rng)
            if machine_id is None:
                return jobs
            state.place_task(task.task_id, machine_id, now)
            placed += 1
        job_id += 1
    return jobs


def _next_machine_with_slot(
    state: ClusterState, machines: List[int], rng: random.Random
) -> Optional[int]:
    """Return a machine with a free slot, preferring the least loaded."""
    candidates = [m for m in machines if state.free_slots(m) > 0]
    if not candidates:
        return None
    return min(candidates, key=lambda m: (state.task_count_on_machine(m), rng.random()))
