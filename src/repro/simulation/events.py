"""Typed event queue for the cluster simulator.

Mirrors Firmament's own simulator architecture (``src/sim/event_manager.cc``
and ``src/sim/simulator.cc``): the simulation is a single priority queue of
*typed* events -- task submissions, task runtime expirations, machine
additions and removals, and scheduler completions -- popped in timestamp
order.  The :class:`EventManager` owns nothing but the queue; interpreting
an event (mutating cluster state, invoking the scheduler) is the simulator
bridge's job, so the queue can be fuzzed, inspected, and drained
independently of the scheduling logic.

Same-timestamp ordering is FIFO by default (insertion order), exactly like
the previous sequence-counter implementation.  Passing ``tie_break_rng``
randomizes the order of same-timestamp events instead: real clusters give
no ordering guarantee for simultaneous events, so the event-order fuzz
suite uses this hook to check that simulation invariants (in particular
the records-vs-applied placement conservation law) hold under *every*
interleaving, not just the one insertion order happens to produce.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


class EventType(enum.IntEnum):
    """Event kinds understood by the simulator bridge.

    The names follow Firmament's ``EventDescriptor`` types: a task arrives
    (``TASK_SUBMIT``), a running task's duration expires
    (``TASK_END_RUNTIME``), a machine joins or rejoins the cluster
    (``ADD_MACHINE``), a machine fails or is decommissioned
    (``REMOVE_MACHINE``), and an in-flight scheduling round's algorithm
    runtime elapses so its decision becomes visible (``SCHEDULER_DONE``).
    ``SCHEDULER_WAKE`` is the one addition over Firmament's set: a deferred
    batch-mode scheduler retry fires at the next ``min_scheduler_interval``
    boundary; it carries no payload and exists only to advance the clock to
    a point where the bridge re-checks whether a round should start.
    """

    TASK_SUBMIT = 0
    TASK_END_RUNTIME = 1
    SCHEDULER_DONE = 2
    REMOVE_MACHINE = 3
    ADD_MACHINE = 4
    SCHEDULER_WAKE = 5


@dataclass(frozen=True)
class SimulationEvent:
    """One queued event: a timestamp, a type, and a type-specific payload."""

    time: float
    event_type: EventType
    payload: object = None


class EventManager:
    """Priority queue of :class:`SimulationEvent`, popped in time order."""

    def __init__(self, tie_break_rng: Optional[random.Random] = None) -> None:
        """Create an event manager.

        Args:
            tie_break_rng: When provided, events carrying the same timestamp
                are popped in an order randomized by this RNG instead of
                insertion (FIFO) order.  Used by the event-order fuzz suite;
                production runs leave it ``None`` for determinism.
        """
        self._heap: List[Tuple[float, float, int, SimulationEvent]] = []
        self._sequence = itertools.count()
        self._rng = tie_break_rng
        self.num_events_processed = 0

    def add_event(
        self, time: float, event_type: EventType, payload: object = None
    ) -> SimulationEvent:
        """Queue an event and return it."""
        event = SimulationEvent(time=time, event_type=event_type, payload=payload)
        tie = self._rng.random() if self._rng is not None else 0.0
        heapq.heappush(self._heap, (time, tie, next(self._sequence), event))
        return event

    def pop(self) -> Optional[SimulationEvent]:
        """Pop and return the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        _, _, _, event = heapq.heappop(self._heap)
        self.num_events_processed += 1
        return event

    def peek_time(self) -> float:
        """Return the timestamp of the next event (``inf`` when empty)."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def drain(self) -> Iterator[SimulationEvent]:
        """Pop every remaining event in time order.

        The simulator's exit path uses this to account for events that will
        never be *processed* -- in particular in-flight ``SCHEDULER_DONE``
        rounds, which must be explicitly voided rather than silently lost.
        """
        while self._heap:
            yield self.pop()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
