"""Streaming trace ingestion: external cluster traces as job streams.

The paper's evaluation replays the Google cluster trace; production-scale
replays need to ingest *external* traces (Alibaba ``cluster-trace-v2018``,
Google ``clusterdata-2011``, or anything CSV-shaped) without materializing
10^5--10^6 tasks up front.  This module maps a column schema onto
:class:`~repro.cluster.task.Job`/:class:`~repro.cluster.task.Task` streams:

* :class:`TraceSchema` names the columns (job id, submission time, task
  duration, resource requests, priority) and the unit conversions
  (``time_scale`` for microsecond traces, ``cpu_scale`` for
  percent-of-core requests);
* :func:`read_trace` turns a CSV file into an ``Iterator[Job]``, reading
  one row at a time and yielding each job as soon as its last row has
  been seen;
* :func:`write_jobs_csv` serializes any job iterator back to the same
  schema, so synthetic workloads can exercise the full ingestion path.

The synthetic :class:`~repro.simulation.trace.GoogleTraceGenerator` is one
producer behind the same contract (its ``iter_jobs``): every producer
yields jobs in non-decreasing submit-time order, one at a time, which is
exactly what :meth:`ClusterSimulator.submit_job_stream
<repro.simulation.simulator.ClusterSimulator.submit_job_stream>` consumes
-- only the stream's next job ever sits in the event queue.

Input contract (the standard trace-prep shape): each job's rows are
contiguous, and job arrival times (each block's first row) are
non-decreasing.  Rows inside a job may carry later submit times (stragglers
submitted after the job arrived); they are clamped to be no earlier than
the job's arrival.  A job id reappearing after its block closed is an
error -- streaming grouping cannot reopen a job it already yielded.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional, Union

from repro.cluster.task import Job, JobType, Task


@dataclass(frozen=True)
class TraceSchema:
    """Column schema mapping a CSV cluster trace onto jobs and tasks.

    Attributes:
        job_id: Column holding the job identifier (any string; ids are
            re-mapped to dense integers in encounter order).
        task_id: Column holding a per-task identifier, or ``None`` when the
            trace has none (task ids are synthesized either way; the column
            is only validated for presence).
        submit_time: Column holding the submission timestamp.
        duration: Column holding the task runtime.  An empty value or one
            that is zero/negative after scaling marks a long-running
            service task (``duration=None``).
        cpu_request: Optional column for requested CPU cores.
        ram_request_gb: Optional column for requested memory.
        network_request_mbps: Optional column for requested NIC bandwidth.
        input_size_gb: Optional column for the task's input data size.
        priority: Optional column for the job priority.
        time_scale: Multiplier turning raw timestamps/durations into
            seconds (``1e-6`` for microsecond traces like Google's).
        cpu_scale: Multiplier turning raw CPU requests into cores (``0.01``
            for Alibaba's percent-of-core ``plan_cpu``).
        ram_scale: Multiplier turning raw memory requests into GB.
        service_priority_threshold: When set, jobs whose priority is at or
            above this value are classified as long-running service jobs
            (the Omega-style classification the synthetic trace uses),
            regardless of their duration column.
    """

    job_id: str = "job_id"
    task_id: Optional[str] = "task_id"
    submit_time: str = "submit_time"
    duration: str = "duration"
    cpu_request: Optional[str] = "cpu_request"
    ram_request_gb: Optional[str] = "ram_request_gb"
    network_request_mbps: Optional[str] = None
    input_size_gb: Optional[str] = None
    priority: Optional[str] = "priority"
    time_scale: float = 1.0
    cpu_scale: float = 1.0
    ram_scale: float = 1.0
    service_priority_threshold: Optional[int] = None


#: Google ``clusterdata-2011``-style task-events slice: microsecond
#: timestamps, priority bands (>= 9 are the monitored long-running tier).
GOOGLE_SCHEMA = TraceSchema(
    job_id="job_id",
    task_id="task_index",
    submit_time="time",
    duration="duration",
    cpu_request="cpu_request",
    ram_request_gb="memory_request",
    priority="priority",
    time_scale=1e-6,
    service_priority_threshold=9,
)

#: Alibaba ``cluster-trace-v2018`` batch-instance-style slice: second
#: timestamps, ``plan_cpu`` in percent of one core.
ALIBABA_SCHEMA = TraceSchema(
    job_id="job_name",
    task_id="task_name",
    submit_time="start_time",
    duration="duration",
    cpu_request="plan_cpu",
    ram_request_gb="plan_mem",
    priority=None,
    cpu_scale=0.01,
)

#: Named presets accepted by the CLI's ``--trace-schema``.
SCHEMAS = {
    "generic": TraceSchema(),
    "google": GOOGLE_SCHEMA,
    "alibaba": ALIBABA_SCHEMA,
}


def _parse_float(value: Optional[str], row_number: int, column: str) -> Optional[float]:
    if value is None or value == "":
        return None
    try:
        return float(value)
    except ValueError as exc:
        raise ValueError(
            f"trace row {row_number}: column {column!r} is not numeric: {value!r}"
        ) from exc


def read_trace(
    source: Union[str, Path, IO[str], Iterable[str]],
    schema: Optional[TraceSchema] = None,
    job_id_offset: int = 0,
    task_id_offset: int = 0,
    max_tasks: Optional[int] = None,
) -> Iterator[Job]:
    """Stream jobs out of a CSV cluster trace.

    Args:
        source: Path to a CSV file, an open text file, or an iterable of
            lines.  The first row must be a header naming the schema's
            columns.
        schema: Column mapping; defaults to the generic schema.
        job_id_offset: First synthesized integer job id.
        task_id_offset: First synthesized integer task id.
        max_tasks: Stop after this many tasks (the job containing the
            last task is still yielded complete).

    Yields:
        :class:`Job` objects in arrival order, each carrying its tasks.

    Raises:
        ValueError: On a missing column, a non-numeric field, a job block
            that reappears after closing, or job arrivals that go
            backwards in time.
    """
    schema = schema or TraceSchema()
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="") as handle:
            yield from _read_rows(
                handle, schema, job_id_offset, task_id_offset, max_tasks
            )
    else:
        yield from _read_rows(source, schema, job_id_offset, task_id_offset, max_tasks)


def _read_rows(
    lines: Union[IO[str], Iterable[str]],
    schema: TraceSchema,
    job_id_offset: int,
    task_id_offset: int,
    max_tasks: Optional[int],
) -> Iterator[Job]:
    reader = csv.DictReader(lines)
    current: Optional[Job] = None
    current_key: Optional[str] = None
    closed_keys = set()
    next_job_id = job_id_offset
    next_task_id = task_id_offset
    tasks_read = 0
    last_arrival = -float("inf")

    for row_number, row in enumerate(reader, start=2):
        try:
            job_key = row[schema.job_id]
        except KeyError:
            raise ValueError(
                f"trace is missing the {schema.job_id!r} column; header: "
                f"{reader.fieldnames}"
            ) from None
        if schema.task_id is not None and schema.task_id not in row:
            raise ValueError(f"trace is missing the {schema.task_id!r} column")

        raw_time = _parse_float(row.get(schema.submit_time), row_number, schema.submit_time)
        if raw_time is None:
            raise ValueError(
                f"trace row {row_number}: column {schema.submit_time!r} is empty"
            )
        submit_time = raw_time * schema.time_scale

        if job_key != current_key:
            if current is not None:
                yield current
                closed_keys.add(current_key)
            if job_key in closed_keys:
                raise ValueError(
                    f"trace row {row_number}: job {job_key!r} reappears after its "
                    "block closed; streaming ingestion needs each job's rows "
                    "contiguous"
                )
            if submit_time < last_arrival:
                raise ValueError(
                    f"trace row {row_number}: job {job_key!r} arrives at "
                    f"{submit_time} before the previous job ({last_arrival}); "
                    "sort the trace by arrival time"
                )
            last_arrival = submit_time
            priority = 0
            if schema.priority is not None:
                parsed = _parse_float(row.get(schema.priority), row_number, schema.priority)
                priority = int(parsed) if parsed is not None else 0
            job_type = JobType.BATCH
            if (
                schema.service_priority_threshold is not None
                and priority >= schema.service_priority_threshold
            ):
                job_type = JobType.SERVICE
            current = Job(
                job_id=next_job_id,
                job_type=job_type,
                submit_time=submit_time,
                priority=priority,
                name=str(job_key),
            )
            next_job_id += 1
            current_key = job_key

        duration = _parse_float(row.get(schema.duration), row_number, schema.duration)
        if duration is not None:
            duration *= schema.time_scale
            if duration <= 0:
                duration = None
        if current.job_type is JobType.SERVICE:
            duration = None

        task = Task(
            task_id=next_task_id,
            job_id=current.job_id,
            duration=duration,
            # Stragglers may be stamped after the job arrived, never before.
            submit_time=max(submit_time, current.submit_time),
            priority=current.priority,
        )
        next_task_id += 1
        if schema.cpu_request is not None:
            value = _parse_float(row.get(schema.cpu_request), row_number, schema.cpu_request)
            if value is not None:
                task.cpu_request = value * schema.cpu_scale
        if schema.ram_request_gb is not None:
            value = _parse_float(
                row.get(schema.ram_request_gb), row_number, schema.ram_request_gb
            )
            if value is not None:
                task.ram_request_gb = value * schema.ram_scale
        if schema.network_request_mbps is not None:
            value = _parse_float(
                row.get(schema.network_request_mbps),
                row_number,
                schema.network_request_mbps,
            )
            if value is not None:
                task.network_request_mbps = int(value)
        if schema.input_size_gb is not None:
            value = _parse_float(
                row.get(schema.input_size_gb), row_number, schema.input_size_gb
            )
            if value is not None:
                task.input_size_gb = value
        current.add_task(task)

        tasks_read += 1
        if max_tasks is not None and tasks_read >= max_tasks:
            break

    if current is not None:
        yield current


def write_jobs_csv(
    jobs: Iterable[Job],
    destination: Union[str, Path, IO[str]],
    schema: Optional[TraceSchema] = None,
) -> int:
    """Serialize a job stream to a CSV trace under the given schema.

    The inverse of :func:`read_trace` (modulo id re-mapping): one row per
    task, jobs contiguous, in iteration order.  Lets benchmarks and tests
    route a synthetic workload through the real ingestion path.  Returns
    the number of task rows written.
    """
    schema = schema or TraceSchema()
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return _write_rows(jobs, handle, schema)
    return _write_rows(jobs, destination, schema)


def _write_rows(jobs: Iterable[Job], handle: IO[str], schema: TraceSchema) -> int:
    columns = [schema.job_id, schema.submit_time, schema.duration]
    if schema.task_id is not None:
        columns.insert(1, schema.task_id)
    for optional in (
        schema.cpu_request,
        schema.ram_request_gb,
        schema.network_request_mbps,
        schema.input_size_gb,
        schema.priority,
    ):
        if optional is not None:
            columns.append(optional)
    writer = csv.DictWriter(handle, fieldnames=columns)
    writer.writeheader()
    rows = 0
    for job in jobs:
        for task in job.tasks:
            row = {
                schema.job_id: job.job_id,
                schema.submit_time: task.submit_time / schema.time_scale,
                schema.duration: (
                    "" if task.duration is None else task.duration / schema.time_scale
                ),
            }
            if schema.task_id is not None:
                row[schema.task_id] = task.task_id
            if schema.cpu_request is not None:
                row[schema.cpu_request] = task.cpu_request / schema.cpu_scale
            if schema.ram_request_gb is not None:
                row[schema.ram_request_gb] = task.ram_request_gb / schema.ram_scale
            if schema.network_request_mbps is not None:
                row[schema.network_request_mbps] = task.network_request_mbps
            if schema.input_size_gb is not None:
                row[schema.input_size_gb] = task.input_size_gb
            if schema.priority is not None:
                row[schema.priority] = task.priority
            writer.writerow(row)
            rows += 1
    return rows
