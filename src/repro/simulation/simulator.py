"""Event-driven cluster simulator (the paper's "Fauxmaster"-style setup).

The simulator replays a workload against a *real* scheduler instance: the
scheduler's actual placement code runs on every invocation, and the measured
algorithm runtime is charged as virtual time before the resulting placements
take effect.  This mirrors how the paper's simulator runs Firmament's real
code and scheduling logic against simulated machines, stubbing out only RPCs
and task execution.

Two scheduler shapes are supported transparently:

* flow-based schedulers (:class:`~repro.core.scheduler.FirmamentScheduler`),
  whose whole decision becomes visible when the solver finishes, and
* queue-based baselines (:class:`~repro.baselines.base.QueueBasedScheduler`),
  whose per-task decisions become visible one after another.

Placement latency and response time are recorded on the task objects, so the
metrics module can summarize a run from the final cluster state alone.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.state import ClusterState
from repro.cluster.task import Job, Task, TaskState
from repro.core.scheduler import SchedulingDecision
from repro.simulation.metrics import MetricsSummary, collect_metrics


@dataclass
class SimulationConfig:
    """Simulator parameters.

    Attributes:
        max_time: Stop the simulation at this virtual time (seconds).
        runtime_scale: Multiply the measured algorithm runtime by this factor
            before charging it as virtual time.  1.0 charges the Python
            solver's real runtime; values below 1.0 model the faster C++
            solver of the paper, values above 1.0 model larger clusters.
        min_scheduler_interval: Do not start a new scheduling run within this
            many virtual seconds of the previous run starting (batching).
        reschedule_running: Invoke the scheduler even when no task is
            pending, letting flow-based schedulers rebalance running work.
        drain: Keep simulating past ``max_time`` (but submit nothing new)
            until all batch tasks have completed.
    """

    max_time: float = 3_600.0
    runtime_scale: float = 1.0
    min_scheduler_interval: float = 0.0
    reschedule_running: bool = False
    drain: bool = True


@dataclass
class ScheduleRecord:
    """One scheduler invocation, for timeline-style experiments (Figure 16)."""

    start_time: float
    algorithm_runtime: float
    num_placements: int
    num_pending_before: int
    winning_algorithm: str = ""
    #: Graph-maintenance wall time of the round, attributed separately from
    #: the solver runtime (flow-based schedulers only; zero for baselines).
    graph_update_seconds: float = 0.0
    #: Wall time the round spent in price refine and the label pops its
    #: sweeps performed (zero for baseline schedulers).  Round-level
    #: attribution: the dual executors fold the cost-scaling leg's refine
    #: cost into the round even when relaxation wins, since the refine ran
    #: either way; attributes warm-rebuild rounds' dominant cost and
    #: exposes label-correcting degenerations in timelines.
    price_refine_seconds: float = 0.0
    price_refine_passes: int = 0
    #: Relaxation observability of the round (zero for baselines): nodes
    #: added across the relaxation leg's zero-reduced-cost trees and its
    #: dual-ascent count.  Round-level attribution like the price-refine
    #: fields: the dual executors fold the relaxation leg's counters into
    #: the winning result even when cost scaling wins, so timelines show
    #: what every round's relaxation leg cost.
    relaxation_tree_nodes: int = 0
    dual_ascents: int = 0
    #: Worker transport of the round (parallel executor only): 1 when the
    #: relaxation worker was fed a full DIMACS snapshot, resp. an
    #: incremental delta/resync payload (both zero when the worker sat the
    #: round out).
    snapshot_ships: int = 0
    delta_ships: int = 0
    #: Robustness observability of the round: 1 when the round degraded
    #: (epsilon truncation or previous-placement reuse under a deadline),
    #: deadline hits attributed to the round's solver legs, worker
    #: respawns performed during the round, and 1 while the worker
    #: circuit breaker was open (all zero for baselines and fault-free
    #: sequential rounds).
    degraded_round: int = 0
    deadline_hits: int = 0
    worker_respawns: int = 0
    breaker_open: int = 0


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run."""

    state: ClusterState
    metrics: MetricsSummary
    schedule_records: List[ScheduleRecord] = field(default_factory=list)
    virtual_time: float = 0.0

    @property
    def algorithm_runtimes(self) -> List[float]:
        """Per-run algorithm runtimes in invocation order."""
        return [record.algorithm_runtime for record in self.schedule_records]


class ClusterSimulator:
    """Discrete-event simulator driving a scheduler against a cluster state."""

    _SUBMIT = 0
    _COMPLETE = 1
    _SCHEDULER_DONE = 2
    _MACHINE_FAIL = 3
    _MACHINE_RECOVER = 4

    def __init__(
        self,
        state: ClusterState,
        scheduler,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        """Create a simulator.

        Args:
            state: Initial cluster state (may already contain running tasks).
            scheduler: A Firmament scheduler or a queue-based baseline; it
                must expose ``schedule(state, now)`` returning a
                :class:`~repro.core.scheduler.SchedulingDecision`.
            config: Simulation parameters.
        """
        self.state = state
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        self._events: List[Tuple[float, int, int, object]] = []
        self._sequence = itertools.count()
        self._scheduler_busy = False
        self._last_schedule_start = -float("inf")
        # Change detection (Figure 2b): the scheduler is only invoked when
        # cluster state changed since the previous invocation started.
        self._state_version = 0
        self._scheduled_version = -1
        self.now = 0.0
        self.schedule_records: List[ScheduleRecord] = []
        # Completion events already scheduled for running tasks.
        for task in state.running_tasks():
            self._schedule_completion(task, task.start_time or 0.0)

    # ------------------------------------------------------------------ #
    # Workload submission
    # ------------------------------------------------------------------ #
    def submit_job(self, job: Job, time: Optional[float] = None) -> None:
        """Enqueue a job submission event at ``time`` (defaults to the job's
        own submit time)."""
        when = job.submit_time if time is None else time
        self._push(when, self._SUBMIT, job)

    def submit_jobs(self, jobs: List[Job]) -> None:
        """Enqueue submission events for a list of jobs."""
        for job in jobs:
            self.submit_job(job)

    def fail_machine_at(self, machine_id: int, time: float) -> None:
        """Enqueue a machine failure event.

        When the event fires, the machine's tasks are evicted back to the
        pending state (Section 5.2: machine failures reduce to capacity
        changes plus supply changes in the flow network) and the scheduler
        is re-invoked on the next opportunity.
        """
        self._push(time, self._MACHINE_FAIL, machine_id)

    def recover_machine_at(self, machine_id: int, time: float) -> None:
        """Enqueue a machine recovery event (the machine rejoins the cluster)."""
        self._push(time, self._MACHINE_RECOVER, machine_id)

    # ------------------------------------------------------------------ #
    # Event machinery
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time, kind, next(self._sequence), payload))

    def _schedule_completion(self, task: Task, start_time: float) -> None:
        if task.duration is None:
            return
        # The payload carries the start time the event was scheduled for, so
        # a stale completion (the task was preempted or evicted and later
        # restarted) can be recognized and ignored.
        self._push(start_time + task.duration, self._COMPLETE, (task.task_id, start_time))

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run the simulation until the event queue drains or time runs out."""
        config = self.config
        # Hard stop protecting against workloads that can never drain (e.g.
        # pending tasks behind never-completing service jobs).
        hard_stop = config.max_time * 2.0 + 600.0
        while self._events:
            time, kind, _, payload = heapq.heappop(self._events)
            if time > hard_stop:
                break
            if time > config.max_time and not (config.drain and kind != self._SUBMIT):
                continue
            self.now = max(self.now, time)
            if kind == self._SUBMIT:
                self._handle_submission(payload)
            elif kind == self._COMPLETE:
                self._handle_completion(payload)
            elif kind == self._SCHEDULER_DONE:
                self._handle_scheduler_done(payload)
            elif kind == self._MACHINE_FAIL:
                self._handle_machine_failure(payload)
            elif kind == self._MACHINE_RECOVER:
                self._handle_machine_recovery(payload)
            self._maybe_run_scheduler()

        metrics = collect_metrics(
            self.state,
            algorithm_runtimes=[r.algorithm_runtime for r in self.schedule_records],
            graph_update_times=[
                r.graph_update_seconds for r in self.schedule_records
            ],
            price_refine_times=[
                r.price_refine_seconds for r in self.schedule_records
            ],
            relaxation_tree_nodes=[
                r.relaxation_tree_nodes for r in self.schedule_records
            ],
            relaxation_dual_ascents=[
                r.dual_ascents for r in self.schedule_records
            ],
            snapshot_ships=[r.snapshot_ships for r in self.schedule_records],
            delta_ships=[r.delta_ships for r in self.schedule_records],
            degraded_rounds=[r.degraded_round for r in self.schedule_records],
            deadline_hits=[r.deadline_hits for r in self.schedule_records],
            worker_respawns=[r.worker_respawns for r in self.schedule_records],
            breaker_open_rounds=[r.breaker_open for r in self.schedule_records],
        )
        return SimulationResult(
            state=self.state,
            metrics=metrics,
            schedule_records=self.schedule_records,
            virtual_time=self.now,
        )

    def close(self) -> None:
        """Release scheduler resources (worker subprocesses and the like).

        Call after the last :meth:`run` when the scheduler uses the parallel
        dual executor; a simulator driving a plain solver has nothing to
        release and the call is a no-op.
        """
        close = getattr(self.scheduler, "close", None)
        if callable(close):
            close()

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_submission(self, job: Job) -> None:
        self.state.submit_job(job)
        self._state_version += 1

    def _handle_completion(self, payload) -> None:
        if isinstance(payload, tuple):
            task_id, scheduled_start = payload
        else:  # pragma: no cover - compatibility with externally pushed events
            task_id, scheduled_start = payload, None
        task = self.state.tasks.get(task_id)
        if task is None or not task.is_running:
            # The task was preempted, migrated, or evicted; its completion is
            # rescheduled when it restarts.
            return
        if scheduled_start is not None and task.start_time != scheduled_start:
            # Stale event from before a preemption/eviction: the task has
            # restarted since and its new completion event is already queued.
            return
        self.state.complete_task(task_id, self.now)
        self._state_version += 1

    def _handle_scheduler_done(self, decision: SchedulingDecision) -> None:
        self._scheduler_busy = False
        self._apply_decision(decision, self.now)

    def _handle_machine_failure(self, machine_id: int) -> None:
        machine = self.state.topology.machines.get(machine_id)
        if machine is None or not machine.is_available:
            return
        evicted = self.state.fail_machine(machine_id, self.now)
        # Evicted tasks restart from scratch once re-placed; their stale
        # completion events are ignored because the tasks are no longer
        # running when those events fire.
        self._state_version += 1 + len(evicted)

    def _handle_machine_recovery(self, machine_id: int) -> None:
        machine = self.state.topology.machines.get(machine_id)
        if machine is None or machine.is_available:
            return
        self.state.recover_machine(machine_id, self.now)
        self._state_version += 1

    # ------------------------------------------------------------------ #
    # Scheduler invocation
    # ------------------------------------------------------------------ #
    def _maybe_run_scheduler(self) -> None:
        if self._scheduler_busy:
            return
        if self._state_version == self._scheduled_version:
            # Nothing changed since the last run started; rerunning the
            # solver could not produce a different answer (change detection,
            # Figure 2b of the paper).
            return
        has_pending = any(True for _ in self.state.pending_tasks())
        if not has_pending and not self.config.reschedule_running:
            return
        if not has_pending and not self.state.running_tasks():
            return
        if self.now - self._last_schedule_start < self.config.min_scheduler_interval:
            return
        if self.now > self.config.max_time and self.state.total_free_slots() == 0:
            # Draining: nothing can be placed until a slot frees up, so wait
            # for the next completion instead of spinning the solver.
            return
        pending_before = len(self.state.pending_tasks())
        decision = self.scheduler.schedule(self.state, self.now)
        runtime = decision.algorithm_runtime * self.config.runtime_scale
        winning = ""
        refine_seconds = 0.0
        refine_passes = 0
        relaxation_tree_nodes = 0
        dual_ascents = 0
        snapshot_ships = 0
        delta_ships = 0
        deadline_hits = 0
        worker_respawns = 0
        breaker_open = 0
        degraded_round = 1 if getattr(decision, "degraded", False) else 0
        if decision.solver_result is not None:
            winning = decision.solver_result.algorithm
            statistics = decision.solver_result.statistics
            refine_seconds = statistics.price_refine_seconds
            refine_passes = statistics.price_refine_passes
            relaxation_tree_nodes = statistics.relaxation_tree_nodes
            dual_ascents = statistics.dual_ascents
            snapshot_ships = statistics.snapshot_ships
            delta_ships = statistics.delta_ships
            deadline_hits = statistics.deadline_hits
            worker_respawns = statistics.worker_respawns
            breaker_open = statistics.breaker_open
            degraded_round = max(degraded_round, statistics.degraded_round)
        self.schedule_records.append(
            ScheduleRecord(
                start_time=self.now,
                algorithm_runtime=runtime,
                num_placements=decision.num_assignments,
                num_pending_before=pending_before,
                winning_algorithm=winning,
                graph_update_seconds=getattr(decision, "graph_update_seconds", 0.0),
                price_refine_seconds=refine_seconds,
                price_refine_passes=refine_passes,
                relaxation_tree_nodes=relaxation_tree_nodes,
                dual_ascents=dual_ascents,
                snapshot_ships=snapshot_ships,
                delta_ships=delta_ships,
                degraded_round=degraded_round,
                deadline_hits=deadline_hits,
                worker_respawns=worker_respawns,
                breaker_open=breaker_open,
            )
        )
        self._last_schedule_start = self.now
        self._scheduled_version = self._state_version
        self._scheduler_busy = True
        self._push(self.now + runtime, self._SCHEDULER_DONE, decision)

    def _apply_decision(self, decision: SchedulingDecision, finish_time: float) -> None:
        """Apply a decision, tolerating state drift during the solver run."""
        start_time = finish_time
        if self.schedule_records:
            start_time = self.schedule_records[-1].start_time

        for task_id in decision.preemptions:
            task = self.state.tasks.get(task_id)
            if task is not None and task.is_running:
                self.state.preempt_task(task_id, finish_time)
                self._state_version += 1

        for task_id, machine_id in decision.migrations.items():
            task = self.state.tasks.get(task_id)
            if task is None or not task.is_running:
                continue
            if task.machine_id == machine_id:
                continue
            if self.state.free_slots(machine_id) <= 0:
                continue
            self.state.migrate_task(task_id, machine_id, finish_time)
            self._schedule_completion(task, finish_time)
            self._state_version += 1

        for task_id, machine_id in decision.placements.items():
            task = self.state.tasks.get(task_id)
            if task is None or not task.is_pending:
                continue
            if self.state.free_slots(machine_id) <= 0:
                continue
            effective = finish_time
            if task_id in decision.per_task_latency:
                effective = min(
                    finish_time, start_time + decision.per_task_latency[task_id]
                )
            self.state.place_task(task_id, machine_id, effective)
            self._schedule_completion(task, effective)
            self._state_version += 1
