"""Event-driven cluster simulator (the paper's "Fauxmaster"-style setup).

The simulator replays a workload against a *real* scheduler instance: the
scheduler's actual placement code runs on every invocation, and the measured
algorithm runtime is charged as virtual time before the resulting placements
take effect.  This mirrors how the paper's simulator runs Firmament's real
code and scheduling logic against simulated machines, stubbing out only RPCs
and task execution.

The architecture follows Firmament's own simulator (``simulator.cc``):

* an :class:`~repro.simulation.events.EventManager` holds one typed event
  queue (``TASK_SUBMIT``, ``TASK_END_RUNTIME``, ``ADD_MACHINE``,
  ``REMOVE_MACHINE``, ``SCHEDULER_DONE``, ``SCHEDULER_WAKE``), and
* a :class:`SimulatorBridge` interprets events against cluster state and
  drives batch scheduling off the event clock.

Every recorded scheduler round is either **applied** or explicitly
**voided** -- never silently lost.  When a round's ``SCHEDULER_DONE`` event
falls outside the simulation window (past ``max_time`` without draining, or
past the hard stop), its record is marked ``voided`` and counted in
``SimulationResult.rounds_voided``; placements skipped during apply because
cluster state drifted under the solver are counted per record as
``num_dropped``.  The conservation law checked by
:func:`verify_placement_conservation` (and fuzzed by the event-order suite)
is::

    sum(record.num_placements) ==
        placements applied to state + drift-dropped + voided rounds' placements

Two scheduler shapes are supported transparently:

* flow-based schedulers (:class:`~repro.core.scheduler.FirmamentScheduler`),
  whose whole decision becomes visible when the solver finishes, and
* queue-based baselines (:class:`~repro.baselines.base.QueueBasedScheduler`),
  whose per-task decisions become visible one after another.

Workloads can be submitted up front (``submit_jobs``) or *streamed*
(``submit_job_stream``): a job iterator is pulled one job at a time as the
event clock reaches each submission, so trace-scale replays (10^5--10^6
tasks) never materialize the whole workload in the queue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import Job, Task
from repro.core.scheduler import SchedulingDecision
from repro.simulation.events import EventManager, EventType, SimulationEvent
from repro.simulation.metrics import MetricsSummary, collect_metrics


@dataclass
class SimulationConfig:
    """Simulator parameters.

    Attributes:
        max_time: Stop the simulation at this virtual time (seconds).
        runtime_scale: Multiply the measured algorithm runtime by this factor
            before charging it as virtual time.  1.0 charges the Python
            solver's real runtime; values below 1.0 model the faster C++
            solver of the paper, values above 1.0 model larger clusters.
        min_scheduler_interval: Do not start a new scheduling run within this
            many virtual seconds of the previous run starting (batch mode;
            Firmament's batch step).  A run deferred by the interval is
            retried at the batch boundary via a ``SCHEDULER_WAKE`` event, so
            batching delays work by at most one interval rather than until
            the next workload event.
        reschedule_running: Invoke the scheduler even when no task is
            pending, letting flow-based schedulers rebalance running work.
        drain: Keep simulating past ``max_time`` (but submit nothing new)
            until all batch tasks have completed.  Without draining, rounds
            still in flight at ``max_time`` are voided, never applied.
        tie_break_seed: When set, same-timestamp events are processed in an
            order randomized by this seed instead of insertion order.  Used
            by the event-order fuzz suite to explore interleavings; leave
            ``None`` for deterministic FIFO behaviour.
    """

    max_time: float = 3_600.0
    runtime_scale: float = 1.0
    min_scheduler_interval: float = 0.0
    reschedule_running: bool = False
    drain: bool = True
    tie_break_seed: Optional[int] = None


@dataclass
class ScheduleRecord:
    """One scheduler invocation, for timeline-style experiments (Figure 16)."""

    start_time: float
    algorithm_runtime: float
    num_placements: int
    num_pending_before: int
    winning_algorithm: str = ""
    #: Apply-or-void accounting: placements + migrations of this round that
    #: were actually applied to cluster state when its ``SCHEDULER_DONE``
    #: event fired, resp. skipped at apply time because state drifted under
    #: the solver (task completed/evicted, slot taken).  For every round
    #: ``num_applied + num_dropped == num_placements`` unless the round was
    #: voided, in which case both stay zero.
    num_applied: int = 0
    num_dropped: int = 0
    #: True when the round's decision never took effect: its
    #: ``SCHEDULER_DONE`` fell outside the simulation window (past
    #: ``max_time`` without draining, or past the hard stop).  Voided
    #: rounds are counted in ``SimulationResult.rounds_voided`` -- a round
    #: is never silently lost.
    voided: bool = False
    #: Graph-maintenance wall time of the round, attributed separately from
    #: the solver runtime (flow-based schedulers only; zero for baselines).
    graph_update_seconds: float = 0.0
    #: Wall time the round spent in price refine and the label pops its
    #: sweeps performed (zero for baseline schedulers).  Round-level
    #: attribution: the dual executors fold the cost-scaling leg's refine
    #: cost into the round even when relaxation wins, since the refine ran
    #: either way; attributes warm-rebuild rounds' dominant cost and
    #: exposes label-correcting degenerations in timelines.
    price_refine_seconds: float = 0.0
    price_refine_passes: int = 0
    #: Relaxation observability of the round (zero for baselines): nodes
    #: added across the relaxation leg's zero-reduced-cost trees and its
    #: dual-ascent count.  Round-level attribution like the price-refine
    #: fields: the dual executors fold the relaxation leg's counters into
    #: the winning result even when cost scaling wins, so timelines show
    #: what every round's relaxation leg cost.
    relaxation_tree_nodes: int = 0
    dual_ascents: int = 0
    #: Worker transport of the round (parallel executor only): 1 when the
    #: relaxation worker was fed a full DIMACS snapshot, resp. an
    #: incremental delta/resync payload (both zero when the worker sat the
    #: round out).
    snapshot_ships: int = 0
    delta_ships: int = 0
    #: Robustness observability of the round: 1 when the round degraded
    #: (epsilon truncation or previous-placement reuse under a deadline),
    #: deadline hits attributed to the round's solver legs, worker
    #: respawns performed during the round, and 1 while the worker
    #: circuit breaker was open (all zero for baselines and fault-free
    #: sequential rounds).
    degraded_round: int = 0
    deadline_hits: int = 0
    worker_respawns: int = 0
    breaker_open: int = 0
    #: Sharded-scheduler observability of the round (zero/negative for
    #: monolithic schedulers and baselines): how many cells solved, which
    #: cell bounded the round's wall clock (straggler attribution) and its
    #: runtime, and how many tasks the cross-cell balancer re-homed.
    num_cells: int = 0
    straggler_cell: int = -1
    straggler_seconds: float = 0.0
    cross_cell_migrations: int = 0


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run."""

    state: ClusterState
    metrics: MetricsSummary
    schedule_records: List[ScheduleRecord] = field(default_factory=list)
    virtual_time: float = 0.0
    #: Scheduler rounds whose decision fell outside the simulation window
    #: and was explicitly voided instead of applied (end-of-run truth:
    #: ``schedule_records`` never claims placements the state never saw).
    rounds_voided: int = 0
    #: Placement actions (starts + migrations) actually applied to state.
    placements_applied: int = 0
    #: Placement actions skipped at apply time because cluster state
    #: drifted while the solver ran (accounted per record, never silent).
    placements_dropped: int = 0
    #: Events the simulation processed (event-engine throughput metric).
    events_processed: int = 0

    @property
    def algorithm_runtimes(self) -> List[float]:
        """Per-run algorithm runtimes in invocation order."""
        return [record.algorithm_runtime for record in self.schedule_records]


def verify_placement_conservation(result: SimulationResult) -> Dict[str, int]:
    """Check the records-vs-applied placement conservation law.

    Every placement a :class:`ScheduleRecord` claims must be accounted for:
    applied to cluster state, dropped at apply time due to state drift, or
    part of an explicitly voided round.  Raises :class:`AssertionError` on
    any violation; returns the tallied counts otherwise.  The event-order
    fuzz suite asserts this on every run, under every interleaving.
    """
    recorded = applied = dropped = voided = 0
    for index, record in enumerate(result.schedule_records):
        recorded += record.num_placements
        if record.voided:
            if record.num_applied or record.num_dropped:
                raise AssertionError(
                    f"round {index}: voided but has applied/dropped counts "
                    f"({record.num_applied}/{record.num_dropped})"
                )
            voided += record.num_placements
        else:
            if record.num_applied + record.num_dropped != record.num_placements:
                raise AssertionError(
                    f"round {index}: {record.num_placements} recorded placements "
                    f"but {record.num_applied} applied + {record.num_dropped} "
                    "dropped (silent loss)"
                )
            applied += record.num_applied
            dropped += record.num_dropped
    if applied != result.placements_applied:
        raise AssertionError(
            f"per-record applied sum {applied} != placements applied to state "
            f"{result.placements_applied}"
        )
    if dropped != result.placements_dropped:
        raise AssertionError(
            f"per-record dropped sum {dropped} != simulator dropped count "
            f"{result.placements_dropped}"
        )
    if recorded != applied + dropped + voided:
        raise AssertionError(
            f"conservation violated: {recorded} recorded != {applied} applied "
            f"+ {dropped} dropped + {voided} voided"
        )
    return {
        "recorded": recorded,
        "applied": applied,
        "dropped": dropped,
        "voided": voided,
        "rounds_voided": result.rounds_voided,
    }


class SimulatorBridge:
    """Connects the event queue to cluster state and the scheduler.

    The bridge (Firmament's ``simulator_bridge.cc``) owns all event
    interpretation: it mutates cluster state for workload and machine
    events, decides when to invoke the scheduler, charges the measured
    algorithm runtime as virtual time by queueing ``SCHEDULER_DONE``, and
    guarantees each round's decision is applied exactly once or explicitly
    voided.
    """

    def __init__(
        self,
        state: ClusterState,
        scheduler,
        config: SimulationConfig,
        events: EventManager,
    ) -> None:
        self.state = state
        self.scheduler = scheduler
        self.config = config
        self.events = events
        self.now = 0.0
        self.schedule_records: List[ScheduleRecord] = []
        self.rounds_voided = 0
        self.placements_applied = 0
        self.placements_dropped = 0
        self._scheduler_busy = False
        self._last_schedule_start = -float("inf")
        self._next_wake = -float("inf")
        # Change detection (Figure 2b): the scheduler is only invoked when
        # cluster state changed since the previous invocation started.
        self._state_version = 0
        self._scheduled_version = -1

    # ------------------------------------------------------------------ #
    # Event producers
    # ------------------------------------------------------------------ #
    def submit_job(self, job: Job, time: Optional[float] = None) -> None:
        """Enqueue a job submission event at ``time`` (defaults to the job's
        own submit time)."""
        when = job.submit_time if time is None else time
        self.events.add_event(when, EventType.TASK_SUBMIT, job)

    def submit_job_stream(self, jobs: Iterable[Job]) -> None:
        """Attach a streaming job source.

        Only the source's *next* job sits in the event queue at any time;
        when its submission fires, the following job is pulled and queued.
        Sources must yield jobs in non-decreasing ``submit_time`` order
        (trace readers and the synthetic generator both do); a job arriving
        out of order is clamped to the stream's current front so the event
        clock never runs backwards.
        """
        self._advance_stream(iter(jobs), after=-float("inf"))

    def _advance_stream(self, stream: Iterator[Job], after: float) -> None:
        job = next(stream, None)
        if job is None:
            return
        when = max(job.submit_time, after)
        self.events.add_event(when, EventType.TASK_SUBMIT, (job, stream))

    def fail_machine_at(self, machine_id: int, time: float) -> None:
        """Enqueue a machine removal (failure) event.

        When the event fires, the machine's tasks are evicted back to the
        pending state (Section 5.2: machine failures reduce to capacity
        changes plus supply changes in the flow network) and the scheduler
        is re-invoked on the next opportunity.
        """
        self.events.add_event(time, EventType.REMOVE_MACHINE, machine_id)

    def recover_machine_at(self, machine_id: int, time: float) -> None:
        """Enqueue a machine re-addition event (the machine rejoins)."""
        self.events.add_event(time, EventType.ADD_MACHINE, machine_id)

    def add_machine_at(self, machine: Machine, time: float) -> None:
        """Enqueue the addition of a brand-new machine to the cluster."""
        self.events.add_event(time, EventType.ADD_MACHINE, machine)

    def schedule_completion(self, task: Task, start_time: float) -> None:
        """Queue the task's runtime-expiry event for a placement."""
        if task.duration is None:
            return
        # The payload carries the start time the event was scheduled for, so
        # a stale completion (the task was preempted or evicted and later
        # restarted) can be recognized and ignored.
        self.events.add_event(
            start_time + task.duration,
            EventType.TASK_END_RUNTIME,
            (task.task_id, start_time),
        )

    # ------------------------------------------------------------------ #
    # Event interpretation
    # ------------------------------------------------------------------ #
    def handle(self, event: SimulationEvent) -> None:
        """Process one in-window event against cluster state."""
        self.now = max(self.now, event.time)
        kind = event.event_type
        if kind is EventType.TASK_SUBMIT:
            self._handle_submission(event.payload)
        elif kind is EventType.TASK_END_RUNTIME:
            self._handle_completion(event.payload)
        elif kind is EventType.SCHEDULER_DONE:
            self._handle_scheduler_done(event.payload)
        elif kind is EventType.REMOVE_MACHINE:
            self._handle_machine_removal(event.payload)
        elif kind is EventType.ADD_MACHINE:
            self._handle_machine_addition(event.payload)
        # SCHEDULER_WAKE advances the clock only; the retry happens in
        # maybe_run_scheduler, which the driver calls after every event.

    def void_round(self, event: SimulationEvent) -> None:
        """Explicitly void an in-flight round whose decision never lands.

        The round's record is marked ``voided`` and tallied in
        ``rounds_voided``; the scheduler is released so accounting stays
        truthful.  Called for ``SCHEDULER_DONE`` events that fall outside
        the simulation window -- the decision is *not* applied.
        """
        decision, record_index = event.payload
        record = self.schedule_records[record_index]
        record.voided = True
        self.rounds_voided += 1
        self._scheduler_busy = False
        # Keep scheduler-lifetime statistics truthful too: the scheduler
        # recorded this decision's placements when it produced them.
        statistics = getattr(self.scheduler, "statistics", None)
        record_void = getattr(statistics, "record_void", None)
        if callable(record_void):
            record_void(decision)

    def finalize(self) -> None:
        """Drain the queue on exit, voiding any still-queued rounds.

        Everything left in the queue is outside the simulation window; the
        only events that need accounting are in-flight ``SCHEDULER_DONE``
        rounds, which are voided so their records never claim placements
        the state never saw.
        """
        for event in self.events.drain():
            if event.event_type is EventType.SCHEDULER_DONE:
                self.void_round(event)

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_submission(self, payload) -> None:
        if isinstance(payload, tuple):
            job, stream = payload
            self.state.submit_job(job)
            self._advance_stream(stream, after=job.submit_time)
        else:
            self.state.submit_job(payload)
        self._state_version += 1

    def _handle_completion(self, payload) -> None:
        if isinstance(payload, tuple):
            task_id, scheduled_start = payload
        else:  # pragma: no cover - compatibility with externally pushed events
            task_id, scheduled_start = payload, None
        task = self.state.tasks.get(task_id)
        if task is None or not task.is_running:
            # The task was preempted, migrated, or evicted; its completion is
            # rescheduled when it restarts.
            return
        if scheduled_start is not None and task.start_time != scheduled_start:
            # Stale event from before a preemption/eviction: the task has
            # restarted since and its new completion event is already queued.
            return
        self.state.complete_task(task_id, self.now)
        self._state_version += 1

    def _handle_scheduler_done(self, payload) -> None:
        decision, record_index = payload
        self._scheduler_busy = False
        self._apply_decision(decision, record_index, self.now)

    def _handle_machine_removal(self, machine_id: int) -> None:
        machine = self.state.topology.machines.get(machine_id)
        if machine is None or not machine.is_available:
            return
        evicted = self.state.fail_machine(machine_id, self.now)
        # Evicted tasks restart from scratch once re-placed; their stale
        # completion events are ignored because the tasks are no longer
        # running when those events fire.
        self._state_version += 1 + len(evicted)

    def _handle_machine_addition(self, payload) -> None:
        if isinstance(payload, Machine):
            if payload.machine_id not in self.state.topology.machines:
                self.state.add_machine(payload)
                self._state_version += 1
            return
        machine = self.state.topology.machines.get(payload)
        if machine is None or machine.is_available:
            return
        self.state.recover_machine(payload, self.now)
        self._state_version += 1

    # ------------------------------------------------------------------ #
    # Scheduler invocation
    # ------------------------------------------------------------------ #
    def maybe_run_scheduler(self) -> None:
        """Start a scheduling round if the event state calls for one."""
        if self._scheduler_busy:
            return
        if self._state_version == self._scheduled_version:
            # Nothing changed since the last run started; rerunning the
            # solver could not produce a different answer (change detection,
            # Figure 2b of the paper).
            return
        config = self.config
        if self.now - self._last_schedule_start < config.min_scheduler_interval:
            # Batch mode: retry at the batch boundary instead of waiting
            # for the next workload event.
            wake_at = self._last_schedule_start + config.min_scheduler_interval
            if self._next_wake < wake_at:
                self._next_wake = wake_at
                self.events.add_event(wake_at, EventType.SCHEDULER_WAKE)
            return
        has_pending = self.state.num_pending_tasks > 0
        if not has_pending and not config.reschedule_running:
            return
        if not has_pending and not self.state.running_tasks():
            return
        if self.now > config.max_time and self.state.total_free_slots() == 0:
            # Draining: nothing can be placed until a slot frees up, so wait
            # for the next completion instead of spinning the solver.
            return
        pending_before = self.state.num_pending_tasks
        decision = self.scheduler.schedule(self.state, self.now)
        runtime = decision.algorithm_runtime * config.runtime_scale
        winning = ""
        refine_seconds = 0.0
        refine_passes = 0
        relaxation_tree_nodes = 0
        dual_ascents = 0
        snapshot_ships = 0
        delta_ships = 0
        deadline_hits = 0
        worker_respawns = 0
        breaker_open = 0
        num_cells = 0
        straggler_cell = -1
        straggler_seconds = 0.0
        cross_cell_migrations = 0
        degraded_round = 1 if getattr(decision, "degraded", False) else 0
        if decision.solver_result is not None:
            winning = decision.solver_result.algorithm
            statistics = decision.solver_result.statistics
            refine_seconds = statistics.price_refine_seconds
            refine_passes = statistics.price_refine_passes
            relaxation_tree_nodes = statistics.relaxation_tree_nodes
            dual_ascents = statistics.dual_ascents
            snapshot_ships = statistics.snapshot_ships
            delta_ships = statistics.delta_ships
            deadline_hits = statistics.deadline_hits
            worker_respawns = statistics.worker_respawns
            breaker_open = statistics.breaker_open
            num_cells = statistics.cells_solved
            straggler_cell = statistics.straggler_cell
            straggler_seconds = statistics.straggler_seconds
            cross_cell_migrations = statistics.cross_cell_migrations
            degraded_round = max(degraded_round, statistics.degraded_round)
        record_index = len(self.schedule_records)
        self.schedule_records.append(
            ScheduleRecord(
                start_time=self.now,
                algorithm_runtime=runtime,
                num_placements=decision.num_assignments,
                num_pending_before=pending_before,
                winning_algorithm=winning,
                graph_update_seconds=getattr(decision, "graph_update_seconds", 0.0),
                price_refine_seconds=refine_seconds,
                price_refine_passes=refine_passes,
                relaxation_tree_nodes=relaxation_tree_nodes,
                dual_ascents=dual_ascents,
                snapshot_ships=snapshot_ships,
                delta_ships=delta_ships,
                degraded_round=degraded_round,
                deadline_hits=deadline_hits,
                worker_respawns=worker_respawns,
                breaker_open=breaker_open,
                num_cells=num_cells,
                straggler_cell=straggler_cell,
                straggler_seconds=straggler_seconds,
                cross_cell_migrations=cross_cell_migrations,
            )
        )
        self._last_schedule_start = self.now
        self._scheduled_version = self._state_version
        self._scheduler_busy = True
        self.events.add_event(
            self.now + runtime, EventType.SCHEDULER_DONE, (decision, record_index)
        )

    def _apply_decision(
        self, decision: SchedulingDecision, record_index: int, finish_time: float
    ) -> None:
        """Apply a decision, tolerating state drift during the solver run.

        Placements and migrations skipped because the state moved under the
        solver (task finished or was evicted, slot taken) are counted on
        the round's record as ``num_dropped`` -- drift is tolerated but
        never silent.
        """
        record = self.schedule_records[record_index]
        start_time = record.start_time
        applied = 0
        dropped = 0

        for task_id in decision.preemptions:
            task = self.state.tasks.get(task_id)
            if task is not None and task.is_running:
                self.state.preempt_task(task_id, finish_time)
                self._state_version += 1

        for task_id, machine_id in decision.migrations.items():
            task = self.state.tasks.get(task_id)
            if task is None or not task.is_running:
                dropped += 1
                continue
            if task.machine_id == machine_id:
                dropped += 1
                continue
            if self.state.free_slots(machine_id) <= 0:
                dropped += 1
                continue
            self.state.migrate_task(task_id, machine_id, finish_time)
            self.schedule_completion(task, finish_time)
            self._state_version += 1
            applied += 1

        for task_id, machine_id in decision.placements.items():
            task = self.state.tasks.get(task_id)
            if task is None or not task.is_pending:
                dropped += 1
                continue
            if self.state.free_slots(machine_id) <= 0:
                dropped += 1
                continue
            effective = finish_time
            if task_id in decision.per_task_latency:
                effective = min(
                    finish_time, start_time + decision.per_task_latency[task_id]
                )
            self.state.place_task(task_id, machine_id, effective)
            self.schedule_completion(task, effective)
            self._state_version += 1
            applied += 1

        record.num_applied = applied
        record.num_dropped = dropped
        self.placements_applied += applied
        self.placements_dropped += dropped


class ClusterSimulator:
    """Discrete-event simulator driving a scheduler against a cluster state.

    Thin driver over :class:`~repro.simulation.events.EventManager` and
    :class:`SimulatorBridge`: the run loop pops typed events, delegates
    interpretation to the bridge, and enforces the simulation window
    (``max_time``, drain, hard stop), voiding -- never dropping -- rounds
    whose decisions cannot land inside it.
    """

    def __init__(
        self,
        state: ClusterState,
        scheduler,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        """Create a simulator.

        Args:
            state: Initial cluster state (may already contain running tasks).
            scheduler: A Firmament scheduler or a queue-based baseline; it
                must expose ``schedule(state, now)`` returning a
                :class:`~repro.core.scheduler.SchedulingDecision`.
            config: Simulation parameters.
        """
        self.state = state
        self.scheduler = scheduler
        self.config = config or SimulationConfig()
        tie_rng = (
            random.Random(self.config.tie_break_seed)
            if self.config.tie_break_seed is not None
            else None
        )
        self.events = EventManager(tie_break_rng=tie_rng)
        self.bridge = SimulatorBridge(state, scheduler, self.config, self.events)
        # Completion events already scheduled for running tasks.
        for task in state.running_tasks():
            self.bridge.schedule_completion(task, task.start_time or 0.0)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.bridge.now

    @property
    def schedule_records(self) -> List[ScheduleRecord]:
        """Per-round records in invocation order."""
        return self.bridge.schedule_records

    # ------------------------------------------------------------------ #
    # Workload submission
    # ------------------------------------------------------------------ #
    def submit_job(self, job: Job, time: Optional[float] = None) -> None:
        """Enqueue a job submission event at ``time`` (defaults to the job's
        own submit time)."""
        self.bridge.submit_job(job, time)

    def submit_jobs(self, jobs: List[Job]) -> None:
        """Enqueue submission events for a list of jobs."""
        for job in jobs:
            self.bridge.submit_job(job)

    def submit_job_stream(self, jobs: Iterable[Job]) -> None:
        """Attach a streaming job source (see :meth:`SimulatorBridge.submit_job_stream`)."""
        self.bridge.submit_job_stream(jobs)

    def fail_machine_at(self, machine_id: int, time: float) -> None:
        """Enqueue a machine failure (``REMOVE_MACHINE``) event."""
        self.bridge.fail_machine_at(machine_id, time)

    def recover_machine_at(self, machine_id: int, time: float) -> None:
        """Enqueue a machine recovery (``ADD_MACHINE``) event."""
        self.bridge.recover_machine_at(machine_id, time)

    def add_machine_at(self, machine: Machine, time: float) -> None:
        """Enqueue the addition of a new machine (``ADD_MACHINE``) event."""
        self.bridge.add_machine_at(machine, time)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run the simulation until the event queue drains or time runs out."""
        config = self.config
        events = self.events
        bridge = self.bridge
        # Hard stop protecting against workloads that can never drain (e.g.
        # pending tasks behind never-completing service jobs).
        hard_stop = config.max_time * 2.0 + 600.0
        while events:
            if events.peek_time() > hard_stop:
                break
            event = events.pop()
            if event.time > config.max_time and not (
                config.drain and event.event_type is not EventType.TASK_SUBMIT
            ):
                # Outside the simulation window and not draining: the event
                # is never processed.  An in-flight round finishing out here
                # must be voided explicitly, never silently skipped -- the
                # old loop left `_scheduler_busy` stuck and the round's
                # recorded placements unaccounted.
                if event.event_type is EventType.SCHEDULER_DONE:
                    bridge.void_round(event)
                continue
            bridge.handle(event)
            bridge.maybe_run_scheduler()
        # Hard stop (or any other exit with queued events): apply-or-void.
        bridge.finalize()

        records = bridge.schedule_records
        metrics = collect_metrics(
            self.state,
            algorithm_runtimes=[r.algorithm_runtime for r in records],
            graph_update_times=[r.graph_update_seconds for r in records],
            price_refine_times=[r.price_refine_seconds for r in records],
            relaxation_tree_nodes=[r.relaxation_tree_nodes for r in records],
            relaxation_dual_ascents=[r.dual_ascents for r in records],
            snapshot_ships=[r.snapshot_ships for r in records],
            delta_ships=[r.delta_ships for r in records],
            degraded_rounds=[r.degraded_round for r in records],
            deadline_hits=[r.deadline_hits for r in records],
            worker_respawns=[r.worker_respawns for r in records],
            breaker_open_rounds=[r.breaker_open for r in records],
            cells_solved=[r.num_cells for r in records],
            straggler_cells=[r.straggler_cell for r in records],
            cross_cell_migrations=[r.cross_cell_migrations for r in records],
        )
        return SimulationResult(
            state=self.state,
            metrics=metrics,
            schedule_records=records,
            virtual_time=bridge.now,
            rounds_voided=bridge.rounds_voided,
            placements_applied=bridge.placements_applied,
            placements_dropped=bridge.placements_dropped,
            events_processed=events.num_events_processed,
        )

    def close(self) -> None:
        """Release scheduler resources (worker subprocesses and the like).

        Call after the last :meth:`run` when the scheduler uses the parallel
        dual executor; a simulator driving a plain solver has nothing to
        release and the call is a no-op.
        """
        close = getattr(self.scheduler, "close", None)
        if callable(close):
            close()
