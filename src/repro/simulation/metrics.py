"""Metrics collected from simulation runs.

The experiments report three families of metrics (Figure 1 in the paper):
per-task placement latency (submission to placement), per-task and per-job
response time (submission to completion), and the scheduler's algorithm
runtime per run.  Data locality -- the fraction of input data local to the
machine a task ran on -- is additionally reported for the Quincy-policy
experiments (Table 15b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.cluster.state import ClusterState
from repro.cluster.task import JobType


@dataclass
class MetricsSummary:
    """Summary of one simulation run."""

    placement_latencies: List[float] = field(default_factory=list)
    response_times: List[float] = field(default_factory=list)
    job_response_times: List[float] = field(default_factory=list)
    algorithm_runtimes: List[float] = field(default_factory=list)
    #: Per-run graph-maintenance wall times (flow-based schedulers only),
    #: so runs can attribute time to graph updates vs the solver.
    graph_update_times: List[float] = field(default_factory=list)
    #: Per-run price-refine wall times (zero for baselines).  Round-level
    #: attribution: the refine runs inside the cost-scaling leg whether or
    #: not that leg wins the race, so the dual executors fold the leg's
    #: refine cost into the round's statistics even when relaxation wins.
    #: The dominant cost of warm-rebuild rounds, attributed separately so
    #: fig14-style runs can show where the solver's time goes.
    price_refine_times: List[float] = field(default_factory=list)
    #: Per-run relaxation-leg counters (zero for baselines), attributed at
    #: round level like ``price_refine_times``: tree nodes grown and dual
    #: ascents performed by the round's relaxation run whether or not it
    #: won the race.  The ascent series is the contention signal behind
    #: Figures 8/9 -- it explodes exactly where relaxation degrades.
    relaxation_tree_nodes: List[int] = field(default_factory=list)
    relaxation_dual_ascents: List[int] = field(default_factory=list)
    #: Per-run worker-transport counters of the parallel executor: whether
    #: the round fed the relaxation worker a full DIMACS snapshot or an
    #: incremental delta/resync payload.  On a steady-state replay the
    #: snapshot count should stay at the cold-start 1; see
    #: :meth:`delta_ship_ratio`.
    snapshot_ships: List[int] = field(default_factory=list)
    delta_ships: List[int] = field(default_factory=list)
    #: Per-run robustness counters (zero everywhere on a fault-free run
    #: with no deadline configured): whether each round degraded (epsilon
    #: truncation or previous-placement reuse), how many solver legs hit
    #: the round deadline, worker respawns performed, and whether the
    #: worker circuit breaker was open during the round.
    degraded_rounds: List[int] = field(default_factory=list)
    deadline_hits: List[int] = field(default_factory=list)
    worker_respawns: List[int] = field(default_factory=list)
    breaker_open_rounds: List[int] = field(default_factory=list)
    #: Per-run sharded-scheduler counters (empty/zero for monolithic
    #: schedulers and baselines): how many cells each round solved, which
    #: cell bounded each round's wall clock (-1 when no cell solved), and
    #: how many tasks the cross-cell balancer re-homed per round.
    cells_solved: List[int] = field(default_factory=list)
    straggler_cells: List[int] = field(default_factory=list)
    cross_cell_migrations: List[int] = field(default_factory=list)
    tasks_completed: int = 0
    tasks_placed: int = 0
    tasks_unplaced: int = 0
    data_locality: float = 0.0

    def placement_latency_percentile(self, q: float) -> float:
        """Return the q-th percentile of task placement latency."""
        return percentile(self.placement_latencies, q)

    def response_time_percentile(self, q: float) -> float:
        """Return the q-th percentile of task response time."""
        return percentile(self.response_times, q)

    def algorithm_runtime_percentile(self, q: float) -> float:
        """Return the q-th percentile of per-run algorithm runtime."""
        return percentile(self.algorithm_runtimes, q)

    def mean_algorithm_runtime(self) -> float:
        """Return the mean per-run algorithm runtime."""
        if not self.algorithm_runtimes:
            return 0.0
        return sum(self.algorithm_runtimes) / len(self.algorithm_runtimes)

    def mean_graph_update_time(self) -> float:
        """Return the mean per-run graph-maintenance time."""
        if not self.graph_update_times:
            return 0.0
        return sum(self.graph_update_times) / len(self.graph_update_times)

    def mean_price_refine_time(self) -> float:
        """Return the mean per-run price-refine time of the winning solver."""
        if not self.price_refine_times:
            return 0.0
        return sum(self.price_refine_times) / len(self.price_refine_times)

    def mean_dual_ascents(self) -> float:
        """Return the mean per-run dual-ascent count of the relaxation leg."""
        if not self.relaxation_dual_ascents:
            return 0.0
        return sum(self.relaxation_dual_ascents) / len(self.relaxation_dual_ascents)

    def delta_ship_ratio(self) -> float:
        """Fraction of worker payloads shipped incrementally (delta/resync).

        1.0 means every consulted round crossed the process boundary as an
        O(|changes|) payload; full DIMACS snapshots then happened only on
        rounds where the worker was not consulted at all (cold start
        excepted).  Returns 0.0 when the worker was never consulted.
        """
        deltas = sum(self.delta_ships)
        snapshots = sum(self.snapshot_ships)
        total = deltas + snapshots
        if total == 0:
            return 0.0
        return deltas / total

    def degraded_round_count(self) -> int:
        """Number of rounds that finished degraded (never stalled)."""
        return sum(1 for flag in self.degraded_rounds if flag)

    def total_worker_respawns(self) -> int:
        """Total relaxation-worker respawns across the run."""
        return sum(self.worker_respawns)

    def breaker_open_round_count(self) -> int:
        """Number of rounds served while the worker breaker was open."""
        return sum(1 for flag in self.breaker_open_rounds if flag)

    def total_cross_cell_migrations(self) -> int:
        """Tasks the balancer re-homed to another cell across the run."""
        return sum(self.cross_cell_migrations)

    def straggler_attribution(self) -> Dict[int, int]:
        """How often each cell bounded a round's wall clock.

        Maps cell index to the number of rounds it was the straggler; a
        healthy partition spreads the counts, while one hot cell
        monopolizing them is the signal to look at that cell's load (or
        the balancer's ceiling).  Rounds where no cell solved (-1) are
        excluded.
        """
        counts: Dict[int, int] = {}
        for cell in self.straggler_cells:
            if cell >= 0:
                counts[cell] = counts.get(cell, 0) + 1
        return counts


def collect_metrics(
    state: ClusterState,
    algorithm_runtimes: Optional[Sequence[float]] = None,
    batch_only: bool = True,
    graph_update_times: Optional[Sequence[float]] = None,
    price_refine_times: Optional[Sequence[float]] = None,
    relaxation_tree_nodes: Optional[Sequence[int]] = None,
    relaxation_dual_ascents: Optional[Sequence[int]] = None,
    snapshot_ships: Optional[Sequence[int]] = None,
    delta_ships: Optional[Sequence[int]] = None,
    degraded_rounds: Optional[Sequence[int]] = None,
    deadline_hits: Optional[Sequence[int]] = None,
    worker_respawns: Optional[Sequence[int]] = None,
    breaker_open_rounds: Optional[Sequence[int]] = None,
    cells_solved: Optional[Sequence[int]] = None,
    straggler_cells: Optional[Sequence[int]] = None,
    cross_cell_migrations: Optional[Sequence[int]] = None,
) -> MetricsSummary:
    """Build a :class:`MetricsSummary` from the final cluster state.

    Args:
        state: Cluster state after the simulation finished.
        algorithm_runtimes: Per-run solver runtimes recorded by the driver.
        batch_only: Restrict per-task metrics to batch tasks.  The filter
            applies to *all* task-level counters -- placement latency and
            response time share one denominator population, so the
            placement percentiles describe the same tasks the completion
            counts do (service tasks never complete; mixing them into the
            placement side only would skew the comparison).
        graph_update_times: Per-run graph-maintenance wall times.
        price_refine_times: Per-run price-refine wall times of the winning
            solver.
        relaxation_tree_nodes: Per-run relaxation tree sizes (round-level).
        relaxation_dual_ascents: Per-run relaxation dual-ascent counts.
        snapshot_ships: Per-run full-snapshot worker payload counts.
        delta_ships: Per-run incremental worker payload counts.
        degraded_rounds: Per-run degraded-round flags.
        deadline_hits: Per-run solver-leg deadline-hit counts.
        worker_respawns: Per-run relaxation-worker respawn counts.
        breaker_open_rounds: Per-run breaker-open flags.
        cells_solved: Per-run cell counts of the sharded scheduler.
        straggler_cells: Per-run straggler-cell indices (-1 when none).
        cross_cell_migrations: Per-run balancer re-homing counts.
    """
    summary = MetricsSummary()
    if algorithm_runtimes:
        summary.algorithm_runtimes = list(algorithm_runtimes)
    if graph_update_times:
        summary.graph_update_times = list(graph_update_times)
    if price_refine_times:
        summary.price_refine_times = list(price_refine_times)
    if relaxation_tree_nodes:
        summary.relaxation_tree_nodes = list(relaxation_tree_nodes)
    if relaxation_dual_ascents:
        summary.relaxation_dual_ascents = list(relaxation_dual_ascents)
    if snapshot_ships:
        summary.snapshot_ships = list(snapshot_ships)
    if delta_ships:
        summary.delta_ships = list(delta_ships)
    if degraded_rounds:
        summary.degraded_rounds = list(degraded_rounds)
    if deadline_hits:
        summary.deadline_hits = list(deadline_hits)
    if worker_respawns:
        summary.worker_respawns = list(worker_respawns)
    if breaker_open_rounds:
        summary.breaker_open_rounds = list(breaker_open_rounds)
    if cells_solved:
        summary.cells_solved = list(cells_solved)
    if straggler_cells:
        summary.straggler_cells = list(straggler_cells)
    if cross_cell_migrations:
        summary.cross_cell_migrations = list(cross_cell_migrations)

    for task in state.tasks.values():
        job = state.jobs.get(task.job_id)
        is_service = job is not None and job.job_type is JobType.SERVICE
        if batch_only and is_service:
            # One consistent population: service tasks are excluded from
            # the placement-side counters too, not just completions.
            continue
        latency = task.placement_latency()
        if latency is not None:
            summary.placement_latencies.append(latency)
            summary.tasks_placed += 1
        if task.is_pending:
            # Awaiting placement at the end of the run: never placed
            # (SUBMITTED) *or* evicted/preempted and not re-placed
            # (PREEMPTED).  An evicted task that ran earlier also counts
            # in ``tasks_placed`` -- it was placed at least once.
            summary.tasks_unplaced += 1
        response = task.response_time()
        if response is not None:
            summary.response_times.append(response)
            summary.tasks_completed += 1

    for job in state.jobs.values():
        if batch_only and job.job_type is JobType.SERVICE:
            continue
        response = job.response_time()
        if response is not None:
            summary.job_response_times.append(response)

    summary.data_locality = input_data_locality(state, batch_only=batch_only)
    return summary


def input_data_locality(state: ClusterState, batch_only: bool = False) -> float:
    """Return the fraction of input data that was local to tasks' machines.

    Only tasks that have been placed at least once and declare an input size
    contribute.  The metric matches Table 15b in the paper: the preference
    threshold of the Quincy policy directly controls it.

    ``batch_only`` restricts the metric to batch tasks, the same filter
    every other task-level counter of :func:`collect_metrics` applies --
    the locality percentage must describe the same task population as the
    placement and completion counts it is reported next to (service tasks
    used to leak into this one metric only, skewing it whenever service
    jobs declared inputs).

    A task evicted after running (``machine_id`` is ``None`` but it was
    placed) is credited with the locality of the *last* machine it ran on:
    that is the placement whose input reads actually happened.  Charging
    its full ``input_size_gb`` with zero possible local credit -- as the
    old ``machine_id``-only accounting did -- deflated the metric for
    every run with evictions.
    """
    local_gb = 0.0
    total_gb = 0.0
    for task in state.tasks.values():
        if task.input_size_gb <= 0:
            continue
        if batch_only:
            job = state.jobs.get(task.job_id)
            if job is not None and job.job_type is JobType.SERVICE:
                continue
        machine_id = task.machine_id
        if machine_id is None:
            machine_id = task.last_machine_id
        if machine_id is None:
            # Never ran anywhere: no input was read, nothing to charge.
            continue
        total_gb += task.input_size_gb
        local_gb += task.input_size_gb * task.locality_fraction(machine_id)
    if total_gb == 0:
        return 0.0
    return local_gb / total_gb
