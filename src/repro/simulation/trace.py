"""Synthetic Google-like workload trace generator.

The paper's evaluation replays the public Google cluster trace [Reiss et
al., SoCC 2012] against Firmament.  That trace is not redistributable with
this reproduction, so this module generates a synthetic trace with the same
statistical structure the experiments depend on:

* jobs arrive as a Poisson process, scaled so a target slot utilization is
  reached in steady state;
* job sizes are heavy-tailed -- most jobs are small, but about 1.2 % have
  more than 1,000 tasks (scaled down proportionally for small clusters);
* the workload mixes short batch tasks (heavy-tailed, lognormal durations)
  with long-running service jobs, classified by priority as in Omega;
* batch task input sizes follow the cross-industry MapReduce distributions
  of Chen et al. (VLDB 2012), estimated from task runtime, and the input's
  block placement induces per-machine locality fractions for the Quincy
  policy.

A ``speedup`` factor divides durations and interarrival times, reproducing
the accelerated-trace experiment of Figure 18.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.task import Job, JobType, Task
from repro.cluster.topology import ClusterTopology


@dataclass
class TraceConfig:
    """Parameters of the synthetic Google-like trace.

    Attributes:
        num_machines: Number of machines in the simulated cluster (the trace
            is scaled so per-machine load is comparable at any cluster size).
        slots_per_machine: Task slots per machine.
        target_utilization: Steady-state fraction of slots occupied.
        duration: Length of the generated trace in (virtual) seconds.
        speedup: Divide all durations and interarrival times by this factor
            (Figure 18's accelerated replay).
        service_job_fraction: Fraction of jobs that are long-running services.
        mean_tasks_per_job: Mean job size before the heavy tail is applied.
        large_job_fraction: Fraction of jobs drawn from the large-job tail
            (about 1.2 % of Google jobs exceed 1,000 tasks).
        large_job_scale: Mean size of tail jobs, expressed as a multiple of
            ``mean_tasks_per_job``.
        mean_batch_task_duration: Mean duration of batch tasks in seconds.
        seed: RNG seed; the trace is fully deterministic given the config.
        constant_service_load: When True, long-running service jobs are not
            drawn from the (speedup-scaled) arrival process at all.  Instead
            a fixed allotment of service tasks -- the service share of the
            target utilization -- is submitted at t=0, and every subsequent
            arrival is a batch job.  Without this, accelerating the trace
            multiplies service-job *arrivals* while their never-completing
            tasks still hold their slots forever, so at high speedups
            service tasks swallow every slot and the accelerated-trace
            experiment (Figure 18) cannot exercise batch placement at all.
            The service slot footprint becomes an invariant of the config,
            independent of ``speedup``.
    """

    num_machines: int = 100
    slots_per_machine: int = 4
    target_utilization: float = 0.5
    duration: float = 600.0
    speedup: float = 1.0
    service_job_fraction: float = 0.2
    mean_tasks_per_job: float = 8.0
    large_job_fraction: float = 0.012
    large_job_scale: float = 25.0
    mean_batch_task_duration: float = 60.0
    seed: int = 42
    constant_service_load: bool = False

    def service_task_allotment(self) -> int:
        """Fixed number of service tasks submitted at t=0 in constant mode.

        The allotment is the service share of the target steady-state load
        (service fraction of jobs times the utilization target), rounded to
        whole tasks -- by construction independent of ``speedup``.
        """
        total_slots = self.num_machines * self.slots_per_machine
        return int(round(total_slots * self.target_utilization * self.service_job_fraction))


class GoogleTraceGenerator:
    """Generates jobs (with arrival times) following the trace statistics."""

    #: Replicas per input block, as in HDFS/GFS.
    BLOCK_REPLICAS = 3

    def __init__(self, config: TraceConfig, topology: Optional[ClusterTopology] = None) -> None:
        self.config = config
        self.topology = topology
        self._rng = random.Random(config.seed)
        self._next_job_id = 0
        self._next_task_id = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> List[Job]:
        """Generate the full trace: a list of jobs with submit times set.

        Materializes :meth:`iter_jobs`; prefer the iterator (with
        ``ClusterSimulator.submit_job_stream``) for large traces.
        """
        return list(self.iter_jobs())

    def iter_jobs(self) -> Iterator[Job]:
        """Stream the trace's jobs in non-decreasing submit-time order.

        The synthetic generator is one producer behind the same iterator
        contract as :func:`repro.simulation.ingest.read_trace`: jobs are
        yielded one at a time as the arrival process advances, so a replay
        never has to hold the whole workload in memory.

        In constant-service-load mode the fixed service allotment is
        submitted at t=0 and the arrival process generates batch jobs only;
        otherwise every arrival draws its type independently.
        """
        config = self.config
        arrival_type: Optional[JobType] = None
        if config.constant_service_load:
            yield from self._constant_service_jobs()
            arrival_type = JobType.BATCH
        arrival_rate = self._job_arrival_rate()
        now = 0.0
        while now < config.duration:
            gap = self._rng.expovariate(arrival_rate) if arrival_rate > 0 else config.duration
            now += gap
            if now >= config.duration:
                return
            yield self.generate_job(submit_time=now, job_type=arrival_type)

    def _constant_service_jobs(self) -> List[Job]:
        """Submit the fixed service-task allotment as t=0 service jobs."""
        config = self.config
        jobs: List[Job] = []
        remaining = config.service_task_allotment()
        while remaining > 0:
            size = min(self._sample_job_size(), remaining)
            job = self.generate_job(
                submit_time=0.0, num_tasks=size, job_type=JobType.SERVICE
            )
            jobs.append(job)
            remaining -= job.num_tasks
        return jobs

    def generate_job(
        self,
        submit_time: float = 0.0,
        num_tasks: Optional[int] = None,
        job_type: Optional[JobType] = None,
    ) -> Job:
        """Generate a single job submitted at ``submit_time``.

        ``job_type`` pins the job's type; when omitted it is drawn from the
        configured service fraction.
        """
        config = self.config
        if job_type is None:
            job_type = (
                JobType.SERVICE
                if self._rng.random() < config.service_job_fraction
                else JobType.BATCH
            )
        job_id = self._next_job_id
        self._next_job_id += 1
        priority = 10 if job_type is JobType.SERVICE else 1
        job = Job(job_id=job_id, job_type=job_type, submit_time=submit_time, priority=priority)

        size = num_tasks if num_tasks is not None else self._sample_job_size()
        for _ in range(size):
            job.add_task(self._generate_task(job, submit_time))
        return job

    def steady_state_jobs(self, num_tasks_target: int, submit_time: float = 0.0) -> List[Job]:
        """Generate enough jobs to occupy roughly ``num_tasks_target`` slots.

        Used to pre-populate a cluster to a target utilization before an
        experiment starts (Figures 8, 14, and 16 all start from a
        highly-utilized snapshot).
        """
        jobs: List[Job] = []
        tasks_so_far = 0
        while tasks_so_far < num_tasks_target:
            remaining = num_tasks_target - tasks_so_far
            job = self.generate_job(submit_time=submit_time)
            if job.num_tasks > remaining:
                job.tasks = job.tasks[:remaining]
            jobs.append(job)
            tasks_so_far += job.num_tasks
        return jobs

    # ------------------------------------------------------------------ #
    # Sampling helpers
    # ------------------------------------------------------------------ #
    def _job_arrival_rate(self) -> float:
        """Return the job arrival rate (jobs/second) hitting the target load."""
        config = self.config
        total_slots = config.num_machines * config.slots_per_machine
        target_running_tasks = total_slots * config.target_utilization
        if config.constant_service_load:
            # The service share of the load is covered by the fixed t=0
            # allotment; the arrival process only needs to sustain the
            # batch share.
            target_running_tasks -= config.service_task_allotment()
            target_running_tasks = max(0.0, target_running_tasks)
        mean_job_size = config.mean_tasks_per_job * (
            1.0
            + config.large_job_fraction * (config.large_job_scale - 1.0)
        )
        mean_duration = self._mean_task_duration()
        if mean_duration <= 0 or mean_job_size <= 0:
            return 0.0
        # Little's law: running tasks = arrival rate * tasks/job * duration.
        rate = target_running_tasks / (mean_job_size * mean_duration)
        return rate * config.speedup

    def _mean_task_duration(self) -> float:
        config = self.config
        batch = config.mean_batch_task_duration
        if config.constant_service_load:
            # Arrivals are batch-only; service load is fixed at t=0.
            return batch / config.speedup
        # Service tasks effectively occupy their slot for the whole trace.
        service = config.duration
        mix = (
            (1.0 - config.service_job_fraction) * batch
            + config.service_job_fraction * service
        )
        return mix / config.speedup

    def _sample_job_size(self) -> int:
        """Sample a job's task count from a heavy-tailed distribution."""
        config = self.config
        if self._rng.random() < config.large_job_fraction:
            mean = config.mean_tasks_per_job * config.large_job_scale
        else:
            mean = config.mean_tasks_per_job
        # Geometric-like sizes: many small jobs, occasional big ones.
        size = int(self._rng.expovariate(1.0 / mean)) + 1
        return max(1, size)

    def _sample_batch_duration(self) -> float:
        """Sample a batch task duration (lognormal, heavy tail)."""
        config = self.config
        mean = config.mean_batch_task_duration
        sigma = 1.0
        mu = math.log(mean) - sigma * sigma / 2.0
        duration = self._rng.lognormvariate(mu, sigma)
        return max(0.5, duration) / config.speedup

    def _estimate_input_size_gb(self, duration: float) -> float:
        """Estimate a batch task's input size from its runtime.

        Following the Chen et al. industry distributions, longer tasks
        process more data; the relation used here is roughly linear with
        multiplicative noise.
        """
        base = duration * self.config.speedup / 60.0  # ~1 GB per minute of work
        noise = self._rng.lognormvariate(0.0, 0.5)
        return max(0.05, min(64.0, base * noise))

    def _generate_task(self, job: Job, submit_time: float) -> Task:
        config = self.config
        task_id = self._next_task_id
        self._next_task_id += 1
        if job.job_type is JobType.SERVICE:
            duration: Optional[float] = None
            input_size = 0.0
            locality: Dict[int, float] = {}
            network_request = self._rng.choice([100, 250, 500])
        else:
            duration = self._sample_batch_duration()
            input_size = self._estimate_input_size_gb(duration)
            locality = self._sample_locality(input_size)
            network_request = self._rng.choice([50, 100, 250])
        return Task(
            task_id=task_id,
            job_id=job.job_id,
            duration=duration,
            submit_time=submit_time,
            input_size_gb=input_size,
            input_locality=locality,
            network_request_mbps=network_request,
            priority=job.priority,
        )

    def _sample_locality(self, input_size_gb: float) -> Dict[int, float]:
        """Place the task's input blocks on machines and return locality fractions."""
        config = self.config
        num_blocks = max(1, int(math.ceil(input_size_gb / 1.0)))
        num_blocks = min(num_blocks, 16)
        fractions: Dict[int, float] = {}
        per_block = 1.0 / num_blocks
        for _ in range(num_blocks):
            replicas = self._rng.sample(
                range(config.num_machines), min(self.BLOCK_REPLICAS, config.num_machines)
            )
            for machine_id in replicas:
                fractions[machine_id] = fractions.get(machine_id, 0.0) + per_block
        # A machine holding a replica of every block has fraction 1.0.
        return {m: min(1.0, f) for m, f in fractions.items()}
