"""Trace-driven cluster simulation (the paper's "Fauxmaster"-style setup).

The simulator replays a workload -- either a synthetic Google-like trace or
one of the purpose-built experiment workloads -- against a real scheduler
instance: the scheduler's actual code runs and its measured algorithm
runtime is charged as virtual time, exactly as the paper's simulator runs
Firmament's real scheduling logic against simulated machines.

Event semantics
    The engine mirrors Firmament's own simulator (``simulator.cc`` /
    ``event_manager.cc``): a single typed event queue
    (:class:`~repro.simulation.events.EventManager`) popped in timestamp
    order, interpreted by a :class:`~repro.simulation.simulator.SimulatorBridge`
    that mutates cluster state and drives the scheduler off the event
    clock.  Event kinds: ``TASK_SUBMIT``, ``TASK_END_RUNTIME``,
    ``ADD_MACHINE``, ``REMOVE_MACHINE``, ``SCHEDULER_DONE`` (an in-flight
    round's algorithm runtime elapsing), and ``SCHEDULER_WAKE`` (a deferred
    batch-mode retry).  Same-timestamp events are FIFO unless a
    ``tie_break_seed`` randomizes the interleaving (the fuzz suite's hook).

Drain and void rules
    Every recorded scheduler round is either *applied* or explicitly
    *voided* -- never silently lost.  With ``drain=True`` (default) the
    run continues past ``max_time`` until queued work settles, applying
    in-flight rounds.  With ``drain=False``, events past ``max_time`` are
    skipped, but a skipped ``SCHEDULER_DONE`` voids its round: the record
    is marked ``voided``, the scheduler's statistics are rolled back, and
    the run's ``rounds_voided`` counter increments.  The invariant --
    recorded placements == applied + drift-dropped + voided -- is checked
    by :func:`~repro.simulation.simulator.verify_placement_conservation`.

Ingestion schema
    :mod:`repro.simulation.ingest` maps column-schema CSV traces
    (Google/Alibaba presets or a custom :class:`TraceSchema`) onto
    streaming ``Iterator[Job]`` producers; the synthetic
    :meth:`GoogleTraceGenerator.iter_jobs` honours the same contract, and
    ``ClusterSimulator.submit_job_stream`` consumes either without
    materializing the workload.
"""

from repro.simulation.events import EventManager, EventType, SimulationEvent
from repro.simulation.simulator import (
    ClusterSimulator,
    SimulationConfig,
    SimulationResult,
    verify_placement_conservation,
)
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from repro.simulation.ingest import (
    ALIBABA_SCHEMA,
    GOOGLE_SCHEMA,
    SCHEMAS,
    TraceSchema,
    read_trace,
    write_jobs_csv,
)
from repro.simulation.workload import (
    fill_cluster_to_utilization,
    make_job_of_short_tasks,
    make_single_large_job,
)
from repro.simulation.metrics import (
    MetricsSummary,
    collect_metrics,
    input_data_locality,
)
from repro.simulation.failures import FailureEvent, FailureInjector, FailureSchedule

__all__ = [
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "EventManager",
    "EventType",
    "SimulationEvent",
    "verify_placement_conservation",
    "FailureEvent",
    "FailureInjector",
    "FailureSchedule",
    "GoogleTraceGenerator",
    "TraceConfig",
    "ALIBABA_SCHEMA",
    "GOOGLE_SCHEMA",
    "SCHEMAS",
    "TraceSchema",
    "read_trace",
    "write_jobs_csv",
    "fill_cluster_to_utilization",
    "make_job_of_short_tasks",
    "make_single_large_job",
    "MetricsSummary",
    "collect_metrics",
    "input_data_locality",
]
