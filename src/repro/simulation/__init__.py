"""Trace-driven cluster simulation (the paper's "Fauxmaster"-style setup).

The simulator replays a workload -- either a synthetic Google-like trace or
one of the purpose-built experiment workloads -- against a real scheduler
instance: the scheduler's actual code runs and its measured algorithm
runtime is charged as virtual time, exactly as the paper's simulator runs
Firmament's real scheduling logic against simulated machines.
"""

from repro.simulation.simulator import ClusterSimulator, SimulationConfig, SimulationResult
from repro.simulation.trace import GoogleTraceGenerator, TraceConfig
from repro.simulation.workload import (
    fill_cluster_to_utilization,
    make_job_of_short_tasks,
    make_single_large_job,
)
from repro.simulation.metrics import (
    MetricsSummary,
    collect_metrics,
    input_data_locality,
)
from repro.simulation.failures import FailureEvent, FailureInjector, FailureSchedule

__all__ = [
    "ClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "FailureEvent",
    "FailureInjector",
    "FailureSchedule",
    "GoogleTraceGenerator",
    "TraceConfig",
    "fill_cluster_to_utilization",
    "make_job_of_short_tasks",
    "make_single_large_job",
    "MetricsSummary",
    "collect_metrics",
    "input_data_locality",
]
