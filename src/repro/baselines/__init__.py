"""Comparator schedulers used in the paper's evaluation.

These re-implement the *placement decision rules* of the schedulers the
paper compares against (Section 7.5 and Section 8), behind a single
queue-based interface so the simulator and testbed harness can drive any of
them interchangeably with Firmament:

* :class:`~repro.baselines.sparrow.SparrowScheduler` -- distributed
  power-of-two-choices batch sampling (placements are effectively random
  with respect to data locality and network load).
* :class:`~repro.baselines.swarmkit.SwarmKitScheduler` -- Docker SwarmKit's
  spread strategy: fewest running tasks first.
* :class:`~repro.baselines.kubernetes.KubernetesScheduler` -- filter plus
  score (least-requested and balanced-allocation terms).
* :class:`~repro.baselines.mesos.MesosScheduler` -- offer-based first fit
  over a random subset of machines.
* :func:`~repro.baselines.quincy.make_quincy_scheduler` -- Quincy itself:
  Firmament restricted to the Quincy policy and a from-scratch cost-scaling
  solver (what the original system used via cs2).
"""

from repro.baselines.base import QueueBasedScheduler
from repro.baselines.sparrow import SparrowScheduler
from repro.baselines.swarmkit import SwarmKitScheduler
from repro.baselines.kubernetes import KubernetesScheduler
from repro.baselines.mesos import MesosScheduler
from repro.baselines.quincy import make_quincy_scheduler

__all__ = [
    "QueueBasedScheduler",
    "SparrowScheduler",
    "SwarmKitScheduler",
    "KubernetesScheduler",
    "MesosScheduler",
    "make_quincy_scheduler",
]
