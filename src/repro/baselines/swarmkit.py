"""Docker SwarmKit-style spread scheduler.

SwarmKit's default strategy spreads tasks so that the number of tasks per
node stays balanced; it performs a simple global least-loaded selection with
no awareness of data locality or network bandwidth.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import QueueBasedScheduler
from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import Task


class SwarmKitScheduler(QueueBasedScheduler):
    """Place each task on the machine with the fewest running tasks."""

    name = "swarmkit"

    def select_machine(
        self, task: Task, candidates: List[Machine], state: ClusterState
    ) -> Optional[int]:
        """Pick the machine currently running the fewest tasks."""
        if not candidates:
            return None
        best = min(
            candidates,
            key=lambda m: (self.effective_task_count(state, m.machine_id), m.machine_id),
        )
        return best.machine_id
