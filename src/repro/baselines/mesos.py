"""Mesos-style offer-based scheduler.

Mesos offers available resources to frameworks, which greedily accept offers
that fit their tasks.  From the point of view of placement quality this
behaves like first fit over a randomly ordered subset of machines: the
framework rarely has global information, so placements are insensitive to
data locality and network load.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import QueueBasedScheduler
from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import Task


class MesosScheduler(QueueBasedScheduler):
    """First fit over a random subset of offered machines."""

    name = "mesos"

    def __init__(self, offer_fraction: float = 0.5, **kwargs) -> None:
        """Create the scheduler.

        Args:
            offer_fraction: Fraction of feasible machines offered to the
                framework for each task (the allocator never offers the whole
                cluster at once).
            **kwargs: Forwarded to :class:`QueueBasedScheduler`.
        """
        super().__init__(**kwargs)
        if not 0.0 < offer_fraction <= 1.0:
            raise ValueError("offer fraction must be in (0, 1]")
        self.offer_fraction = offer_fraction

    def select_machine(
        self, task: Task, candidates: List[Machine], state: ClusterState
    ) -> Optional[int]:
        """Accept the first offer that fits the task."""
        if not candidates:
            return None
        offer_count = max(1, int(len(candidates) * self.offer_fraction))
        offers = self.rng.sample(candidates, min(offer_count, len(candidates)))
        self.rng.shuffle(offers)
        for machine in offers:
            if self.effective_free_slots(state, machine.machine_id) > 0:
                return machine.machine_id
        return None
