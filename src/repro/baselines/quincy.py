"""Quincy: flow-based scheduling with a from-scratch cost-scaling solver.

Quincy introduced flow-based scheduling (SOSP 2009) and solved the MCMF
problem with Goldberg's cs2 cost-scaling solver, re-run from scratch on
every scheduling iteration.  Firmament generalizes Quincy; for head-to-head
comparisons the paper runs Firmament with the Quincy policy and restricts
the solver to cost scaling -- which is exactly what this factory builds.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies.quincy import QuincyPolicy
from repro.core.scheduler import FirmamentScheduler
from repro.solvers.cost_scaling import CostScalingSolver, DEFAULT_ALPHA


def make_quincy_scheduler(
    policy: Optional[QuincyPolicy] = None,
    alpha: int = DEFAULT_ALPHA,
    allow_migrations: bool = True,
) -> FirmamentScheduler:
    """Build a scheduler that behaves like Quincy.

    Args:
        policy: Quincy scheduling policy instance (defaults to the paper's
            standard preference thresholds).
        alpha: Cost-scaling alpha factor (cs2's default is 2; the paper notes
            alpha = 9 is faster on scheduling graphs).
        allow_migrations: Whether the scheduler may migrate or preempt
            running tasks when the optimal flow says so.

    Returns:
        A :class:`~repro.core.scheduler.FirmamentScheduler` configured with
        the Quincy policy and a from-scratch cost-scaling solver.
    """
    return FirmamentScheduler(
        policy=policy or QuincyPolicy(),
        solver=CostScalingSolver(alpha=alpha),
        allow_migrations=allow_migrations,
    )
