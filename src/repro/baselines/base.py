"""Queue-based scheduler base class (Section 2.1 of the paper).

Queue-based schedulers -- whether centralized or distributed -- process one
task at a time: dequeue, feasibility-check the machines, score them, place
the task on the best-scoring machine.  Subclasses only implement the
machine-selection step; the queueing, feasibility checking, per-task
decision overhead accounting, and decision assembly are shared.

Queue-based schedulers never reconsider running tasks (no rescheduling, no
preemption), which is precisely the structural difference to flow-based
scheduling the paper highlights.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional

from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import Task
from repro.core.scheduler import SchedulingDecision


class QueueBasedScheduler(abc.ABC):
    """Task-by-task scheduler processing a FIFO queue of pending tasks."""

    #: Human-readable scheduler name.
    name: str = "queue_based"

    def __init__(
        self,
        per_task_decision_seconds: float = 0.002,
        check_slots: bool = True,
        check_network: bool = False,
        seed: int = 42,
    ) -> None:
        """Create the scheduler.

        Args:
            per_task_decision_seconds: Modeled decision time per task; the
                k-th task dequeued in a run is placed after ``k`` times this
                amount (queue-based schedulers pipeline, but each decision
                still takes time).
            check_slots: Feasibility-check free slots (always true for real
                systems; disabling it is only useful in unit tests).
            check_network: Also require spare network bandwidth to cover the
                task's request during the feasibility check.
            seed: Seed for any randomized selection the subclass performs.
        """
        self.per_task_decision_seconds = per_task_decision_seconds
        self.check_slots = check_slots
        self.check_network = check_network
        self.rng = random.Random(seed)
        self.tasks_scheduled = 0
        self.runs = 0
        # Placements made earlier in the current run, so selection logic can
        # account for tasks it just placed (a real scheduler's in-memory
        # state updates between consecutive dequeues).
        self._round_placements: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Subclass interface
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def select_machine(
        self, task: Task, candidates: List[Machine], state: ClusterState
    ) -> Optional[int]:
        """Pick a machine for the task from the feasible candidates.

        Returns the chosen machine id, or ``None`` to leave the task queued.
        """

    # ------------------------------------------------------------------ #
    # Shared queue processing
    # ------------------------------------------------------------------ #
    def effective_task_count(self, state: ClusterState, machine_id: int) -> int:
        """Tasks on a machine, including ones placed earlier in this run."""
        return state.task_count_on_machine(machine_id) + self._round_placements.get(
            machine_id, 0
        )

    def effective_free_slots(self, state: ClusterState, machine_id: int) -> int:
        """Free slots on a machine, net of placements made earlier in this run."""
        return state.free_slots(machine_id) - self._round_placements.get(machine_id, 0)

    def feasible_machines(self, task: Task, state: ClusterState) -> List[Machine]:
        """Return machines that pass the feasibility check for the task.

        With slot checking on (the default), candidates come from the
        cluster state's incrementally maintained free-slot index, so the
        per-task cost is bounded by the number of machines with free
        capacity -- on a busy large cluster a small fraction of the fleet
        -- instead of a full O(|machines|) topology scan per dequeue.
        """
        if self.check_slots:
            pool = state.machines_with_free_slots()
        else:
            pool = state.topology.healthy_machines()
        candidates: List[Machine] = []
        for machine in pool:
            if (
                self.check_network
                and task.network_request_mbps > 0
                and state.spare_network_bandwidth(machine.machine_id) < task.network_request_mbps
            ):
                continue
            candidates.append(machine)
        return candidates

    def schedule(self, state: ClusterState, now: float = 0.0) -> SchedulingDecision:
        """Process the queue of pending tasks once, oldest first.

        Placements are reflected into a scratch view of free slots as the
        queue drains, so one run never overcommits a machine; tasks that
        cannot be placed remain queued for the next run.
        """
        decision = SchedulingDecision()
        self._round_placements = {}
        elapsed = 0.0
        for task in state.pending_tasks():
            elapsed += self.per_task_decision_seconds
            candidates = [
                m for m in self.feasible_machines(task, state)
                if self.effective_free_slots(state, m.machine_id) > 0
            ]
            if not candidates:
                decision.unscheduled.append(task.task_id)
                continue
            machine_id = self.select_machine(task, candidates, state)
            if machine_id is None:
                decision.unscheduled.append(task.task_id)
                continue
            decision.placements[task.task_id] = machine_id
            decision.per_task_latency[task.task_id] = elapsed
            self._round_placements[machine_id] = self._round_placements.get(machine_id, 0) + 1
            self.tasks_scheduled += 1
        decision.algorithm_runtime = elapsed
        self.runs += 1
        return decision

    def apply(self, state: ClusterState, decision: SchedulingDecision, now: float) -> None:
        """Apply the decision's placements to the cluster state."""
        for task_id, machine_id in decision.placements.items():
            state.place_task(task_id, machine_id, now)

    def schedule_and_apply(self, state: ClusterState, now: float = 0.0) -> SchedulingDecision:
        """Convenience wrapper: schedule and immediately apply the decision."""
        decision = self.schedule(state, now)
        self.apply(state, decision, now)
        return decision
