"""Sparrow-style distributed scheduler (batch sampling / power of two choices).

Sparrow schedules each task by probing a small random sample of machines and
placing the task on the least-loaded probe.  The decisions are fast and
parallelizable but ignore data locality and network interference, which is
why the paper's testbed experiment (Figure 19) shows Sparrow with the worst
tail response times once the network is contended.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import QueueBasedScheduler
from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import Task


class SparrowScheduler(QueueBasedScheduler):
    """Probe ``sample_size`` random machines, pick the least loaded."""

    name = "sparrow"

    def __init__(self, sample_size: int = 2, **kwargs) -> None:
        """Create the scheduler.

        Args:
            sample_size: Number of machines probed per task (Sparrow's batch
                sampling uses two probes per task by default).
            **kwargs: Forwarded to :class:`QueueBasedScheduler`.
        """
        super().__init__(**kwargs)
        if sample_size < 1:
            raise ValueError("sample size must be at least 1")
        self.sample_size = sample_size
        # Sparrow's probes do not model per-machine bandwidth reservations.
        self.check_network = False

    def select_machine(
        self, task: Task, candidates: List[Machine], state: ClusterState
    ) -> Optional[int]:
        """Sample machines and choose the one with the fewest queued/running tasks."""
        if not candidates:
            return None
        sample_size = min(self.sample_size, len(candidates))
        probes = self.rng.sample(candidates, sample_size)
        best = min(
            probes,
            key=lambda m: (self.effective_task_count(state, m.machine_id), self.rng.random()),
        )
        return best.machine_id
