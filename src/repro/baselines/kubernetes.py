"""Kubernetes-style filter-and-score scheduler.

The default Kubernetes scheduler filters out machines that cannot host the
pod and then scores the remainder; the two classic scoring terms are
*least requested* (prefer machines with more free resources) and *balanced
resource allocation* (prefer machines whose CPU and memory utilization stay
similar).  It does not consider network bandwidth, which is what the paper's
testbed experiment exploits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import QueueBasedScheduler
from repro.cluster.machine import Machine
from repro.cluster.state import ClusterState
from repro.cluster.task import Task


class KubernetesScheduler(QueueBasedScheduler):
    """Filter feasible machines, score them, pick the highest score."""

    name = "kubernetes"

    def __init__(self, least_requested_weight: float = 1.0, balance_weight: float = 1.0, **kwargs) -> None:
        """Create the scheduler.

        Args:
            least_requested_weight: Weight of the least-requested score term.
            balance_weight: Weight of the balanced-allocation score term.
            **kwargs: Forwarded to :class:`QueueBasedScheduler`.
        """
        super().__init__(**kwargs)
        self.least_requested_weight = least_requested_weight
        self.balance_weight = balance_weight

    def score(self, task: Task, machine: Machine, state: ClusterState) -> float:
        """Score a machine for a task; higher is better."""
        free = self.effective_free_slots(state, machine.machine_id)
        least_requested = max(0, free) / machine.num_slots

        tasks_here = state.tasks_on_machine(machine.machine_id)
        cpu_used = sum(t.cpu_request for t in tasks_here) + task.cpu_request
        ram_used = sum(t.ram_request_gb for t in tasks_here) + task.ram_request_gb
        cpu_fraction = min(1.0, cpu_used / machine.cpu_cores)
        ram_fraction = min(1.0, ram_used / machine.ram_gb)
        balance = 1.0 - abs(cpu_fraction - ram_fraction)

        return (
            self.least_requested_weight * least_requested
            + self.balance_weight * balance
        )

    def select_machine(
        self, task: Task, candidates: List[Machine], state: ClusterState
    ) -> Optional[int]:
        """Pick the highest-scoring feasible machine."""
        if not candidates:
            return None
        best = max(candidates, key=lambda m: (self.score(task, m, state), -m.machine_id))
        return best.machine_id
