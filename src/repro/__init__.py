"""Reproduction of *Firmament: Fast, Centralized Cluster Scheduling at Scale*.

The package is organized around the paper's architecture (Figure 4):

* :mod:`repro.flow` -- the flow-network substrate (graph, changes,
  validation, DIMACS serialization).
* :mod:`repro.solvers` -- min-cost max-flow algorithms, incremental cost
  scaling, and the speculative dual-algorithm executor.
* :mod:`repro.core` -- the Firmament scheduler: scheduling policies, the
  graph manager that maintains the flow network, placement extraction, and
  the scheduler loop itself.
* :mod:`repro.cluster` -- the cluster-manager substrate (machines, racks,
  jobs, tasks, events, monitoring, resource vectors, knowledge base).
* :mod:`repro.simulation` -- the trace-driven simulator, synthetic
  Google-like workload generator, and machine-failure injection.
* :mod:`repro.baselines` -- queue-based comparator schedulers (Sparrow,
  SwarmKit, Kubernetes, Mesos, Quincy).
* :mod:`repro.testbed` -- the 40-machine local-cluster model used for the
  placement-quality experiments (Section 7.5).
* :mod:`repro.analysis` -- CDF/percentile helpers, report formatting, and
  CSV/JSON result exports.
* :mod:`repro.cli` -- the ``firmament-repro`` command-line interface
  (``solve``, ``simulate``, ``trace``).
* :mod:`repro.chaos` -- seeded, deterministic fault injection for the
  round pipeline (worker kills, pipe breaks, revision-chain breaks,
  residual corruption) behind zero-cost no-op defaults.
"""

__version__ = "1.1.0"

__all__ = [
    "flow",
    "solvers",
    "core",
    "cluster",
    "simulation",
    "baselines",
    "testbed",
    "analysis",
    "cli",
    "chaos",
]
