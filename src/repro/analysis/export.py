"""Export experiment results as CSV and JSON documents.

Every benchmark prints the table or series the corresponding paper figure
reports; this module provides the equivalent machine-readable exports so
results can be post-processed or plotted outside the test run (the paper's
figures are CDFs, box plots, and line series over a swept parameter).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, TextIO, Union

from repro.analysis.stats import cdf_points

Number = Union[int, float]


@dataclass
class Series:
    """One named line of a figure: y-values over a swept x-parameter.

    Attributes:
        name: Legend label (e.g. ``"relaxation"``).
        x: Swept parameter values (e.g. cluster sizes).
        y: Measured values (e.g. algorithm runtimes).
    """

    name: str
    x: List[Number] = field(default_factory=list)
    y: List[Number] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r} has {len(self.x)} x-values "
                f"but {len(self.y)} y-values"
            )

    def append(self, x: Number, y: Number) -> None:
        """Append one measurement."""
        self.x.append(x)
        self.y.append(y)


@dataclass
class FigureData:
    """All series of one figure plus axis metadata."""

    title: str
    x_label: str = "x"
    y_label: str = "y"
    series: List[Series] = field(default_factory=list)

    def add_series(self, name: str) -> Series:
        """Create, register, and return a new empty series."""
        series = Series(name=name)
        self.series.append(series)
        return series

    def series_by_name(self, name: str) -> Series:
        """Return the series with the given name.

        Raises:
            KeyError: If no series has that name.
        """
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"figure {self.title!r} has no series named {name!r}")


def write_series_csv(figure: FigureData, stream: Optional[TextIO] = None) -> str:
    """Write a figure's series as CSV (columns: series, x, y).

    Args:
        figure: The figure data to write.
        stream: Optional open text stream; when omitted the CSV text is only
            returned.

    Returns:
        The CSV document as a string.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", figure.x_label, figure.y_label])
    for series in figure.series:
        for x, y in zip(series.x, series.y):
            writer.writerow([series.name, x, y])
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def write_figure_json(figure: FigureData, stream: Optional[TextIO] = None) -> str:
    """Write a figure (metadata plus all series) as a JSON document."""
    document = {
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "series": [
            {"name": series.name, "x": list(series.x), "y": list(series.y)}
            for series in figure.series
        ],
    }
    text = json.dumps(document, indent=2, sort_keys=True)
    if stream is not None:
        stream.write(text)
    return text


def read_figure_json(text: Union[str, TextIO]) -> FigureData:
    """Parse a JSON document produced by :func:`write_figure_json`."""
    if hasattr(text, "read"):
        document = json.load(text)
    else:
        document = json.loads(text)
    figure = FigureData(
        title=document["title"],
        x_label=document.get("x_label", "x"),
        y_label=document.get("y_label", "y"),
    )
    for entry in document.get("series", []):
        figure.series.append(
            Series(name=entry["name"], x=list(entry["x"]), y=list(entry["y"]))
        )
    return figure


def write_cdf_csv(
    samples_by_name: Mapping[str, Sequence[float]],
    stream: Optional[TextIO] = None,
    value_label: str = "value",
) -> str:
    """Write one or more empirical CDFs as CSV (columns: series, value, fraction).

    The CDF experiments in the paper (Figures 13, 14, 15a, 19) compare the
    distributions of several schedulers or configurations; this helper turns
    raw per-task samples into the cumulative points a plotting tool needs.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", value_label, "cumulative_fraction"])
    for name, samples in samples_by_name.items():
        for value, fraction in cdf_points(list(samples)):
            writer.writerow([name, value, fraction])
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def write_table_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    stream: Optional[TextIO] = None,
) -> str:
    """Write a plain table (e.g. Table 15b) as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but the table has "
                f"{len(headers)} columns"
            )
        writer.writerow(list(row))
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text
