"""Statistical helpers used by experiments and benchmarks.

The paper reports results as CDFs, percentile box plots (1st/25th/50th/75th/
99th percentiles plus maximum, as in Figure 3 and Figure 18), and averages.
These helpers compute exactly those summaries from raw samples without
pulling in plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def mean(samples: Sequence[float]) -> float:
    """Return the arithmetic mean (0.0 for an empty sequence)."""
    data = list(samples)
    if not data:
        return 0.0
    return sum(data) / len(data)


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the q-th percentile (linear interpolation, q in [0, 100])."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be between 0 and 100")
    data = sorted(samples)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    fraction = rank - low
    value = data[low] * (1.0 - fraction) + data[high] * fraction
    # Float rounding can land a hair outside the interpolated bracket
    # (e.g. with subnormal inputs); clamp so the result is always within
    # the neighbouring samples.
    lo, hi = min(data[low], data[high]), max(data[low], data[high])
    return min(max(value, lo), hi)


@dataclass
class BoxplotStats:
    """The box-plot summary the paper uses (Figures 3 and 18)."""

    p1: float
    p25: float
    p50: float
    p75: float
    p99: float
    maximum: float
    count: int

    def as_row(self) -> Tuple[float, float, float, float, float, float]:
        """Return the summary as a tuple in percentile order."""
        return (self.p1, self.p25, self.p50, self.p75, self.p99, self.maximum)


def boxplot_stats(samples: Sequence[float]) -> BoxplotStats:
    """Compute the 1/25/50/75/99th percentiles and the maximum."""
    data = list(samples)
    maximum = max(data) if data else 0.0
    return BoxplotStats(
        p1=percentile(data, 1),
        p25=percentile(data, 25),
        p50=percentile(data, 50),
        p75=percentile(data, 75),
        p99=percentile(data, 99),
        maximum=maximum,
        count=len(data),
    )


def cdf_points(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """Return the empirical CDF as a list of ``(value, cumulative_fraction)``."""
    data = sorted(samples)
    n = len(data)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(data)]


def fraction_below(samples: Sequence[float], threshold: float) -> float:
    """Return the fraction of samples at or below a threshold."""
    data = list(samples)
    if not data:
        return 0.0
    return sum(1 for value in data if value <= threshold) / len(data)
