"""Analysis helpers: percentiles, CDFs, box-plot statistics, report tables, exports."""

from repro.analysis.stats import (
    BoxplotStats,
    boxplot_stats,
    cdf_points,
    fraction_below,
    mean,
    percentile,
)
from repro.analysis.reporting import format_cdf, format_series, format_table
from repro.analysis.export import (
    FigureData,
    Series,
    read_figure_json,
    write_cdf_csv,
    write_figure_json,
    write_series_csv,
    write_table_csv,
)

__all__ = [
    "BoxplotStats",
    "boxplot_stats",
    "cdf_points",
    "fraction_below",
    "mean",
    "percentile",
    "format_cdf",
    "format_series",
    "format_table",
    "FigureData",
    "Series",
    "read_figure_json",
    "write_cdf_csv",
    "write_figure_json",
    "write_series_csv",
    "write_table_csv",
]
