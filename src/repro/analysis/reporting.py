"""Plain-text report formatting for benchmark output.

Each benchmark regenerates the rows or series behind one of the paper's
tables or figures; these helpers render them as aligned text tables so the
numbers can be eyeballed directly in the pytest-benchmark output and are
easy to copy into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned text table with a header line."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    header_cells = [str(h) for h in headers]
    widths = [len(h) for h in header_cells]
    for row in materialized:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(header_cells)),
        "  ".join("-" * widths[i] for i in range(len(header_cells))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Sequence[Tuple[object, object]]) -> str:
    """Render a named series of ``(x, y)`` points, one point per line."""
    lines = [f"{name}:"]
    for x, y in points:
        lines.append(f"  {_fmt(x)} -> {_fmt(y)}")
    return "\n".join(lines)


def format_cdf(name: str, samples: Sequence[float], points: int = 10) -> str:
    """Render an empirical CDF at evenly spaced quantiles."""
    from repro.analysis.stats import percentile

    lines = [f"{name} (n={len(samples)}):"]
    if not samples:
        return lines[0] + " no samples"
    for index in range(points + 1):
        q = 100.0 * index / points
        lines.append(f"  p{q:5.1f}: {percentile(samples, q):.4f}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    """Format one table cell."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
