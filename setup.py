"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` can use the legacy editable-install path on
environments where the ``wheel`` package is unavailable (offline installs).
"""

from setuptools import setup

setup()
