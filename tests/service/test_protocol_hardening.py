"""Fuzz/abuse tests for the JSON-lines protocol reader (ISSUE 10).

The service must never buffer unboundedly, never die silently on garbage,
and always either answer with an ``error`` event or disconnect -- while
well-behaved clients on other connections keep working throughout.
"""

from __future__ import annotations

import asyncio
import json
import os
import random

import pytest

from repro.cluster.state import ClusterState
from repro.cluster.topology import build_topology
from repro.core import FirmamentScheduler
from repro.core.policies import QuincyPolicy
from repro.service import SchedulerService, ServiceConfig


def make_service(max_request_bytes: int = 4096) -> SchedulerService:
    state = ClusterState(build_topology(8, slots_per_machine=4))
    scheduler = FirmamentScheduler(QuincyPolicy())
    config = ServiceConfig(
        round_interval=0.01, time_scale=0.01,
        max_request_bytes=max_request_bytes,
    )
    return SchedulerService(state, scheduler, config)


def run(coro, timeout=30):
    return asyncio.run(asyncio.wait_for(coro, timeout))


async def send_raw(writer, data: bytes):
    writer.write(data)
    await writer.drain()


async def recv(reader):
    line = await reader.readline()
    assert line, "connection closed while awaiting a reply"
    return json.loads(line)


async def service_still_works(service) -> None:
    """A fresh well-behaved client gets normal service."""
    reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
    writer.write(json.dumps({"op": "stats", "id": 99}).encode() + b"\n")
    await writer.drain()
    reply = await recv(reader)
    assert reply["event"] == "stats" and reply["conserved"]
    writer.close()


class TestProtocolHardening:
    def test_oversized_line_gets_error_and_disconnect(self):
        async def scenario():
            service = make_service(max_request_bytes=1024)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send_raw(writer, b"x" * 8192 + b"\n")
            reply = await recv(reader)
            assert reply["event"] == "error"
            assert "too long" in reply["error"]
            assert await reader.read() == b""  # server hung up
            await service_still_works(service)
            await service.stop()

        run(scenario())

    def test_non_utf8_line_gets_error_and_disconnect(self):
        async def scenario():
            service = make_service()
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send_raw(writer, b"\xff\xfe\x80garbage\x80\n")
            reply = await recv(reader)
            assert reply["event"] == "error"
            assert "UTF-8" in reply["error"]
            assert await reader.read() == b""
            await service_still_works(service)
            await service.stop()

        run(scenario())

    def test_truncated_json_gets_error_but_keeps_connection(self):
        async def scenario():
            service = make_service()
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send_raw(writer, b'{"op": "submit", "tasks":\n')
            reply = await recv(reader)
            assert reply["event"] == "error" and "bad json" in reply["error"]
            # Same connection still serves valid requests.
            await send_raw(
                writer, json.dumps({"op": "stats", "id": 1}).encode() + b"\n"
            )
            reply = await recv(reader)
            assert reply["event"] == "stats"
            writer.close()
            await service.stop()

        run(scenario())

    def test_non_object_json_gets_error(self):
        async def scenario():
            service = make_service()
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            for payload in (b"[1, 2, 3]\n", b'"hello"\n', b"42\n", b"null\n"):
                await send_raw(writer, payload)
                reply = await recv(reader)
                assert reply["event"] == "error"
                assert "JSON object" in reply["error"]
            writer.close()
            await service.stop()

        run(scenario())

    def test_unknown_op_gets_reasoned_error(self):
        async def scenario():
            service = make_service()
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send_raw(
                writer,
                json.dumps({"op": "frobnicate", "id": 7}).encode() + b"\n",
            )
            reply = await recv(reader)
            assert reply["event"] == "error"
            assert reply["id"] == 7
            assert "frobnicate" in reply["error"]
            writer.close()
            await service.stop()

        run(scenario())

    def test_bad_submit_key_type_is_rejected(self):
        async def scenario():
            service = make_service()
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            await send_raw(
                writer,
                json.dumps({"op": "submit", "tasks": 1, "key": 5, "id": 1})
                .encode() + b"\n",
            )
            reply = await recv(reader)
            assert reply["event"] == "error" and "key" in reply["error"]
            writer.close()
            await service.stop()

        run(scenario())

    def test_seeded_garbage_fuzz_never_kills_the_service(self):
        """Random garbage -- binary, truncated JSON, huge-ish lines, valid
        requests interleaved -- never takes the service down and never
        breaks conservation for the well-behaved client."""

        async def scenario():
            service = make_service(max_request_bytes=2048)
            await service.start()
            rng = random.Random(1234)
            for _ in range(8):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                try:
                    for _ in range(6):
                        choice = rng.randrange(5)
                        if choice == 0:
                            data = bytes(
                                rng.randrange(256) for _ in range(rng.randrange(1, 64))
                            ) + b"\n"
                        elif choice == 1:
                            data = b"{" * rng.randrange(1, 32) + b"\n"
                        elif choice == 2:
                            data = b"a" * 4096 + b"\n"  # over the limit
                        elif choice == 3:
                            valid = json.dumps({"op": "stats"}).encode() + b"\n"
                            data = valid[: rng.randrange(1, len(valid))] + b"\n"
                        else:
                            data = json.dumps(
                                {"op": "submit", "tasks": 1, "duration": 0.1}
                            ).encode() + b"\n"
                        try:
                            await send_raw(writer, data)
                        except (ConnectionResetError, BrokenPipeError):
                            break  # server hung up on us, as designed
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        pass
            # Let any accepted garbage-adjacent submissions get scheduled,
            # then verify the service is alive and conserving.
            await asyncio.sleep(0.1)
            await service_still_works(service)
            snapshot = await service.stop()
            assert snapshot["conserved"], snapshot

        run(scenario())
